//! Tests for the §9 relaxed-memory extension: program-order constraints
//! weaken monotonically SC → TSO → PSO, so report sets only ever grow.

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions, MemoryModel};

fn reports_under(src: &str, model: MemoryModel) -> Vec<(u32, u32)> {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            memory_model: model,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    });
    canary
        .analyze_source(src)
        .expect("test program parses")
        .reports
        .iter()
        .map(|r| (r.source.0, r.sink.0))
        .collect()
}

/// The store-buffering-style discriminator: a freed value is published,
/// then *overwritten through a second alias* before the reader thread
/// starts. Under SC (and TSO) the overwrite is ordered before every
/// read, so the stale freed value can never be observed. Under PSO the
/// two stores go to (syntactically) different locations and may
/// reorder: the reader can see the freed value.
const PSO_DISCRIMINATOR: &str = r#"
    fn main() {
        c = alloc cell;
        bad = alloc victim;
        *c = bad;           // S2: publish the doomed pointer
        c2 = c;             // second alias of the same cell
        good = alloc fresh;
        *c2 = good;         // S1: overwrite before anyone reads
        free bad;           // F
        fork t w(c);
    }
    fn w(p) {
        y = *p;             // can only see `good`… under SC/TSO
        use y;
    }
"#;

#[test]
fn sc_refutes_the_store_buffering_uaf() {
    assert!(reports_under(PSO_DISCRIMINATOR, MemoryModel::Sc).is_empty());
}

#[test]
fn tso_still_refutes_store_store_reordering() {
    // TSO keeps store→store order; only PSO relaxes it.
    assert!(reports_under(PSO_DISCRIMINATOR, MemoryModel::Tso).is_empty());
}

#[test]
fn pso_reports_the_store_buffering_uaf() {
    let reports = reports_under(PSO_DISCRIMINATOR, MemoryModel::Pso);
    assert_eq!(reports.len(), 1, "{reports:?}");
}

/// A same-location overwrite is ordered under every model: using the
/// *same* address variable for both stores must stay refuted even
/// under PSO.
#[test]
fn pso_keeps_same_location_store_order() {
    let src = r#"
        fn main() {
            c = alloc cell;
            bad = alloc victim;
            *c = bad;
            good = alloc fresh;
            *c = good;          // same address variable: ordered
            free bad;
            fork t w(c);
        }
        fn w(p) {
            y = *p;
            use y;
        }
    "#;
    assert!(reports_under(src, MemoryModel::Pso).is_empty());
}

/// Regression pin for the syntactic-location approximation in the
/// detector's order policy: the two stores in `PSO_DISCRIMINATOR` go
/// through distinct pointer *variables* (`c` and `c2`) that alias the
/// same object, and the policy compares address variables
/// syntactically, so PSO relaxes the store→store pair anyway. The
/// operational store buffer keys on *runtime* cells — same-cell
/// stores never reorder even under PSO — so complete enumeration
/// proves the report unreachable. The approximation deliberately errs
/// toward reporting (a missed alias must never hide a reordering);
/// this test fails if either side of that trade drifts.
#[test]
fn syntactic_location_approximation_errs_toward_reporting() {
    use canary_oracle::{explore_under, EnumLimits};

    let reports = reports_under(PSO_DISCRIMINATOR, MemoryModel::Pso);
    assert_eq!(
        reports.len(),
        1,
        "aliased address variables must still be treated as distinct \
         locations: {reports:?}"
    );
    let prog = canary_ir::parse(PSO_DISCRIMINATOR).expect("parses");
    let e = explore_under(&prog, MemoryModel::Pso, EnumLimits::default());
    assert!(e.complete);
    assert!(
        e.hits.is_empty(),
        "the PSO store buffer drains same-cell stores in order, so the \
         report is a certified false positive: {:?}",
        e.hits
    );
}

/// Monotonicity on ordinary programs: everything SC reports, TSO and
/// PSO also report.
#[test]
fn relaxation_is_monotone() {
    for src in [
        "fn main() { p = alloc o; fork t w(p); free p; }
         fn w(q) { use q; }",
        "fn main() { p = alloc o; free p; use p; }",
        "fn main() { p = alloc o; fork t w(p); join t; free p; }
         fn w(q) { use q; }",
    ] {
        let sc = reports_under(src, MemoryModel::Sc);
        let tso = reports_under(src, MemoryModel::Tso);
        let pso = reports_under(src, MemoryModel::Pso);
        for r in &sc {
            assert!(tso.contains(r), "TSO must keep SC report {r:?}");
        }
        for r in &tso {
            assert!(pso.contains(r), "PSO must keep TSO report {r:?}");
        }
    }
}

/// Fork/join synchronization survives relaxation: the join-protected
/// free stays safe under PSO.
#[test]
fn join_protection_survives_pso() {
    let src = "fn main() { p = alloc o; fork t w(p); join t; free p; }
               fn w(q) { use q; }";
    assert!(reports_under(src, MemoryModel::Pso).is_empty());
}

/// The relaxed models also keep the Fig. 2 branch-condition refutation:
/// guards are orthogonal to memory ordering.
#[test]
fn fig2_refutation_survives_relaxation() {
    let src = r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) { *y = b; free b; }
        }
    "#;
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        assert!(
            reports_under(src, model).is_empty(),
            "model {model:?} must keep the guard refutation"
        );
    }
}
