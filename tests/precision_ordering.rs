//! Cross-tool invariants on generated workloads: the precision and
//! recall ordering the paper's evaluation (§7.2) rests on.

use std::time::Duration;

use canary::{Canary, CanaryConfig};
use canary_baselines::{fsam, saber, Budgeted, Deadline};
use canary_detect::{BugKind, DetectOptions};
use canary_ir::Label;
use canary_workloads::{evaluate, generate, Workload, WorkloadSpec};

fn canary_pairs(w: &Workload) -> Vec<(Label, Label)> {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            inter_thread_only: true,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    });
    canary
        .analyze(&w.prog)
        .reports
        .iter()
        .map(|r| (r.source, r.sink))
        .collect()
}

fn saber_pairs(w: &Workload) -> Vec<(Label, Label)> {
    match saber::check_uaf(&w.prog, Deadline::after(Duration::from_secs(120))) {
        Budgeted::Done(rs) => rs.iter().map(|r| (r.source, r.sink)).collect(),
        Budgeted::TimedOut => panic!("small workload should not time out"),
    }
}

fn fsam_pairs(w: &Workload) -> Vec<(Label, Label)> {
    match fsam::check_uaf(&w.prog, Deadline::after(Duration::from_secs(120))) {
        Budgeted::Done(rs) => rs.iter().map(|r| (r.source, r.sink)).collect(),
        Budgeted::TimedOut => panic!("small workload should not time out"),
    }
}

#[test]
fn canary_full_recall_on_seeded_bugs() {
    for seed in [1u64, 2, 3, 4, 5] {
        let w = generate(&WorkloadSpec::small(seed));
        let eval = evaluate(&w.truth, &canary_pairs(&w));
        assert_eq!(eval.missed, 0, "seed {seed}: all seeded bugs found");
        assert_eq!(
            eval.true_positives,
            w.truth.uaf_bugs.len(),
            "seed {seed}"
        );
    }
}

#[test]
fn canary_fp_are_exactly_the_benign_patterns() {
    for seed in [10u64, 20, 30] {
        let w = generate(&WorkloadSpec::small(seed));
        let pairs = canary_pairs(&w);
        let eval = evaluate(&w.truth, &pairs);
        assert_eq!(
            eval.false_positives,
            w.truth.benign.len(),
            "seed {seed}: reports {pairs:?}"
        );
        for fp in pairs
            .iter()
            .filter(|p| !w.truth.uaf_bugs.contains(p))
        {
            assert!(
                w.truth.benign.contains(fp),
                "seed {seed}: unexplained FP {fp:?}"
            );
        }
    }
}

#[test]
fn baselines_report_supersets_of_truth_volume() {
    let w = generate(&WorkloadSpec::small(7));
    let canary_n = canary_pairs(&w).len();
    let saber_n = saber_pairs(&w).len();
    let fsam_n = fsam_pairs(&w).len();
    assert!(
        saber_n >= canary_n,
        "saber {saber_n} >= canary {canary_n}"
    );
    assert!(fsam_n >= canary_n, "fsam {fsam_n} >= canary {canary_n}");
    // The baselines still find every seeded bug (they over-report, they
    // do not under-report).
    let se = evaluate(&w.truth, &saber_pairs(&w));
    assert_eq!(se.missed, 0);
}

#[test]
fn baseline_fp_rate_dominates_canary() {
    let w = generate(&WorkloadSpec::small(13));
    let ce = evaluate(&w.truth, &canary_pairs(&w));
    let se = evaluate(&w.truth, &saber_pairs(&w));
    let fe = evaluate(&w.truth, &fsam_pairs(&w));
    assert!(se.fp_rate() >= ce.fp_rate(), "{se:?} vs {ce:?}");
    assert!(fe.fp_rate() >= ce.fp_rate(), "{fe:?} vs {ce:?}");
}

#[test]
fn contradiction_patterns_split_the_tools() {
    // A workload that is all infeasible patterns: Canary reports
    // nothing, the baselines report every pattern.
    let spec = WorkloadSpec {
        true_bugs: 0,
        benign_patterns: 0,
        contradiction_patterns: 4,
        ..WorkloadSpec::small(99)
    };
    let w = generate(&spec);
    assert!(canary_pairs(&w).is_empty());
    assert!(!saber_pairs(&w).is_empty());
}

#[test]
fn vfg_sizes_scale_down_for_canary() {
    // Canary's sparse guarded VFG stays smaller than the exhaustive
    // unguarded product on conflation-heavy inputs.
    let spec = WorkloadSpec {
        target_stmts: 1200,
        ..WorkloadSpec::small(21)
    };
    let w = generate(&spec);
    let canary = Canary::new();
    let (_pool, df, _ir, _cg, _ts, _m) = canary.build_vfg(&w.prog);
    let saber = saber::build_vfg(&w.prog, Deadline::after(Duration::from_secs(120)))
        .expect_done("fits budget");
    assert!(
        df.vfg.edge_count() <= saber.vfg.edge_count(),
        "canary {} <= saber {}",
        df.vfg.edge_count(),
        saber.vfg.edge_count()
    );
}
