//! The pipeline-wide determinism contract: `Canary::analyze` must
//! produce identical output — reports, VFG shape, term counts — for
//! every worker count, and repeated parallel runs must be byte-stable.
//!
//! Two layers:
//!
//! 1. a property test over random `canary-workloads` programs comparing
//!    the full outcome at `threads = 1` vs `threads = 4`;
//! 2. a regression sweep over every concrete program embedded in
//!    `tests/paper_examples.rs` and `examples/*.rs` (extracted from
//!    their raw-string literals), each run three times at `threads = 8`
//!    and once serially, comparing canonical report JSON byte-for-byte.
//!
//! Timing fields are excluded from the comparison — wall time is the
//! one thing threads are allowed to change.

use canary::{AnalysisOutcome, Canary, CanaryConfig};
use proptest::prelude::*;

use canary_workloads::{generate, WorkloadSpec};

fn with_threads(threads: usize) -> Canary {
    Canary::with_config(CanaryConfig {
        threads,
        ..CanaryConfig::default()
    })
}

/// Canonical JSON for everything in an outcome that must not depend on
/// the worker count. Vendored serde_json renders object keys sorted, so
/// equal values mean equal bytes.
fn canonical_json(outcome: &AnalysisOutcome) -> String {
    let reports: Vec<serde_json::Value> = outcome
        .reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "kind": r.kind.to_string(),
                "source": r.source.0,
                "sink": r.sink.0,
                "inter_thread": r.inter_thread,
                "path": r.path,
                "constraint": r.constraint,
                "schedule": r.schedule.iter().map(|l| l.0).collect::<Vec<u32>>(),
            })
        })
        .collect();
    let m = &outcome.metrics;
    let doc = serde_json::json!({
        "reports": reports,
        "metrics": {
            "statements": m.stmt_count,
            "threads": m.thread_count,
            "vfg_nodes": m.vfg_nodes,
            "vfg_edges": m.vfg_edges,
            "interference_edges": m.interference_edges,
            "escaped_objects": m.escaped_objects,
            "vfg_bytes": m.vfg_bytes,
            "term_count": m.term_count,
            "candidate_paths": m.detect.candidate_paths,
            "smt_queries": m.detect.queries,
            "dataflow_tasks": m.dataflow_phase.tasks,
            "interference_tasks": m.interference_phase.tasks,
        },
        "refuted": outcome.refuted.iter().map(|r| {
            serde_json::json!({
                "kind": r.kind.to_string(),
                "source": r.source.0,
                "sink": r.sink.0,
                "core": r.core,
            })
        }).collect::<Vec<_>>(),
    });
    serde_json::to_string_pretty(&doc).expect("valid json")
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1000,
        200usize..600,
        1usize..4,
        1usize..5,
        0usize..3,
        0usize..2,
        0usize..3,
    )
        .prop_map(|(seed, stmts, threads, cells, bugs, benign, contra)| WorkloadSpec {
            name: format!("par-eq-{seed}"),
            seed,
            target_stmts: stmts,
            threads,
            shared_cells: cells,
            true_bugs: bugs,
            benign_patterns: benign,
            contradiction_patterns: contra,
            handshake_patterns: 1,
            order_fp_patterns: 1,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 1,
            conflict_lock: 1,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: true,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn analyze_is_identical_for_1_and_4_threads(spec in spec_strategy()) {
        let w = generate(&spec);
        let serial = with_threads(1).analyze(&w.prog);
        let parallel = with_threads(4).analyze(&w.prog);
        prop_assert_eq!(canonical_json(&serial), canonical_json(&parallel));
    }
}

/// Extracts every raw-string literal (`r#"…"#`) from a Rust source file
/// and keeps those that parse and validate as bounded programs.
fn embedded_programs(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut programs = Vec::new();
    let mut rest = text.as_str();
    while let Some(start) = rest.find("r#\"") {
        let body_on = &rest[start + 3..];
        let Some(end) = body_on.find("\"#") else { break };
        let candidate = &body_on[..end];
        if let Ok(prog) = canary_ir::parse(candidate) {
            if prog.validate().is_ok() {
                programs.push(candidate.to_string());
            }
        }
        rest = &body_on[end + 2..];
    }
    programs
}

/// Every concrete program shipped in the repo's test and example files.
fn corpus() -> Vec<(String, String)> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("tests/paper_examples.rs")];
    let mut examples: Vec<_> = std::fs::read_dir(root.join("examples"))
        .expect("examples dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    examples.sort();
    files.extend(examples);
    let mut out = Vec::new();
    for f in &files {
        let name = f.file_name().unwrap().to_string_lossy().into_owned();
        for (i, src) in embedded_programs(f).into_iter().enumerate() {
            out.push((format!("{name}#{i}"), src));
        }
    }
    out
}

#[test]
fn corpus_reports_are_byte_identical_across_threads_and_runs() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 8,
        "expected a non-trivial embedded-program corpus, found {}",
        corpus.len()
    );
    for (name, src) in &corpus {
        let baseline = canonical_json(
            &with_threads(1)
                .analyze_source(src)
                .unwrap_or_else(|e| panic!("{name}: {e}")),
        );
        // Three repeated parallel runs: catches both thread-count
        // sensitivity and run-to-run scheduling nondeterminism.
        for round in 0..3 {
            let par = canonical_json(&with_threads(8).analyze_source(src).unwrap());
            assert_eq!(
                baseline, par,
                "{name}: threads=8 run {round} diverged from serial"
            );
        }
    }
}
