//! Differential certification of the detector against the
//! store-buffer oracle, across all three memory models:
//!
//! * **Precision-or-certification** — under each model, every report
//!   either replays to its bug on that model's machine, or the
//!   complete bounded enumeration under the *same* model refutes it
//!   (the report is then a certified over-approximation, not an
//!   unexplained false positive).
//! * **Bounded soundness** — every concretely reachable bug under a
//!   model appears among that model's static reports, exactly as the
//!   SC harness in `oracle_differential.rs` demands.
//! * **Weak-memory-only certification** — the seeded store-buffering
//!   and message-passing bugs are reported *and replayed* under the
//!   models that admit them, while complete enumeration under every
//!   stronger model proves them unreachable there.
//!
//! The corpus gives each member at most two concurrent litmus
//! patterns: exhaustive weak-model enumeration is exponential in the
//! number of racing threads, and two patterns (~7k states under PSO)
//! is the largest mix that stays comfortably inside the state budget.
//! ci.sh runs this suite serially and with `CANARY_TEST_THREADS=2`.

use std::collections::HashSet;

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions, MemoryModel};
use canary_ir::Label;
use canary_oracle::{explore, explore_under, EnumLimits};
use canary_workloads::{confirm_ground_truth_under, generate, WorkloadSpec};

const MODELS: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

/// One corpus member: the seed selects a litmus mix of at most two
/// concurrent patterns (see the module doc for why).
fn litmus_variant(seed: u64) -> WorkloadSpec {
    let mut s = WorkloadSpec::litmus(seed);
    s.sb_patterns = 0;
    s.mp_patterns = 0;
    s.lb_patterns = 0;
    s.true_bugs = 0;
    match seed % 10 {
        0 => s.sb_patterns = 1,
        1 => s.mp_patterns = 1,
        2 => s.lb_patterns = 1,
        3 => {
            s.sb_patterns = 1;
            s.true_bugs = 1;
        }
        4 => {
            s.mp_patterns = 1;
            s.true_bugs = 1;
        }
        5 => {
            s.lb_patterns = 1;
            s.true_bugs = 1;
        }
        6 => {
            s.sb_patterns = 1;
            s.lb_patterns = 1;
        }
        7 => {
            s.mp_patterns = 1;
            s.lb_patterns = 1;
        }
        8 => {
            s.sb_patterns = 1;
            s.mp_patterns = 1;
        }
        9 => {
            s.sb_patterns = 1;
            s.lb_patterns = 1;
            s.true_bugs = 1;
        }
        _ => unreachable!(),
    }
    s
}

/// The fixed ten-member corpus referenced by ci.sh.
fn litmus_corpus() -> Vec<WorkloadSpec> {
    (0..10).map(litmus_variant).collect()
}

fn canary_under(model: MemoryModel) -> Canary {
    Canary::with_config(CanaryConfig {
        verify_witnesses: true,
        detect: DetectOptions {
            memory_model: model,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    })
}

type Triple = (BugKind, Label, Label);

fn report_triples(outcome: &canary::AnalysisOutcome) -> HashSet<Triple> {
    outcome
        .reports
        .iter()
        .map(|r| (r.kind, r.source, r.sink))
        .collect()
}

/// The full differential sandwich, per corpus member and per model.
#[test]
fn differential_certification_under_every_model() {
    for spec in litmus_corpus() {
        let w = generate(&spec);
        for model in MODELS {
            let e = explore_under(&w.prog, model, EnumLimits::default());
            assert!(
                e.complete,
                "{} under {model:?}: enumeration must exhaust the space ({} states)",
                spec.name, e.states
            );
            let outcome = canary_under(model).analyze(&w.prog);
            let reported = report_triples(&outcome);

            // Bounded soundness: every concretely reachable bug under
            // this model is statically reported under this model.
            for hit in &e.hits {
                assert!(
                    reported.contains(hit),
                    "{} under {model:?}: concrete bug {hit:?} missed ({reported:?})",
                    spec.name
                );
            }

            // Precision-or-certification: every report replays on this
            // model's machine, or the complete enumeration refutes it.
            for (r, replay) in outcome.reports.iter().zip(&outcome.witness_replays) {
                assert!(
                    replay.confirmed() || e.refutes(r.kind, r.source, r.sink),
                    "{} under {model:?}: report {r:?} neither replays ({replay:?}) \
                     nor is enumeration-refuted",
                    spec.name
                );
            }

            // Seeded truth: visible bugs are enumerable, reported, and
            // their witness replays; invisible ones are refuted by the
            // complete enumeration under this model.
            for bug in &w.truth.seeded {
                let triple = (bug.kind, bug.source, bug.sink);
                if bug.visible_under(model) {
                    assert!(
                        e.hits.contains(&triple),
                        "{} under {model:?}: seeded {bug:?} unreachable",
                        spec.name
                    );
                    assert!(
                        reported.contains(&triple),
                        "{} under {model:?}: seeded {bug:?} unreported ({reported:?})",
                        spec.name
                    );
                    let idx = outcome
                        .reports
                        .iter()
                        .position(|r| (r.kind, r.source, r.sink) == triple)
                        .unwrap();
                    assert!(
                        outcome.witness_replays[idx].confirmed(),
                        "{} under {model:?}: witness for seeded {bug:?} failed: {:?}",
                        spec.name,
                        outcome.witness_replays[idx]
                    );
                } else {
                    assert!(
                        e.refutes(bug.kind, bug.source, bug.sink),
                        "{} under {model:?}: seed {bug:?} should be model-invisible",
                        spec.name
                    );
                }
            }

            // Ground-truth schedules confirm under their models.
            let failures = confirm_ground_truth_under(&w, model);
            assert!(
                failures.is_empty(),
                "{} under {model:?}: unconfirmed truth {failures:?}",
                spec.name
            );
        }
    }
}

/// The headline certification: the store-buffering double free is
/// reported and replayed under TSO and PSO, while complete bounded SC
/// enumeration proves it unreachable under SC. The flow-insensitive
/// SC detector may still surface the pair (each free's query dodges
/// the other thread's null store independently, so no single query
/// sees the whole Dekker cycle) — but then its witness must fail to
/// replay, and the enumeration certifies the report as
/// weak-memory-only rather than an SC bug.
#[test]
fn store_buffering_bug_is_certified_weak_memory_only() {
    let w = generate(&litmus_variant(0));
    let sb = w
        .truth
        .seeded
        .iter()
        .find(|b| b.kind == BugKind::DoubleFree)
        .expect("sb member seeds a double free");
    let triple = (sb.kind, sb.source, sb.sink);

    let sc_enum = explore(&w.prog, EnumLimits::default());
    assert!(
        sc_enum.refutes(sb.kind, sb.source, sb.sink),
        "SC enumeration must prove the SB double free unreachable"
    );
    let sc = canary_under(MemoryModel::Sc).analyze(&w.prog);
    if let Some(idx) = sc
        .reports
        .iter()
        .position(|r| (r.kind, r.source, r.sink) == triple)
    {
        assert!(
            !sc.witness_replays[idx].confirmed(),
            "an SC report of the SB pair must not replay under SC"
        );
    }

    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        let outcome = canary_under(model).analyze(&w.prog);
        let idx = outcome
            .reports
            .iter()
            .position(|r| (r.kind, r.source, r.sink) == triple)
            .unwrap_or_else(|| panic!("SB double free unreported under {model:?}"));
        assert!(
            outcome.witness_replays[idx].confirmed(),
            "{model:?}: witness must replay on the store-buffer machine: {:?}",
            outcome.witness_replays[idx]
        );
    }
}

/// Message passing discriminates TSO from PSO: the TSO FIFO keeps the
/// install before the publish, so only PSO admits the use-after-free.
#[test]
fn message_passing_bug_is_certified_pso_only() {
    let w = generate(&litmus_variant(1));
    let mp = w
        .truth
        .seeded
        .iter()
        .find(|b| b.kind == BugKind::UseAfterFree)
        .expect("mp member seeds a use-after-free");
    let triple = (mp.kind, mp.source, mp.sink);

    for model in [MemoryModel::Sc, MemoryModel::Tso] {
        let e = explore_under(&w.prog, model, EnumLimits::default());
        assert!(
            e.refutes(mp.kind, mp.source, mp.sink),
            "{model:?} enumeration must prove the MP use-after-free unreachable"
        );
    }

    let pso = canary_under(MemoryModel::Pso).analyze(&w.prog);
    let idx = pso
        .reports
        .iter()
        .position(|r| (r.kind, r.source, r.sink) == triple)
        .expect("MP use-after-free unreported under PSO");
    assert!(
        pso.witness_replays[idx].confirmed(),
        "PSO witness must replay: {:?}",
        pso.witness_replays[idx]
    );
}

/// Load buffering needs load→store reordering, which store buffers
/// never produce: no model reaches a bug, and the detector's retained
/// load→store program-order edges keep the candidate UNSAT everywhere.
#[test]
fn load_buffering_is_refuted_under_every_model() {
    let w = generate(&litmus_variant(2));
    assert!(w.truth.seeded.is_empty());
    assert_eq!(w.truth.infeasible_patterns, 1);
    for model in MODELS {
        let e = explore_under(&w.prog, model, EnumLimits::default());
        assert!(e.complete, "{model:?}");
        assert!(e.hits.is_empty(), "{model:?}: {:?}", e.hits);
        let outcome = canary_under(model).analyze(&w.prog);
        assert!(
            outcome.reports.is_empty(),
            "{model:?}: {:?}",
            outcome.reports
        );
    }
}

/// Weakening the model only adds executions, never removes them: on
/// lean corpus members the TSO/PSO enumerations terminate, keep every
/// SC-reachable hit, and miss no seeded bug. (A spot-check of three
/// members — the full 16-member SC sweep lives in
/// `oracle_differential.rs`.)
#[test]
fn weak_enumeration_terminates_and_subsumes_sc_on_lean_seeds() {
    for seed in [1, 6, 15] {
        let mut spec = WorkloadSpec::lean(seed);
        spec.true_bugs = (seed & 1) as usize;
        spec.double_free = ((seed >> 1) & 1) as usize;
        spec.null_deref = ((seed >> 2) & 1) as usize;
        spec.leak = ((seed >> 3) & 1) as usize;
        let w = generate(&spec);
        let sc = explore(&w.prog, EnumLimits::default());
        assert!(sc.complete);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let e = explore_under(&w.prog, model, EnumLimits::default());
            assert!(
                e.complete,
                "{} under {model:?}: {} states",
                spec.name, e.states
            );
            assert!(
                sc.hits.is_subset(&e.hits),
                "{} under {model:?}: weakening lost SC hits {:?}",
                spec.name,
                sc.hits.difference(&e.hits)
            );
            for bug in &w.truth.seeded {
                assert!(
                    e.hits.contains(&(bug.kind, bug.source, bug.sink)),
                    "{} under {model:?}: seeded {bug:?} missed",
                    spec.name
                );
            }
        }
    }
}
