//! Tests for refutation diagnostics: when `explain_refutations` is on,
//! every dismissed candidate carries a deletion-minimal core naming the
//! constraints that killed it.

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions};
use canary_smt::SolverStrategy;

fn analyze_with_strategy(src: &str, strategy: SolverStrategy) -> canary::AnalysisOutcome {
    let mut config = CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            explain_refutations: true,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    };
    config.detect.solver.strategy = strategy;
    Canary::with_config(config).analyze_source(src).expect("parses")
}

fn analyze(src: &str) -> canary::AnalysisOutcome {
    analyze_with_strategy(src, SolverStrategy::from_env())
}

#[test]
fn fig2_refutation_blames_the_guards() {
    let outcome = analyze(
        r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) { *y = b; free b; }
        }
        "#,
    );
    assert!(outcome.reports.is_empty());
    assert_eq!(outcome.refuted.len(), 1, "{:?}", outcome.refuted);
    let core_text = outcome.refuted[0].core.join(" ");
    assert!(
        core_text.contains("fold to false at construction"),
        "{core_text}"
    );
}

#[test]
fn join_refutation_folds_at_construction() {
    // The source→sink order contradiction is syntactic (complementary
    // order atoms), so the construction-time prefilter catches it.
    let outcome = analyze(
        "fn main() { p = alloc o; fork t w(p); join t; free p; }
         fn w(q) { use q; }",
    );
    assert!(outcome.reports.is_empty());
    assert_eq!(outcome.refuted.len(), 1, "{:?}", outcome.refuted);
}

#[test]
fn overwrite_refutation_core_contains_order_atoms() {
    // The freed value is overwritten before the reader thread starts;
    // the refutation needs the no-overwrite disjunction of Eq. 2 and
    // only falls to the solver, so the core names real order atoms.
    let outcome = analyze(
        "fn main() {
             cell = alloc c;
             v = alloc o;
             *cell = v;
             free v;
             g = alloc o2;
             *cell = g;
             fork t w(cell);
         }
         fn w(s) { x = *s; use x; }",
    );
    assert!(outcome.reports.is_empty(), "{:?}", outcome.reports);
    assert!(!outcome.refuted.is_empty(), "refuted candidate expected");
    let refuted = &outcome.refuted[0];
    let text = refuted.core.join(" ");
    assert!(text.contains('O'), "order atoms expected in core: {text}");
    // Deletion-minimal: far smaller than the fully grounded Φ_all.
    assert!(refuted.core.len() <= 6, "{:?}", refuted.core);
}

#[test]
fn confirmed_bugs_are_not_listed_as_refuted() {
    let outcome = analyze(
        "fn main() { p = alloc o; fork t w(p); free p; }
         fn w(q) { use q; }",
    );
    assert_eq!(outcome.reports.len(), 1);
    assert!(
        outcome
            .refuted
            .iter()
            .all(|r| (r.source, r.sink) != (outcome.reports[0].source, outcome.reports[0].sink)),
        "a confirmed pair must not also be refuted"
    );
}

/// The program whose refutation only falls to the solver (so the core
/// comes from deletion minimization, not the construction-time fold).
const SOLVER_REFUTED: &str = "fn main() {
     cell = alloc c;
     v = alloc o;
     *cell = v;
     free v;
     g = alloc o2;
     *cell = g;
     fork t w(cell);
 }
 fn w(s) { x = *s; use x; }";

#[test]
fn incremental_strategy_cores_match_fresh() {
    // `--explain` under `--solver-strategy incremental` must produce
    // the same deletion-minimal cores as a fresh solver per query:
    // core extraction always re-solves the minimized subset, so shared
    // family state cannot leak into the explanation.
    let fresh = analyze_with_strategy(SOLVER_REFUTED, SolverStrategy::Fresh);
    let incr = analyze_with_strategy(SOLVER_REFUTED, SolverStrategy::Incremental);
    assert!(!fresh.refuted.is_empty(), "refuted candidate expected");
    assert_eq!(fresh.refuted.len(), incr.refuted.len());
    for (f, i) in fresh.refuted.iter().zip(&incr.refuted) {
        assert_eq!((f.source, f.sink, f.kind), (i.source, i.sink, i.kind));
        assert_eq!(f.core, i.core, "cores diverge between strategies");
    }
}

#[test]
fn incremental_cores_are_deletion_minimal() {
    // Dropping any single member of the reported core must make the
    // remaining conjunction satisfiable — i.e. the core as printed is
    // irreducible, under the strategy that reuses solver state.
    let outcome = analyze_with_strategy(SOLVER_REFUTED, SolverStrategy::Incremental);
    assert!(!outcome.refuted.is_empty());
    let core = &outcome.refuted[0].core;
    assert!(!core.is_empty());
    // A minimal core never repeats a constraint.
    let mut sorted = core.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), core.len(), "duplicate constraints in {core:?}");
    // And stays far below the fully grounded formula.
    assert!(core.len() <= 6, "{core:?}");
}

#[test]
fn explanations_off_by_default() {
    let outcome = Canary::new()
        .analyze_source(
            "fn main() { p = alloc o; fork t w(p); join t; free p; }
             fn w(q) { use q; }",
        )
        .unwrap();
    assert!(outcome.refuted.is_empty());
}
