//! End-to-end reproductions of the programs discussed in the paper's
//! §2 and §3 (Fig. 2 and Fig. 5), checked through the public facade.

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;
use canary_ir::{parse, CallGraph, OrderGraph};

const FIG2: &str = r#"
    fn main(a) {
        x = alloc o1;
        *x = a;
        fork t thread1(x);
        if (theta1) {
            c = *x;
            use c;
        }
    }
    fn thread1(y) {
        b = alloc o2;
        if (!theta1) {
            *y = b;
            free b;
        }
    }
"#;

#[test]
fn fig2_is_not_reported() {
    let outcome = Canary::new().analyze_source(FIG2).unwrap();
    assert!(
        outcome.reports.is_empty(),
        "the contradictory guards must refute the path: {:?}",
        outcome.reports
    );
    // But the machinery did find the candidate flow.
    assert!(outcome.metrics.interference_edges >= 1);
    assert!(outcome.metrics.escaped_objects >= 2, "o1 and o2 escape");
}

#[test]
fn fig2_with_same_polarity_guards_is_reported() {
    // If both sides run under θ1, the conditions agree and the bug is
    // realizable.
    let src = FIG2.replace("!theta1", "theta1");
    let outcome = Canary::new().analyze_source(&src).unwrap();
    assert!(
        outcome
            .reports
            .iter()
            .any(|r| r.kind == BugKind::UseAfterFree && r.inter_thread),
        "{:?}",
        outcome.reports
    );
}

#[test]
fn fig2_report_is_concise() {
    let src = FIG2.replace("!theta1", "theta1");
    let prog = parse(&src).unwrap();
    let outcome = Canary::new().analyze(&prog);
    let report = &outcome.reports[0];
    // §1: "concise bug reports with a limited number of relevant
    // statements" — the witness path stays in single digits.
    assert!(report.path.len() <= 8, "{:?}", report.path);
    let text = report.render(&prog);
    assert!(text.contains("use-after-free"));
    assert!(text.contains("thread1"));
}

/// Fig. 5(b): the value-flow path ⟨a@ℓ2, b@ℓ3, b@ℓ4, a@ℓ1⟩ violates
/// program order; the partial-order constraints must refute it. We
/// reproduce the essence at the API level: a flow that would need a
/// statement to execute before its own thread's earlier statement is
/// never reported.
#[test]
fn fig5b_program_order_violation_pruned() {
    // t2 copies q=p then loads c=*q *before* t1 stores; the only way
    // free(d) reaches use(c) would reverse t2's program order.
    let src = r#"
        fn main() {
            p = alloc cell;
            seed = alloc s0;
            *p = seed;
            fork t1 writer(p);
        }
        fn writer(w) {
            d = alloc s1;
            c = *w;
            use c;
            *w = d;
            free d;
        }
    "#;
    let outcome = Canary::new().analyze_source(src).unwrap();
    // The load happens before the store in the same thread, so the
    // freed value can never reach it.
    assert!(
        outcome
            .reports
            .iter()
            .all(|r| r.kind != BugKind::UseAfterFree),
        "{:?}",
        outcome.reports
    );
}

/// Fig. 5(a)'s lesson at the order-graph level: loads and stores in
/// different threads are unordered (any interleaving), while fork/join
/// impose real order.
#[test]
fn fig5a_order_relations() {
    let prog = parse(
        "fn main() { p = alloc cell; fork t1 w1(p); fork t2 w2(p); }
         fn w1(x) { a = alloc oa; *x = a; }
         fn w2(y) { b = *y; use b; }",
    )
    .unwrap();
    let cg = CallGraph::build(&prog);
    let og = OrderGraph::build(&prog, &cg);
    let store = prog
        .labels()
        .find(|&l| matches!(prog.inst(l), canary_ir::Inst::Store { .. }))
        .unwrap();
    let load = prog
        .labels()
        .find(|&l| matches!(prog.inst(l), canary_ir::Inst::Load { .. }))
        .unwrap();
    assert_eq!(og.program_order(store, load), None, "racy pair unordered");
    // And the interleaving is actually reported as a flow: the store
    // may feed the load.
    let outcome = Canary::new().analyze(&prog);
    assert!(outcome.metrics.interference_edges >= 1);
}

/// The paper's workflow diagram (Fig. 1): all three stages produce
/// observable artifacts on one pass.
#[test]
fn fig1_pipeline_stages_all_report_metrics() {
    let outcome = Canary::with_config(CanaryConfig::default())
        .analyze_source(FIG2)
        .unwrap();
    let m = &outcome.metrics;
    assert!(m.vfg_nodes > 0, "data dependence stage ran");
    assert!(m.interference_edges > 0, "interference stage ran");
    assert!(m.detect.candidate_paths > 0, "source-sink stage ran");
    assert!(m.t_total() >= m.t_vfg());
}
