//! The report-determinism contract: every interchange artifact the
//! observability layer produces — the SARIF 2.1.0 document, the
//! provenance DAG (JSON and DOT), the stable fingerprints and the
//! run-to-run diff — must be byte-identical for any `--threads` value
//! and either `--solver-strategy`. The only tolerated difference is
//! the run manifest itself (`invocations[0].properties`), which
//! legitimately records the knobs being varied plus nondeterministic
//! phase wall times.
//!
//! Layers:
//!
//! 1. a property test over random `canary-workloads` programs
//!    comparing the full SARIF document, every report's provenance
//!    JSON + DOT, and the pairwise diff across four front-end /
//!    solver-strategy combinations;
//! 2. byte-level CLI checks on `examples/fig2_variant.cir`, including
//!    the Fig. 2 witness as a thread-aware codeFlow;
//! 3. baseline classification: an injected bug is `new`, a removed
//!    one is `fixed`, and unchanged corpora diff clean;
//! 4. a dedup regression: fingerprint-equal reports collapse to the
//!    shortest witness before emission.

use canary::{Canary, CanaryConfig};
use canary_detect::MemoryModel;
use canary_report::{diff_sarif, sarif_document, RunManifest};
use canary_smt::SolverStrategy;
use canary_workloads::{generate, WorkloadSpec};
use proptest::prelude::*;
use serde_json::Value;

fn configured(threads: usize, strategy: SolverStrategy, model: MemoryModel) -> Canary {
    let mut config = CanaryConfig::default();
    config.threads = threads;
    config.detect.solver.strategy = strategy;
    config.detect.memory_model = model;
    Canary::with_config(config)
}

/// A fixed manifest so library-level byte comparisons exercise the
/// document body, not the (legitimately varying) invocation block.
fn fixed_manifest(file: &str) -> RunManifest {
    RunManifest {
        file: file.to_string(),
        corpus_hash: "0000000000000000".to_string(),
        strategy: "fresh".to_string(),
        threads: 1,
        config: vec![("checkers".into(), "all".into())],
        canary_version: "0.0.0-fixed".to_string(),
        rustc_version: "rustc 0.0.0-fixed".to_string(),
        timings_ms: vec![],
    }
}

/// Renders the three artifacts under test for one configuration:
/// the pretty-printed SARIF document and, per report, the provenance
/// DAG as JSON and DOT.
fn artifacts(prog: &canary_ir::Program, outcome: &canary::AnalysisOutcome) -> (String, String, String) {
    let manifest = fixed_manifest("workload.cir");
    let sarif = serde_json::to_string_pretty(&sarif_document(prog, &outcome.reports, &manifest))
        .expect("valid json");
    let mut prov_json = String::new();
    let mut prov_dot = String::new();
    for r in &outcome.reports {
        let p = r.provenance.as_ref().expect("every report carries provenance");
        prov_json.push_str(&serde_json::to_string_pretty(&p.to_json()).expect("valid json"));
        prov_json.push('\n');
        prov_dot.push_str(&p.to_dot(&format!("{}", r.kind)));
        prov_dot.push('\n');
    }
    (sarif, prov_json, prov_dot)
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1000,
        120usize..300,
        1usize..4,
        1usize..4,
        0usize..3,
        0usize..2,
        0usize..2,
        0usize..2,
    )
        .prop_map(
            |(seed, stmts, threads, cells, bugs, df, sb, mp)| WorkloadSpec {
                name: format!("report-det-{seed}"),
                seed,
                target_stmts: stmts,
                threads,
                shared_cells: cells,
                true_bugs: bugs,
                benign_patterns: 1,
                contradiction_patterns: 1,
                handshake_patterns: 1,
                order_fp_patterns: 0,
                double_free: df,
                null_deref: 1,
                leak: 0,
                double_lock: 1,
                conflict_lock: 1,
                sb_patterns: sb,
                mp_patterns: mp,
                lb_patterns: 0,
                family_fanout: 0,
                hard_family_ratio: 0.0,
                filler: true,
            },
        )
}

/// The `canary/v1` fingerprints of a rendered SARIF document.
fn fingerprints(doc: &Value) -> std::collections::BTreeSet<String> {
    doc["runs"][0]["results"]
        .as_array()
        .expect("results array")
        .iter()
        .map(|r| {
            r["partialFingerprints"]["canary/v1"]
                .as_str()
                .expect("canary/v1 fingerprint")
                .to_string()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn report_artifacts_identical_across_threads_and_strategy(spec in spec_strategy()) {
        let w = generate(&spec);
        let combos = [
            (1, SolverStrategy::Fresh),
            (4, SolverStrategy::Fresh),
            (1, SolverStrategy::Incremental),
            (4, SolverStrategy::Incremental),
        ];
        // Per memory model: every artifact byte-identical across the
        // front-end / solver combos, and same-corpus runs diff clean.
        let mut model_fps: Vec<std::collections::BTreeSet<String>> = Vec::new();
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let mut rendered: Vec<(String, String, String)> = Vec::new();
            let mut docs: Vec<Value> = Vec::new();
            for (threads, strategy) in combos {
                let outcome = configured(threads, strategy, model).analyze(&w.prog);
                let prog = outcome.analyzed_program.as_ref().unwrap_or(&w.prog);
                rendered.push(artifacts(prog, &outcome));
                docs.push(sarif_document(prog, &outcome.reports, &fixed_manifest("workload.cir")));
            }
            for (i, r) in rendered.iter().enumerate().skip(1) {
                prop_assert_eq!(&rendered[0].0, &r.0, "SARIF differs in combo {} under {:?}", i, model);
                prop_assert_eq!(&rendered[0].1, &r.1, "provenance JSON differs in combo {} under {:?}", i, model);
                prop_assert_eq!(&rendered[0].2, &r.2, "provenance DOT differs in combo {} under {:?}", i, model);
            }
            // Any two runs of the same corpus diff clean: nothing new,
            // nothing fixed, every finding persisting.
            for cur in docs.iter().skip(1) {
                let d = diff_sarif(&docs[0], cur).expect("well-formed SARIF");
                prop_assert!(d.new.is_empty() && d.fixed.is_empty(), "{:?} under {:?}", d, model);
            }
            model_fps.push(fingerprints(&docs[0]));
        }
        // Cross-model stability: weakening the model only adds
        // findings, and the SC-visible ones keep their fingerprints
        // (so a baseline recorded under SC diffs clean under TSO/PSO).
        let [sc, tso, pso] = &model_fps[..] else { unreachable!() };
        prop_assert!(sc.is_subset(tso), "TSO lost SC fingerprints: {:?}", sc.difference(tso));
        prop_assert!(sc.is_subset(pso), "PSO lost SC fingerprints: {:?}", sc.difference(pso));
    }
}

// ---------------------------------------------------------------------------
// CLI-level byte identity and the Fig. 2 codeFlow.
// ---------------------------------------------------------------------------

fn fig2_variant() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/fig2_variant.cir")
}

fn run_sarif(path: &std::path::Path, extra: &[&str]) -> Value {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_canary"))
        .arg(path)
        .args(["--format", "sarif"])
        .args(extra)
        .output()
        .expect("run canary");
    serde_json::from_slice(&out.stdout).expect("valid json")
}

/// Blanks the run manifest: the invocation properties record the
/// *actual* strategy/threads/wall-times, which are exactly the knobs
/// this test varies. Everything else must match byte-for-byte.
fn normalize_manifest(mut doc: Value) -> String {
    {
        let Value::Object(top) = &mut doc else {
            panic!("expected object document")
        };
        let Some(Value::Array(runs)) = top.get_mut("runs") else {
            panic!("expected runs array")
        };
        let Some(Value::Object(run)) = runs.get_mut(0) else {
            panic!("expected run object")
        };
        let Some(Value::Array(invs)) = run.get_mut("invocations") else {
            panic!("expected invocations array")
        };
        let Some(Value::Object(inv)) = invs.get_mut(0) else {
            panic!("expected invocation object")
        };
        inv.insert("properties".to_string(), Value::Null);
    }
    serde_json::to_string_pretty(&doc).expect("valid json")
}

#[test]
fn cli_sarif_is_byte_identical_across_threads_and_strategy() {
    let path = fig2_variant();
    let base = normalize_manifest(run_sarif(&path, &[]));
    for extra in [
        &["--threads", "4"][..],
        &["--solver-strategy", "fresh"][..],
        &["--threads", "4", "--solver-strategy", "fresh"][..],
        &["--solver-strategy", "incremental"][..],
    ] {
        let doc = normalize_manifest(run_sarif(&path, extra));
        assert_eq!(base, doc, "SARIF differs under {extra:?}");
    }
}

/// The byte-identity contract holds under the weak models too: for a
/// fixed `--memory-model`, varying `--threads` and
/// `--solver-strategy` must not change a byte outside the manifest.
#[test]
fn cli_sarif_is_byte_identical_under_weak_models() {
    let path = fig2_variant();
    for model in ["tso", "pso"] {
        let base = normalize_manifest(run_sarif(&path, &["--memory-model", model]));
        for extra in [
            &["--threads", "4"][..],
            &["--solver-strategy", "incremental"][..],
            &["--threads", "4", "--solver-strategy", "incremental"][..],
        ] {
            let mut args = vec!["--memory-model", model];
            args.extend_from_slice(extra);
            let doc = normalize_manifest(run_sarif(&path, &args));
            assert_eq!(base, doc, "SARIF differs under {model} with {extra:?}");
        }
    }
}

/// SC-visible findings keep their fingerprints when the analysis runs
/// under a weaker model: a baseline recorded under SC must diff clean
/// when re-checked under TSO or PSO.
#[test]
fn cli_fingerprints_of_sc_findings_are_model_invariant() {
    let path = fig2_variant();
    let fps = |model: &str| fingerprints(&run_sarif(&path, &["--memory-model", model]));
    let sc = fps("sc");
    assert!(!sc.is_empty(), "fig2 variant reports under SC");
    for model in ["tso", "pso"] {
        let weak = fps(model);
        assert!(
            sc.is_subset(&weak),
            "{model} lost SC fingerprints: {:?}",
            sc.difference(&weak)
        );
    }
}

#[test]
fn fig2_variant_sarif_codeflow_reproduces_the_witness() {
    let doc = run_sarif(&fig2_variant(), &[]);
    assert_eq!(doc["version"], "2.1.0");
    assert!(
        doc["$schema"].as_str().unwrap().contains("sarif-schema-2.1.0"),
        "{:?}",
        doc["$schema"]
    );
    let results = doc["runs"][0]["results"].as_array().unwrap();
    assert_eq!(results.len(), 1, "one UAF on the racy Fig. 2 variant");
    let r = &results[0];
    assert_eq!(r["ruleId"], "canary/use-after-free");
    let fp = r["partialFingerprints"]["canary/v1"].as_str().unwrap();
    assert_eq!(fp.len(), 16, "16-hex-digit fingerprint: {fp}");
    // One threadFlow per static thread; the fork appears in both the
    // forking and the forked flow (a flow-join point), and the global
    // executionOrder reconstructs the witness interleaving.
    let flows = r["codeFlows"][0]["threadFlows"].as_array().unwrap();
    assert_eq!(flows.len(), 2, "main + forked thread");
    let ids: Vec<&str> = flows.iter().map(|f| f["id"].as_str().unwrap()).collect();
    assert_eq!(ids, ["t0", "t1"]);
    let texts: Vec<Vec<String>> = flows
        .iter()
        .map(|f| {
            f["locations"]
                .as_array()
                .unwrap()
                .iter()
                .map(|l| l["location"]["message"]["text"].as_str().unwrap().to_string())
                .collect()
        })
        .collect();
    assert!(
        texts[0].iter().any(|t| t.contains("fork") && t.contains("[forks t1]")),
        "{texts:?}"
    );
    assert!(
        texts[1].iter().any(|t| t.contains("[thread t1 starts here]")),
        "{texts:?}"
    );
    assert!(texts[1].iter().any(|t| t.contains("free b")), "{texts:?}");
    assert!(texts[0].iter().any(|t| t.contains("use c")), "{texts:?}");
    // executionOrder values are unique, 1-based, and the free precedes
    // the use in the witness interleaving despite living in another
    // thread's flow.
    let mut orders: Vec<(i64, String)> = flows
        .iter()
        .flat_map(|f| f["locations"].as_array().unwrap())
        .map(|l| {
            (
                l["executionOrder"].as_i64().unwrap(),
                l["location"]["message"]["text"].as_str().unwrap().to_string(),
            )
        })
        .collect();
    orders.sort();
    let free_pos = orders.iter().position(|(_, t)| t.contains("free b")).unwrap();
    let use_pos = orders.iter().position(|(_, t)| t.contains("use c")).unwrap();
    assert!(free_pos < use_pos, "witness order: free before use: {orders:?}");
    // Provenance rides along under properties: licensed interference
    // edges carry the escaped object and the MHP facts consulted.
    let prov = &r["properties"]["provenance"];
    assert!(!prov["edges"].as_array().unwrap().is_empty());
    assert!(
        prov["edges"]
            .as_array()
            .unwrap()
            .iter()
            .any(|e| e["kind"] == "interference" && !e["escape"].is_null()),
        "{prov:?}"
    );
    assert!(!prov["mhp"].as_array().unwrap().is_empty(), "{prov:?}");
    assert!(!prov["model"].is_null(), "satisfying model slice attached");
}

// ---------------------------------------------------------------------------
// Baseline classification: injected bug is new, removed bug is fixed.
// ---------------------------------------------------------------------------

const ONE_BUG: &str = "fn main() { p = alloc o; fork t w(p); free p; }\nfn w(q) { use q; }\n";
const OTHER_BUG: &str =
    "fn main() { s = alloc o2; fork t r(s); free s; }\nfn r(h) { use h; }\n";

fn temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("canary-report-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path
}

fn canary_bin() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_canary"))
}

#[test]
fn baseline_diff_classifies_injected_and_removed_bugs() {
    let a = temp("one_bug.cir", ONE_BUG);
    let b = temp("other_bug.cir", OTHER_BUG);
    let a_sarif = temp("one_bug.sarif", "");
    let b_sarif = temp("other_bug.sarif", "");
    for (src, out) in [(&a, &a_sarif), (&b, &b_sarif)] {
        let st = canary_bin()
            .arg(src)
            .args(["--sarif-out", out.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(st.status.code(), Some(1), "both corpora have one bug");
    }
    // b vs baseline a: a's finding is fixed, b's is new -> exit 1.
    let out = canary_bin()
        .arg("diff")
        .arg(&a_sarif)
        .arg(&b_sarif)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "new finding gates the exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[new]"), "{stdout}");
    assert!(stdout.contains("[fixed]"), "{stdout}");
    assert!(stdout.contains("1 new, 1 fixed, 0 persisting"), "{stdout}");
    // Unchanged corpus against its own baseline: exit 0, all persisting.
    let out = canary_bin()
        .arg(&a)
        .args(["--baseline", a_sarif.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "no new findings on unchanged corpus");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 new, 0 fixed, 1 persisting"), "{stdout}");
    // The same corpus against the other baseline flips to exit 1.
    let out = canary_bin()
        .arg(&b)
        .args(["--baseline", a_sarif.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "injected bug classified as new");
}

#[test]
fn fingerprints_are_stable_under_line_shifts() {
    // The same bug with unrelated statements spliced above it: every
    // label moves, the fingerprint must not.
    let shifted = "fn main() { z1 = alloc filler; z2 = alloc filler2; \
                   p = alloc o; fork t w(p); free p; }\nfn w(q) { use q; }\n";
    let run = |src: &str, name: &str| -> String {
        let path = temp(name, src);
        let out = canary_bin().arg(&path).arg("--json").output().unwrap();
        let doc: Value = serde_json::from_slice(&out.stdout).unwrap();
        doc["reports"][0]["fingerprint"].as_str().unwrap().to_string()
    };
    assert_eq!(
        run(ONE_BUG, "stable_base.cir"),
        run(shifted, "stable_shifted.cir"),
        "fingerprint must survive label renumbering"
    );
}

#[test]
fn lock_fingerprints_are_stable_under_line_shifts() {
    // Same discipline bugs with filler spliced above them: every label
    // moves, the fingerprints must not. Covers both lock checkers.
    let run = |src: &str, name: &str, checkers: &str| -> Vec<String> {
        let path = temp(name, src);
        let out = canary_bin()
            .arg(&path)
            .args(["--checkers", checkers, "--json"])
            .output()
            .unwrap();
        let doc: Value = serde_json::from_slice(&out.stdout).unwrap();
        doc["reports"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["fingerprint"].as_str().unwrap().to_string())
            .collect()
    };
    let dl_base = "fn main() { m = alloc mu; lock m; lock m; unlock m; }";
    let dl_shifted = "fn main() { z1 = alloc filler; z2 = alloc filler2; \
                      m = alloc mu; lock m; lock m; unlock m; }";
    let dl_a = run(dl_base, "dl_base.cir", "doublelock");
    let dl_b = run(dl_shifted, "dl_shifted.cir", "doublelock");
    assert_eq!(dl_a.len(), 1, "{dl_a:?}");
    assert_eq!(dl_a, dl_b, "double-lock fingerprint must survive label renumbering");
    let cl_base = "fn main() { a = alloc ma; b = alloc mb; fork t w(a, b); \
                   lock a; lock b; unlock b; unlock a; }\n\
                   fn w(x, y) { lock y; lock x; unlock x; unlock y; }";
    let cl_shifted = "fn main() { z1 = alloc filler; z2 = alloc filler2; \
                      a = alloc ma; b = alloc mb; fork t w(a, b); \
                      lock a; lock b; unlock b; unlock a; }\n\
                      fn w(x, y) { lock y; lock x; unlock x; unlock y; }";
    let cl_a = run(cl_base, "cl_base.cir", "conflictlock");
    let cl_b = run(cl_shifted, "cl_shifted.cir", "conflictlock");
    assert_eq!(cl_a.len(), 1, "{cl_a:?}");
    assert_eq!(cl_a, cl_b, "conflict-lock fingerprint must survive label renumbering");
}

// ---------------------------------------------------------------------------
// Metrics-registry determinism: the OpenMetrics export and the `metrics`
// JSON registry block obey the same contract as the SARIF document —
// byte-identical across `--threads` values once the volatile families
// (wall clock, RSS) are normalized, and byte-identical across solver
// strategies once the strategy-sensitive `canary_solver_*` families
// are normalized too (the incremental back-end legitimately does less
// CDCL work — that is PR 4's whole point).
// ---------------------------------------------------------------------------

use canary_trace::metrics::{normalize_openmetrics, normalize_registry_json};

/// Renders both telemetry artifacts for one configuration.
fn telemetry(prog: &canary_ir::Program, threads: usize, strategy: SolverStrategy) -> (String, Value) {
    let outcome = configured(threads, strategy, MemoryModel::Sc).analyze(prog);
    let registry = outcome.metrics.to_registry();
    (registry.to_openmetrics(), registry.to_json())
}

fn normalized_json(mut doc: Value, cross_strategy: bool) -> String {
    normalize_registry_json(&mut doc, cross_strategy);
    serde_json::to_string_pretty(&doc).expect("valid json")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn metrics_registry_identical_across_threads_and_strategy(spec in spec_strategy()) {
        let w = generate(&spec);
        let (om_1f, js_1f) = telemetry(&w.prog, 1, SolverStrategy::Fresh);
        let (om_4f, js_4f) = telemetry(&w.prog, 4, SolverStrategy::Fresh);
        let (om_1i, js_1i) = telemetry(&w.prog, 1, SolverStrategy::Incremental);
        let (om_4i, js_4i) = telemetry(&w.prog, 4, SolverStrategy::Incremental);
        // Across threads (fixed strategy): only the volatile families
        // may differ. Counters, byte gauges and the per-family solver
        // work histograms must already agree.
        prop_assert_eq!(
            normalize_openmetrics(&om_1f, false),
            normalize_openmetrics(&om_4f, false),
            "fresh OpenMetrics differs across threads"
        );
        prop_assert_eq!(
            normalize_openmetrics(&om_1i, false),
            normalize_openmetrics(&om_4i, false),
            "incremental OpenMetrics differs across threads"
        );
        prop_assert_eq!(
            normalized_json(js_1f.clone(), false),
            normalized_json(js_4f, false),
            "fresh registry JSON differs across threads"
        );
        prop_assert_eq!(
            normalized_json(js_1i.clone(), false),
            normalized_json(js_4i, false),
            "incremental registry JSON differs across threads"
        );
        // Across strategies: additionally quarantine `canary_solver_*`.
        prop_assert_eq!(
            normalize_openmetrics(&om_1f, true),
            normalize_openmetrics(&om_1i, true),
            "OpenMetrics differs across strategies beyond solver work"
        );
        prop_assert_eq!(
            normalized_json(js_1f, true),
            normalized_json(js_1i, true),
            "registry JSON differs across strategies beyond solver work"
        );
    }
}

/// CLI-level check on the shipped example: `--metrics-out` bytes obey
/// the same normalization contract, and the raw export is well-formed
/// OpenMetrics text.
#[test]
fn cli_metrics_out_is_deterministic_and_well_formed() {
    let path = fig2_variant();
    let run = |extra: &[&str]| -> String {
        let out_path = std::env::temp_dir()
            .join("canary-report-determinism")
            .join(format!("metrics-{}.txt", extra.join("_").replace("--", "")));
        std::fs::create_dir_all(out_path.parent().unwrap()).unwrap();
        let st = canary_bin()
            .arg(&path)
            .args(["--metrics-out", out_path.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        assert_eq!(st.status.code(), Some(1), "fig2 variant reports its UAF");
        std::fs::read_to_string(&out_path).unwrap()
    };
    let base = run(&[]);
    // Well-formed: typed families, counter naming, EOF terminator.
    assert!(base.ends_with("# EOF\n"), "OpenMetrics needs the EOF marker");
    for family in [
        "# TYPE canary_vfg_nodes gauge",
        "# TYPE canary_detect_queries counter",
        "canary_detect_queries_total ",
        "# TYPE canary_phase_wall_seconds gauge",
        "canary_phase_wall_seconds{phase=\"dataflow\"}",
        "# TYPE canary_solver_query_decisions histogram",
        "canary_solver_query_decisions_bucket{kind=\"use-after-free\",le=\"+Inf\"}",
        "# TYPE canary_term_table_bytes gauge",
        "# TYPE canary_phase_peak_rss_bytes gauge",
    ] {
        assert!(base.contains(family), "missing `{family}` in:\n{base}");
    }
    // Byte identity across threads after normalizing volatile families.
    let threads4 = run(&["--threads", "4"]);
    assert_eq!(
        normalize_openmetrics(&base, false),
        normalize_openmetrics(&threads4, false),
        "--metrics-out differs across --threads"
    );
    // And across strategies after quarantining solver work too.
    let fresh = run(&["--solver-strategy", "fresh"]);
    assert_eq!(
        normalize_openmetrics(&base, true),
        normalize_openmetrics(&fresh, true),
        "--metrics-out differs across strategies beyond solver work"
    );
}

// ---------------------------------------------------------------------------
// Dedup regression: fingerprint-equal reports collapse pre-emission.
// ---------------------------------------------------------------------------

#[test]
fn fingerprint_equal_reports_dedup_to_shortest_witness() {
    // Loop unrolling clones the free at three labels; all three clones
    // produce position-stripped-identical witnesses, so exactly one
    // report (the shortest) survives.
    let src = "fn main() { p = alloc o; fork t w(p); while (c) { free p; } }\n\
               fn w(q) { use q; }\n";
    let path = temp("dedup_unroll.cir", src);
    let out = canary_bin()
        .arg(&path)
        .args(["--unroll", "3", "--checkers", "uaf", "--json"])
        .output()
        .unwrap();
    let doc: Value = serde_json::from_slice(&out.stdout).unwrap();
    let reports = doc["reports"].as_array().unwrap();
    assert_eq!(reports.len(), 1, "duplicates collapse: {reports:?}");
    assert_eq!(doc["metrics"]["reports_deduped"].as_u64(), Some(2));
    // The survivor is a genuine shortest witness: no longer schedule
    // exists among the collapsed clones (free@l3 is the earliest).
    let schedule = reports[0]["witness_schedule"].as_array().unwrap();
    assert_eq!(schedule.len(), 4, "{schedule:?}");
}
