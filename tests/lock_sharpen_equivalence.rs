//! Soundness envelope of lock-sharpened MHP: the sharpening may only
//! delete interference edges that a killing store inside the same
//! critical section makes unobservable, so
//!
//! * on **lock-free** programs it must be a strict no-op — same
//!   reports, same refutations, zero `mhp_lock_pruned`, for random
//!   generated workloads (property-tested) and the embedded corpus;
//! * on **lock-guarded** subjects it must actually fire
//!   (`mhp_lock_pruned > 0`) without changing the confirmed findings.

use canary::{AnalysisOutcome, Canary, CanaryConfig};
use canary_workloads::{generate, WorkloadSpec};
use proptest::prelude::*;

fn with_sharpening(on: bool) -> Canary {
    let mut config = CanaryConfig::default();
    config.interference.lock_sharpen = on;
    Canary::with_config(config)
}

/// Everything a sharpening-induced change would show up in.
fn signature(outcome: &AnalysisOutcome) -> (Vec<(String, u32, u32)>, Vec<(String, u32, u32)>, usize) {
    (
        outcome
            .reports
            .iter()
            .map(|r| (r.kind.to_string(), r.source.0, r.sink.0))
            .collect(),
        outcome
            .refuted
            .iter()
            .map(|r| (r.kind.to_string(), r.source.0, r.sink.0))
            .collect(),
        outcome.metrics.interference_edges,
    )
}

fn lock_free_spec(seed: u64, stmts: usize, threads: usize, bugs: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("sharpen-eq-{seed}"),
        seed,
        target_stmts: stmts,
        threads,
        shared_cells: 2,
        true_bugs: bugs,
        benign_patterns: 1,
        contradiction_patterns: 1,
        handshake_patterns: 1,
        order_fp_patterns: 1,
        double_free: 0,
        null_deref: 0,
        leak: 0,
        double_lock: 0,
        conflict_lock: 0,
        sb_patterns: 0,
        mp_patterns: 0,
        lb_patterns: 0,
        family_fanout: 0,
        hard_family_ratio: 0.0,
        filler: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random lock-free workloads: sharpening on vs off is outcome-
    /// identical and never counts a pruned pair.
    #[test]
    fn lock_free_workloads_are_sharpening_invariant(
        seed in 0u64..1000,
        stmts in 200usize..500,
        threads in 1usize..4,
        bugs in 0usize..3,
    ) {
        let w = generate(&lock_free_spec(seed, stmts, threads, bugs));
        let on = with_sharpening(true).analyze(&w.prog);
        let off = with_sharpening(false).analyze(&w.prog);
        prop_assert_eq!(on.metrics.mhp_lock_pruned, 0, "lock-free: nothing to prune");
        prop_assert_eq!(off.metrics.mhp_lock_pruned, 0);
        prop_assert_eq!(signature(&on), signature(&off));
    }
}

/// A lock-guarded subject where a killing store inside the writer's
/// critical section shadows the first store before the unlock: the
/// sharpening fires, and firing changes no finding.
#[test]
fn lock_guarded_subject_prunes_without_changing_findings() {
    let src = "fn main() {
                   mu = alloc m; cell = alloc c;
                   init = alloc i; *cell = init;
                   fork t w(mu, cell);
                   lock mu;
                   x = *cell; use x;
                   unlock mu;
               }
               fn w(lk, slot) {
                   lock lk;
                   v = alloc o1; *slot = v;
                   u = alloc o2; *slot = u;
                   unlock lk;
               }";
    let on = with_sharpening(true).analyze_source(src).unwrap();
    let off = with_sharpening(false).analyze_source(src).unwrap();
    assert!(
        on.metrics.mhp_lock_pruned > 0,
        "sharpening must fire on the shadowed store"
    );
    assert_eq!(off.metrics.mhp_lock_pruned, 0);
    assert!(
        on.metrics.interference_edges < off.metrics.interference_edges,
        "pruning must remove at least one edge ({} vs {})",
        on.metrics.interference_edges,
        off.metrics.interference_edges
    );
    let reports = |o: &AnalysisOutcome| -> Vec<(String, u32, u32)> {
        o.reports
            .iter()
            .map(|r| (r.kind.to_string(), r.source.0, r.sink.0))
            .collect()
    };
    assert_eq!(reports(&on), reports(&off), "sharpening must not change findings");
}

/// The seeded lock corpora stay sharpening-invariant too: the guarded
/// patterns carry no shadowed store, so the counter stays zero and the
/// findings agree.
#[test]
fn lock_seeded_workloads_keep_findings_under_sharpening() {
    for seed in [5, 6] {
        let w = generate(&WorkloadSpec::lean_locks(seed));
        let on = with_sharpening(true).analyze(&w.prog);
        let off = with_sharpening(false).analyze(&w.prog);
        let reports = |o: &AnalysisOutcome| -> Vec<(String, u32, u32)> {
            o.reports
                .iter()
                .map(|r| (r.kind.to_string(), r.source.0, r.sink.0))
                .collect()
        };
        assert_eq!(reports(&on), reports(&off), "seed {seed}");
    }
}
