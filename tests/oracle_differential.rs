//! Differential testing of the static pipeline against the concrete
//! oracle, in both directions:
//!
//! * **Precision** — every report the pipeline emits carries a witness
//!   schedule; replaying it must concretely fire the claimed bug at
//!   the claimed source/sink pair. A report whose schedule does not
//!   replay would be exactly the "plausible but wrong" false positive
//!   class §7 discusses.
//! * **Bounded soundness** — on lean (filler-free) workloads the
//!   oracle exhaustively enumerates every interleaving and branch
//!   valuation; each concretely reachable bug must appear among the
//!   static reports, and each seeded bug must be concretely reachable.
//!
//! The 16-seed corpus below is fixed (ci.sh runs it serially and with
//! `CANARY_TEST_THREADS=2`): bits 0–3 of the seed choose which of the
//! four checkers gets a seeded bug, so the corpus walks every subset.

use std::collections::HashSet;

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;
use canary_ir::parse;
use canary_oracle::{explore, EnumLimits};
use canary_workloads::{confirm_ground_truth, generate, WorkloadSpec};
use proptest::prelude::*;

/// One corpus member: seed bits select the checker mix.
fn lean_variant(seed: u64) -> WorkloadSpec {
    let mut s = WorkloadSpec::lean(seed);
    s.true_bugs = (seed & 1) as usize;
    s.double_free = ((seed >> 1) & 1) as usize;
    s.null_deref = ((seed >> 2) & 1) as usize;
    s.leak = ((seed >> 3) & 1) as usize;
    // Every member keeps one refutation pattern of each flavour so the
    // soundness direction also certifies absences.
    s.contradiction_patterns = 1;
    s.handshake_patterns = 1;
    s.order_fp_patterns = 1;
    s
}

/// The fixed corpus referenced by ci.sh.
fn corpus() -> Vec<WorkloadSpec> {
    (0..16).map(lean_variant).collect()
}

/// One lock-corpus member: bits 0–2 choose double-lock /
/// conflict-lock / UAF seeding, so the corpus walks every mix of
/// lock-discipline and value-flow bugs.
fn lock_variant(seed: u64) -> WorkloadSpec {
    let mut s = WorkloadSpec::lean_locks(seed);
    s.double_lock = (seed & 1) as usize;
    s.conflict_lock = ((seed >> 1) & 1) as usize;
    s.true_bugs = ((seed >> 2) & 1) as usize;
    s
}

/// The fixed lock corpus referenced by ci.sh.
fn lock_corpus() -> Vec<WorkloadSpec> {
    (0..8).map(lock_variant).collect()
}

fn verified_canary() -> Canary {
    Canary::with_config(CanaryConfig {
        verify_witnesses: true,
        ..CanaryConfig::default()
    })
}

#[test]
fn precision_every_report_schedule_replays() {
    for spec in corpus() {
        let w = generate(&spec);
        let outcome = verified_canary().analyze(&w.prog);
        assert_eq!(
            outcome.witness_replays.len(),
            outcome.reports.len(),
            "{}: one replay per report",
            spec.name
        );
        for (r, replay) in outcome.reports.iter().zip(&outcome.witness_replays) {
            assert!(
                replay.confirmed(),
                "{}: report {r:?} failed to replay: {replay:?}",
                spec.name
            );
        }
        assert_eq!(
            outcome.metrics.witnesses_confirmed, outcome.metrics.witnesses_checked,
            "{}",
            spec.name
        );
    }
}

#[test]
fn bounded_soundness_every_concrete_hit_is_reported() {
    for spec in corpus() {
        let w = generate(&spec);
        let e = explore(&w.prog, EnumLimits::default());
        assert!(e.complete, "{}: enumeration must exhaust the space", spec.name);
        let outcome = Canary::new().analyze(&w.prog);
        let reported: HashSet<(BugKind, canary_ir::Label, canary_ir::Label)> = outcome
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect();
        for hit in &e.hits {
            assert!(
                reported.contains(hit),
                "{}: concrete bug {hit:?} missed by the static analysis ({reported:?})",
                spec.name
            );
        }
        // The other half of the sandwich: everything seeded is
        // concretely reachable, so the truth labels are not vacuous.
        for bug in &w.truth.seeded {
            assert!(
                e.hits.contains(&(bug.kind, bug.source, bug.sink)),
                "{}: seeded {bug:?} unreachable in enumeration",
                spec.name
            );
        }
    }
}

#[test]
fn lock_precision_every_witness_replays() {
    // Deadlock witnesses replay to a blocked waits-for cycle, double-
    // lock witnesses to a concrete re-acquisition; both go through the
    // same per-report verification path as the value-flow checkers.
    for spec in lock_corpus() {
        let w = generate(&spec);
        let outcome = verified_canary().analyze(&w.prog);
        assert_eq!(
            outcome.witness_replays.len(),
            outcome.reports.len(),
            "{}: one replay per report",
            spec.name
        );
        for (r, replay) in outcome.reports.iter().zip(&outcome.witness_replays) {
            assert!(
                replay.confirmed(),
                "{}: report {r:?} failed to replay: {replay:?}",
                spec.name
            );
        }
    }
}

#[test]
fn lock_bounded_soundness_no_seeded_lock_bug_missed() {
    for spec in lock_corpus() {
        let w = generate(&spec);
        let e = explore(&w.prog, EnumLimits::default());
        assert!(e.complete, "{}: enumeration must exhaust the space", spec.name);
        let outcome = Canary::new().analyze(&w.prog);
        let reported: HashSet<(BugKind, canary_ir::Label, canary_ir::Label)> = outcome
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect();
        for hit in &e.hits {
            assert!(
                reported.contains(hit),
                "{}: concrete bug {hit:?} missed by the static analysis ({reported:?})",
                spec.name
            );
        }
        for bug in &w.truth.seeded {
            assert!(
                e.hits.contains(&(bug.kind, bug.source, bug.sink)),
                "{}: seeded {bug:?} unreachable in enumeration",
                spec.name
            );
            assert!(
                reported.contains(&(bug.kind, bug.source, bug.sink)),
                "{}: seeded {bug:?} unreported ({reported:?})",
                spec.name
            );
        }
    }
}

#[test]
fn deadlock_report_is_certified_by_exhaustive_enumeration() {
    // Opposite acquisition orders across two threads: the static
    // report, its replayed witness (ending in a blocked cycle) and the
    // enumerated deadlock leaf all agree on the same (source, sink).
    let src = "fn main() {
                   a = alloc ma; b = alloc mb;
                   fork t w(a, b);
                   lock a; lock b; unlock b; unlock a;
                   join t;
               }
               fn w(x, y) { lock y; lock x; unlock x; unlock y; }";
    let prog = parse(src).unwrap();
    prog.validate().unwrap();
    let outcome = verified_canary().analyze(&prog);
    let locks: Vec<_> = outcome
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::ConflictLock)
        .collect();
    assert_eq!(locks.len(), 1, "{:?}", outcome.reports);
    let r = locks[0];
    assert!(
        outcome.witness_replays.iter().all(|rep| rep.confirmed()),
        "{:?}",
        outcome.witness_replays
    );
    let e = explore(&prog, EnumLimits::default());
    assert!(e.complete);
    assert!(
        e.hits.contains(&(BugKind::ConflictLock, r.source, r.sink)),
        "static report {:?} not among concrete deadlocks {:?}",
        (r.source, r.sink),
        e.hits
    );
    // The safe variant — same orders serialized by the join — is
    // certified clean in both worlds.
    let safe = parse(
        "fn main() {
             a = alloc ma; b = alloc mb;
             fork t w(a, b);
             join t;
             lock a; lock b; unlock b; unlock a;
         }
         fn w(x, y) { lock y; lock x; unlock x; unlock y; }",
    )
    .unwrap();
    let clean = Canary::new().analyze(&safe);
    assert!(clean.reports.is_empty(), "{:?}", clean.reports);
    let e2 = explore(&safe, EnumLimits::default());
    assert!(e2.complete);
    assert!(e2.hits.is_empty(), "{:?}", e2.hits);
}

#[test]
fn double_lock_report_is_certified_by_exhaustive_enumeration() {
    let src = "fn main() { m = alloc mu; n = m; lock m; lock n; unlock n; }";
    let prog = parse(src).unwrap();
    prog.validate().unwrap();
    let outcome = verified_canary().analyze(&prog);
    assert_eq!(outcome.reports.len(), 1, "{:?}", outcome.reports);
    let r = &outcome.reports[0];
    assert_eq!(r.kind, BugKind::DoubleLock);
    assert!(outcome.witness_replays[0].confirmed(), "{:?}", outcome.witness_replays);
    let e = explore(&prog, EnumLimits::default());
    assert!(e.complete);
    assert!(
        e.hits.contains(&(BugKind::DoubleLock, r.source, r.sink)),
        "{:?} vs {:?}",
        (r.source, r.sink),
        e.hits
    );
}

#[test]
fn ground_truth_schedules_confirm_across_corpus() {
    for spec in corpus().into_iter().chain(lock_corpus()) {
        let w = generate(&spec);
        let unconfirmed = confirm_ground_truth(&w);
        assert!(unconfirmed.is_empty(), "{}: {unconfirmed:?}", spec.name);
    }
}

#[test]
fn fig2_refutation_is_certified_by_exhaustive_enumeration() {
    // The Fig. 2 contradictory-guard pattern: the free happens under
    // ¬θ, the use under θ. Canary refutes it via the guard encoding;
    // the oracle certifies the refutation concretely — no interleaving
    // under either valuation of θ fires the pair.
    let src = r#"
        fn main() {
            x = alloc o1;
            v = alloc o2;
            *x = v;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
        }
        fn thread1(y) {
            if (!theta1) { b = *y; free b; }
        }
    "#;
    let prog = parse(src).unwrap();
    prog.validate().unwrap();
    let outcome = Canary::new().analyze(&prog);
    assert!(outcome.reports.is_empty(), "{:?}", outcome.reports);
    let e = explore(&prog, EnumLimits::default());
    assert!(e.complete);
    assert!(e.hits.is_empty(), "{:?}", e.hits);
    assert!(e.refutes(
        BugKind::UseAfterFree,
        prog.free_sites()[0],
        prog.deref_sites()[0]
    ));
}

#[test]
fn handshake_refutation_is_certified_by_exhaustive_enumeration() {
    // Wait/notify orders the use before the free (§9). The static
    // refutation again coincides with concrete ground truth.
    let src = "fn main() {
                   cell = alloc c; v = alloc o; *cell = v;
                   cv = alloc w;
                   fork t u(cell, cv);
                   wait cv;
                   free v;
               }
               fn u(slot, sig) { x = *slot; use x; notify sig; }";
    let prog = parse(src).unwrap();
    prog.validate().unwrap();
    let outcome = Canary::new().analyze(&prog);
    assert!(outcome.reports.is_empty(), "{:?}", outcome.reports);
    let e = explore(&prog, EnumLimits::default());
    assert!(e.complete);
    assert!(e.hits.is_empty(), "{:?}", e.hits);
    assert!(e.refutes(
        BugKind::UseAfterFree,
        prog.free_sites()[0],
        prog.deref_sites()[0]
    ));
    // Dropping the wait makes the same pair concretely reachable — the
    // certification is not vacuous.
    let racy = parse(
        "fn main() {
             cell = alloc c; v = alloc o; *cell = v;
             cv = alloc w;
             fork t u(cell, cv);
             free v;
         }
         fn u(slot, sig) { x = *slot; use x; notify sig; }",
    )
    .unwrap();
    let e2 = explore(&racy, EnumLimits::default());
    assert!(e2.complete);
    assert!(!e2.refutes(
        BugKind::UseAfterFree,
        racy.free_sites()[0],
        racy.deref_sites()[0]
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random corpus members beyond the fixed 16: ground truth always
    /// replays and the pipeline's reports always replay.
    #[test]
    fn random_lean_specs_stay_differentially_clean(seed in 0u64..4096) {
        let w = generate(&lean_variant(seed));
        let unconfirmed = confirm_ground_truth(&w);
        prop_assert!(unconfirmed.is_empty(), "{unconfirmed:?}");
        let outcome = verified_canary().analyze(&w.prog);
        for (r, replay) in outcome.reports.iter().zip(&outcome.witness_replays) {
            prop_assert!(replay.confirmed(), "{r:?}: {replay:?}");
        }
    }
}
