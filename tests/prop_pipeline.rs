//! Property-based end-to-end tests: random workload specifications and
//! random straight-line programs through the full pipeline.

use proptest::prelude::*;

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions};
use canary_ir::Label;
use canary_workloads::{evaluate, generate, WorkloadSpec};

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1000,
        200usize..800,
        1usize..4,
        1usize..5,
        0usize..3,
        0usize..2,
        0usize..3,
        0usize..2,
    )
        .prop_map(
            |(seed, stmts, threads, cells, bugs, benign, contra, hs)| WorkloadSpec {
                name: format!("prop-{seed}"),
                seed,
                target_stmts: stmts,
                threads,
                shared_cells: cells,
                true_bugs: bugs,
                benign_patterns: benign,
                contradiction_patterns: contra,
                handshake_patterns: hs,
                order_fp_patterns: hs,
                double_free: 0,
                null_deref: 0,
                leak: 0,
                double_lock: 0,
                conflict_lock: 0,
                sb_patterns: 0,
                mp_patterns: 0,
                lb_patterns: 0,
                family_fanout: 0,
                hard_family_ratio: 0.0,
                filler: true,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_always_validate(spec in spec_strategy()) {
        let w = generate(&spec);
        prop_assert!(w.prog.validate().is_ok());
        prop_assert_eq!(w.truth.uaf_bugs.len(), spec.true_bugs);
        prop_assert_eq!(w.truth.benign.len(), spec.benign_patterns);
    }

    #[test]
    fn pipeline_total_recall_and_bounded_fp(spec in spec_strategy()) {
        let w = generate(&spec);
        let canary = Canary::with_config(CanaryConfig {
            checkers: vec![BugKind::UseAfterFree],
            detect: DetectOptions {
                inter_thread_only: true,
                ..DetectOptions::default()
            },
            ..CanaryConfig::default()
        });
        let outcome = canary.analyze(&w.prog);
        let pairs: Vec<(Label, Label)> =
            outcome.reports.iter().map(|r| (r.source, r.sink)).collect();
        let eval = evaluate(&w.truth, &pairs);
        prop_assert_eq!(eval.missed, 0, "missed seeded bugs: {:?}", pairs);
        // Reports are exactly: seeded bugs + benign patterns. The
        // contradiction patterns never surface.
        prop_assert_eq!(eval.false_positives, w.truth.benign.len());
    }

    #[test]
    fn analysis_is_deterministic(spec in spec_strategy()) {
        let w = generate(&spec);
        let canary = Canary::new();
        let a = canary.analyze(&w.prog);
        let b = canary.analyze(&w.prog);
        let pa: Vec<_> = a.reports.iter().map(|r| (r.kind, r.source, r.sink)).collect();
        let pb: Vec<_> = b.reports.iter().map(|r| (r.kind, r.source, r.sink)).collect();
        prop_assert_eq!(pa, pb);
    }

    #[test]
    fn parallel_solving_matches_sequential(spec in spec_strategy()) {
        let w = generate(&spec);
        let mk = |threads: usize| {
            Canary::with_config(CanaryConfig {
                checkers: vec![BugKind::UseAfterFree],
                detect: DetectOptions {
                    solver: canary::smt::SolverOptions {
                        num_threads: threads,
                        ..canary::smt::SolverOptions::default()
                    },
                    ..DetectOptions::default()
                },
                ..CanaryConfig::default()
            })
        };
        let seq: Vec<_> = mk(1)
            .analyze(&w.prog)
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect();
        let par: Vec<_> = mk(4)
            .analyze(&w.prog)
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn mhp_toggle_never_changes_reports(spec in spec_strategy()) {
        // MHP pruning is an optimization: the SMT order constraints
        // refute the same pairs, so final reports must be identical.
        let w = generate(&spec);
        let mk = |mhp: bool| {
            Canary::with_config(CanaryConfig {
                checkers: vec![BugKind::UseAfterFree],
                interference: canary_interference::InterferenceOptions {
                    use_mhp: mhp,
                    ..canary_interference::InterferenceOptions::default()
                },
                ..CanaryConfig::default()
            })
        };
        let with: Vec<_> = mk(true)
            .analyze(&w.prog)
            .reports
            .iter()
            .map(|r| (r.source, r.sink))
            .collect();
        let without: Vec<_> = mk(false)
            .analyze(&w.prog)
            .reports
            .iter()
            .map(|r| (r.source, r.sink))
            .collect();
        prop_assert_eq!(with, without);
    }
}
