//! End-to-end tests of the `canary` command-line binary.

use std::io::Write;
use std::process::Command;

fn canary_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_canary"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("canary-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const RACY: &str = "fn main() { p = alloc o; fork t w(p); free p; }\nfn w(q) { use q; }\n";
const CLEAN: &str = "fn main() { p = alloc o; fork t w(p); join t; free p; }\nfn w(q) { use q; }\n";

#[test]
fn reports_bug_with_exit_code_one() {
    let path = write_temp("racy.cir", RACY);
    let out = canary_bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("use-after-free"), "{stdout}");
    assert!(stdout.contains("inter-thread"), "{stdout}");
}

#[test]
fn clean_program_exits_zero() {
    let path = write_temp("clean.cir", CLEAN);
    let out = canary_bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no bugs found"), "{stdout}");
}

#[test]
fn json_output_is_parseable() {
    let path = write_temp("racy_json.cir", RACY);
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(doc["reports"].as_array().unwrap().len(), 1);
    assert_eq!(doc["reports"][0]["kind"], "use-after-free");
    assert_eq!(doc["reports"][0]["inter_thread"], true);
    assert!(doc["metrics"]["statements"].as_u64().unwrap() >= 4);
}

#[test]
fn checker_selection_is_respected() {
    let path = write_temp("racy_leak_only.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--checkers", "leak"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "leak checker finds nothing");
}

#[test]
fn stats_flag_prints_metrics() {
    let path = write_temp("racy_stats.cir", RACY);
    let out = canary_bin().arg(&path).arg("--stats").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stats:"), "{stdout}");
    assert!(stdout.contains("vfg"), "{stdout}");
}

#[test]
fn memory_model_flag_accepted() {
    let path = write_temp("racy_pso.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--memory-model", "pso"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn baseline_tools_run_from_cli() {
    // The order-insensitive baseline reports even use-before-free.
    let path = write_temp("ubf.cir", "fn main() { p = alloc o; use p; free p; }\n");
    let saber = canary_bin()
        .arg(&path)
        .args(["--tool", "saber"])
        .output()
        .unwrap();
    assert_eq!(saber.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&saber.stdout);
    assert!(stdout.contains("unguarded"), "{stdout}");
    // Canary itself refutes it.
    let canary = canary_bin().arg(&path).output().unwrap();
    assert_eq!(canary.status.code(), Some(0));
}

#[test]
fn path_limit_flags_accepted() {
    let path = write_temp("racy_limits.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--max-paths", "4", "--max-path-len", "16"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn parse_error_exits_two() {
    let path = write_temp("broken.cir", "fn main() {");
    let out = canary_bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_exits_two() {
    let out = canary_bin().arg("/nonexistent/x.cir").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_is_usage_error() {
    let path = write_temp("racy2.cir", RACY);
    let out = canary_bin().arg(&path).arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unroll_flag_changes_bounding() {
    let src = "fn main() { p = alloc o; while (c) { use p; } free p; }";
    let path = write_temp("loop.cir", src);
    for (unroll, expect_derefs) in [("1", 1u64), ("4", 4u64)] {
        let out = canary_bin()
            .arg(&path)
            .args(["--unroll", unroll, "--json", "--checkers", "leak"])
            .output()
            .unwrap();
        let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
        let stmts = doc["metrics"]["statements"].as_u64().unwrap();
        // alloc + free + `use` per unrolled copy.
        assert_eq!(stmts, 2 + expect_derefs, "unroll {unroll}");
    }
}
