//! End-to-end tests of the `canary` command-line binary.

use std::io::Write;
use std::process::Command;

fn canary_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_canary"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("canary-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const RACY: &str = "fn main() { p = alloc o; fork t w(p); free p; }\nfn w(q) { use q; }\n";
const CLEAN: &str = "fn main() { p = alloc o; fork t w(p); join t; free p; }\nfn w(q) { use q; }\n";

#[test]
fn reports_bug_with_exit_code_one() {
    let path = write_temp("racy.cir", RACY);
    let out = canary_bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("use-after-free"), "{stdout}");
    assert!(stdout.contains("inter-thread"), "{stdout}");
}

#[test]
fn clean_program_exits_zero() {
    let path = write_temp("clean.cir", CLEAN);
    let out = canary_bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no bugs found"), "{stdout}");
}

#[test]
fn json_output_is_parseable() {
    let path = write_temp("racy_json.cir", RACY);
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(doc["reports"].as_array().unwrap().len(), 1);
    assert_eq!(doc["reports"][0]["kind"], "use-after-free");
    assert_eq!(doc["reports"][0]["inter_thread"], true);
    assert!(doc["metrics"]["statements"].as_u64().unwrap() >= 4);
}

#[test]
fn checker_selection_is_respected() {
    let path = write_temp("racy_leak_only.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--checkers", "leak"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "leak checker finds nothing");
}

#[test]
fn stats_flag_prints_metrics() {
    let path = write_temp("racy_stats.cir", RACY);
    let out = canary_bin().arg(&path).arg("--stats").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stats:"), "{stdout}");
    assert!(stdout.contains("vfg"), "{stdout}");
}

#[test]
fn memory_model_flag_accepted() {
    let path = write_temp("racy_pso.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--memory-model", "pso"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn unknown_memory_model_is_usage_error() {
    let path = write_temp("racy_badmodel.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--memory-model", "rmo"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown memory model"), "{stderr}");
}

#[test]
fn json_metrics_record_the_memory_model() {
    let path = write_temp("racy_model_json.cir", RACY);
    let run = |extra: &[&str]| -> serde_json::Value {
        let out = canary_bin().arg(&path).args(extra).arg("--json").output().unwrap();
        serde_json::from_slice(&out.stdout).unwrap()
    };
    assert_eq!(run(&[])["metrics"]["memory_model"], "sc", "sc is the default");
    assert_eq!(
        run(&["--memory-model", "tso"])["metrics"]["memory_model"],
        "tso"
    );
    assert_eq!(
        run(&["--memory-model", "pso"])["metrics"]["memory_model"],
        "pso"
    );
}

#[test]
fn sarif_manifest_records_the_memory_model() {
    let path = write_temp("racy_model_sarif.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--memory-model", "tso", "--format", "sarif"])
        .output()
        .unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let config = &doc["runs"][0]["invocations"][0]["properties"]["config"];
    assert_eq!(config["memory_model"], "tso", "{config}");
}

#[test]
fn baseline_tools_run_from_cli() {
    // The order-insensitive baseline reports even use-before-free.
    let path = write_temp("ubf.cir", "fn main() { p = alloc o; use p; free p; }\n");
    let saber = canary_bin()
        .arg(&path)
        .args(["--tool", "saber"])
        .output()
        .unwrap();
    assert_eq!(saber.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&saber.stdout);
    assert!(stdout.contains("unguarded"), "{stdout}");
    // Canary itself refutes it.
    let canary = canary_bin().arg(&path).output().unwrap();
    assert_eq!(canary.status.code(), Some(0));
}

#[test]
fn path_limit_flags_accepted() {
    let path = write_temp("racy_limits.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--max-paths", "4", "--max-path-len", "16"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn parse_error_exits_two() {
    let path = write_temp("broken.cir", "fn main() {");
    let out = canary_bin().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_exits_two() {
    let out = canary_bin().arg("/nonexistent/x.cir").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_is_usage_error() {
    let path = write_temp("racy2.cir", RACY);
    let out = canary_bin().arg(&path).arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_document_is_versioned_and_fingerprinted() {
    let path = write_temp("racy_schema.cir", RACY);
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(doc["schema_version"], 3, "consumers gate on schema_version");
    let fp = doc["reports"][0]["fingerprint"].as_str().unwrap();
    assert_eq!(fp.len(), 16, "16 hex digits: {fp}");
    assert!(fp.chars().all(|c| c.is_ascii_hexdigit()), "{fp}");
    let prov = &doc["reports"][0]["provenance"];
    assert!(!prov["nodes"].as_array().unwrap().is_empty(), "{prov:?}");
}

#[test]
fn sarif_format_and_sarif_out_agree() {
    let path = write_temp("racy_sarif.cir", RACY);
    let out_path = std::env::temp_dir().join("canary-cli-tests/racy.sarif");
    let out = canary_bin()
        .arg(&path)
        .args(["--format", "sarif", "--sarif-out"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "findings still gate the exit code");
    let stdout: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let written: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(stdout, written, "--sarif-out mirrors --format sarif");
    assert_eq!(stdout["version"], "2.1.0");
    assert_eq!(
        stdout["runs"][0]["results"][0]["ruleId"],
        "canary/use-after-free"
    );
}

#[test]
fn unwritable_output_paths_exit_two_cleanly() {
    let path = write_temp("racy_unwritable.cir", RACY);
    for flag in [
        "--sarif-out",
        "--json-out",
        "--trace-out",
        "--metrics-out",
        "--audit-out",
    ] {
        let out = canary_bin()
            .arg(&path)
            .args([flag, "/nonexistent-dir/out.file"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot write"),
            "{flag} must explain the failure: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{flag} must not panic: {stderr}"
        );
    }
}

#[test]
fn diff_subcommand_validates_its_inputs() {
    // Wrong arity.
    let out = canary_bin().arg("diff").arg("only-one.sarif").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing files.
    let out = canary_bin()
        .args(["diff", "/nonexistent/a.sarif", "/nonexistent/b.sarif"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Not a SARIF log.
    let junk = write_temp("junk.sarif", "{\"hello\": 1}");
    let out = canary_bin()
        .arg("diff")
        .arg(&junk)
        .arg(&junk)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("runs"), "{stderr}");
}

#[test]
fn unknown_log_level_is_usage_error() {
    let path = write_temp("racy_badlog.cir", RACY);
    let out = canary_bin().arg(&path).args(["--log", "bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown log level"), "{stderr}");
}

#[test]
fn json_and_sarif_carry_build_info() {
    let path = write_temp("racy_build.cir", RACY);
    let json: serde_json::Value = serde_json::from_slice(
        &canary_bin().arg(&path).arg("--json").output().unwrap().stdout,
    )
    .unwrap();
    assert_eq!(
        json["canary_version"].as_str(),
        Some(env!("CARGO_PKG_VERSION")),
        "{json}"
    );
    assert!(
        json["rustc_version"].as_str().unwrap().starts_with("rustc"),
        "{json}"
    );
    let sarif: serde_json::Value = serde_json::from_slice(
        &canary_bin()
            .arg(&path)
            .args(["--format", "sarif"])
            .output()
            .unwrap()
            .stdout,
    )
    .unwrap();
    let build = &sarif["runs"][0]["invocations"][0]["properties"]["build"];
    assert_eq!(
        build["canaryVersion"].as_str(),
        Some(env!("CARGO_PKG_VERSION")),
        "{build}"
    );
    assert!(
        build["rustcVersion"].as_str().unwrap().starts_with("rustc"),
        "{build}"
    );
}

#[test]
fn bench_diff_gates_on_regressions() {
    let base = write_temp(
        "bench_base.json",
        r#"{"total_s": 2.0, "subjects": [{"name": "s1", "detect_s": 1.0, "vfg_bytes": 1000, "smt_queries": 50}]}"#,
    );
    // Self-diff is clean.
    let out = canary_bin().args(["bench", "diff"]).arg(&base).arg(&base).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 regressed"), "{stdout}");
    // A >5% time regression gates exit 1 and names the metric.
    let slow = write_temp(
        "bench_slow.json",
        r#"{"total_s": 3.0, "subjects": [{"name": "s1", "detect_s": 1.5, "vfg_bytes": 1000, "smt_queries": 50}]}"#,
    );
    let out = canary_bin().args(["bench", "diff"]).arg(&base).arg(&slow).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("detect_s"), "{stdout}");
    // An explicit tolerance above the regression accepts it.
    let out = canary_bin()
        .args(["bench", "diff"])
        .arg(&base)
        .arg(&slow)
        .args(["--tolerance", "60"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    // Improvements never gate.
    let out = canary_bin().args(["bench", "diff"]).arg(&slow).arg(&base).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn bench_diff_validates_its_inputs() {
    // Wrong arity.
    let out = canary_bin().args(["bench", "diff", "only-one.json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown bench subcommand.
    let out = canary_bin().args(["bench", "run"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing files.
    let out = canary_bin()
        .args(["bench", "diff", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // No gated numeric leaves on either side.
    let junk = write_temp("bench_junk.json", r#"{"hello": "world"}"#);
    let out = canary_bin().args(["bench", "diff"]).arg(&junk).arg(&junk).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bench diff"), "{stderr}");
}

#[test]
fn baseline_flag_gates_exit_on_new_findings_only() {
    let racy = write_temp("racy_base.cir", RACY);
    let clean = write_temp("clean_base.cir", CLEAN);
    let base = std::env::temp_dir().join("canary-cli-tests/racy_base.sarif");
    canary_bin()
        .arg(&racy)
        .args(["--sarif-out"])
        .arg(&base)
        .output()
        .unwrap();
    // Same corpus: the finding persists, no new ones -> exit 0 even
    // though the run itself has findings.
    let out = canary_bin()
        .arg(&racy)
        .args(["--baseline"])
        .arg(&base)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    // Fixed corpus against the racy baseline: the finding is fixed.
    let out = canary_bin()
        .arg(&clean)
        .args(["--baseline"])
        .arg(&base)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 fixed"), "{stdout}");
}

#[test]
fn cube_split_flag_is_wired_end_to_end() {
    let path = write_temp("racy_cube.cir", RACY);
    // Valid value: accepted, echoed in the JSON solver block and the
    // SARIF run manifest, findings unchanged.
    let out = canary_bin()
        .arg(&path)
        .args(["--cube-split", "2", "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "findings still gate the exit");
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let solver = &doc["metrics"]["solver"];
    assert_eq!(solver["cube_split"], 2, "{solver}");
    assert!(solver["cube_escalated"].as_u64().is_some(), "{solver}");
    assert_eq!(doc["reports"].as_array().unwrap().len(), 1);
    let sarif: serde_json::Value = serde_json::from_slice(
        &canary_bin()
            .arg(&path)
            .args(["--cube-split", "2", "--format", "sarif"])
            .output()
            .unwrap()
            .stdout,
    )
    .unwrap();
    let config = &sarif["runs"][0]["invocations"][0]["properties"]["config"];
    assert_eq!(config["cube_split"], "2", "{config}");
    // Invalid values are usage errors.
    for bad in ["-1", "two", ""] {
        let out = canary_bin()
            .arg(&path)
            .args(["--cube-split", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "--cube-split {bad:?} must exit 2");
    }
}

#[test]
fn dispatch_and_shards_flags_accepted_and_equivalent() {
    let path = write_temp("racy_dispatch.cir", RACY);
    let run = |extra: &[&str]| {
        let out = canary_bin().arg(&path).args(extra).arg("--json").output().unwrap();
        assert_eq!(out.status.code(), Some(1));
        let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
        doc["reports"].clone()
    };
    let worksteal = run(&["--dispatch", "worksteal", "--shards", "4"]);
    let staticd = run(&["--dispatch", "static"]);
    assert_eq!(worksteal, staticd, "dispatchers agree on findings");
    let out = canary_bin()
        .arg(&path)
        .args(["--dispatch", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown dispatch"), "{stderr}");
    let out = canary_bin()
        .arg(&path)
        .args(["--shards", "many"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn memory_budget_flag_spills_without_changing_findings() {
    let path = write_temp("racy_budget.cir", RACY);
    let out = canary_bin()
        .arg(&path)
        .args(["--memory-budget-mb", "1", "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(doc["reports"].as_array().unwrap().len(), 1);
    let spill = &doc["metrics"]["spill"];
    assert_eq!(spill["budget_bytes"], 1u64 << 20, "{spill}");
    assert_eq!(spill["entries"], 2, "one spilled summary per function: {spill}");
    assert!(spill["bytes_written"].as_u64().unwrap() > 0, "{spill}");
    // Without the flag the spill block is inert.
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(doc["metrics"]["spill"]["entries"], 0);
    // Invalid budget is a usage error.
    let out = canary_bin()
        .arg(&path)
        .args(["--memory-budget-mb", "lots"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unroll_flag_changes_bounding() {
    let src = "fn main() { p = alloc o; while (c) { use p; } free p; }";
    let path = write_temp("loop.cir", src);
    for (unroll, expect_derefs) in [("1", 1u64), ("4", 4u64)] {
        let out = canary_bin()
            .arg(&path)
            .args(["--unroll", unroll, "--json", "--checkers", "leak"])
            .output()
            .unwrap();
        let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
        let stmts = doc["metrics"]["statements"].as_u64().unwrap();
        // alloc + free + `use` per unrolled copy.
        assert_eq!(stmts, 2 + expect_derefs, "unroll {unroll}");
    }
}

#[test]
fn audit_out_writes_one_json_record_per_line() {
    let path = write_temp("racy_audit.cir", RACY);
    let out_path = std::env::temp_dir().join("canary-cli-tests/racy_audit.jsonl");
    let out = canary_bin()
        .arg(&path)
        .arg("--audit-out")
        .arg(&out_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "findings still gate the exit code");
    let jsonl = std::fs::read_to_string(&out_path).unwrap();
    assert!(!jsonl.trim().is_empty(), "a reported pair must be audited");
    let mut saw_reported = false;
    for (i, line) in jsonl.lines().enumerate() {
        let rec: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {i}: {e}: {line}"));
        assert_eq!(rec["seq"], i as u64, "seq is the line number");
        for key in ["layer", "source", "disposition", "certificate"] {
            assert!(rec[key] != serde_json::Value::Null || key == "certificate", "{key} missing: {line}");
        }
        if rec["disposition"] == "reported" {
            saw_reported = true;
            let fp = rec["certificate"]["fingerprint"].as_str().unwrap();
            assert_eq!(fp.len(), 16, "{fp}");
        }
    }
    assert!(saw_reported, "{jsonl}");
}

#[test]
fn audit_export_is_byte_identical_across_scheduling_knobs() {
    let path = write_temp("racy_audit_knobs.cir", RACY);
    let run = |extra: &[&str]| -> String {
        let out_path = std::env::temp_dir().join(format!(
            "canary-cli-tests/audit-knobs-{}.jsonl",
            extra.join("_").replace('/', "-")
        ));
        let out = canary_bin()
            .arg(&path)
            .arg("--audit-out")
            .arg(&out_path)
            .args(extra)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1));
        std::fs::read_to_string(&out_path).unwrap()
    };
    let base = run(&["--solver-strategy", "fresh"]);
    for extra in [
        &["--solver-strategy", "incremental"][..],
        &["--threads", "4", "--solver-threads", "4"][..],
        &["--dispatch", "static", "--shards", "8"][..],
        &["--cube-split", "2"][..],
        &["--explain"][..],
    ] {
        assert_eq!(base, run(extra), "{extra:?}");
    }
}

#[test]
fn why_explains_a_reported_fingerprint() {
    let path = write_temp("racy_why.cir", RACY);
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let fp = doc["reports"][0]["fingerprint"].as_str().unwrap().to_string();
    let out = canary_bin().arg("why").arg(&path).arg(&fp).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(&fp), "{stdout}");
    assert!(stdout.contains("reported: confirmed finding"), "{stdout}");
    // Unknown (but well-formed) fingerprint: exit 1.
    let out = canary_bin()
        .arg("why")
        .arg(&path)
        .arg("0000000000000000")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Malformed fingerprint: usage error.
    let out = canary_bin().arg("why").arg(&path).arg("nope").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing operands: usage error.
    let out = canary_bin().arg("why").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn why_not_prints_certificates_and_exit_codes() {
    // A reported pair answers "reported".
    let path = write_temp("racy_whynot.cir", RACY);
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let src_label = doc["reports"][0]["source"]["label"].as_u64().unwrap();
    let sink_label = doc["reports"][0]["sink"]["label"].as_u64().unwrap();
    let out = canary_bin()
        .arg("why-not")
        .arg(&path)
        .arg(format!("l{src_label}"))
        .arg(sink_label.to_string()) // bare index spelling also accepted
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reported"), "{stdout}");
    // A never-enumerated pair explains itself and exits 1.
    let out = canary_bin()
        .arg("why-not")
        .arg(&path)
        .args(["l999", "l998"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("never enumerated"), "{stdout}");
    // Malformed labels: usage error.
    let out = canary_bin()
        .arg("why-not")
        .arg(&path)
        .args(["abc", "def"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_metrics_carry_the_audit_summary() {
    let path = write_temp("racy_audit_json.cir", RACY);
    let out = canary_bin().arg(&path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let audit = &doc["metrics"]["audit"];
    let candidates = audit["candidates"].as_u64().unwrap();
    let parts = ["reported", "deduped", "prefiltered", "unsat", "memoized", "scope_filtered"]
        .iter()
        .map(|k| audit[*k].as_u64().unwrap())
        .sum::<u64>();
    assert_eq!(candidates, parts, "reconciliation invariant in --json: {audit}");
    assert_eq!(audit["reported"].as_u64().unwrap(), 1);
}

#[test]
fn stats_prints_the_audit_reconciliation_line() {
    let path = write_temp("racy_audit_stats.cir", RACY);
    let out = canary_bin().arg(&path).arg("--stats").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("audit: "))
        .unwrap_or_else(|| panic!("no audit line: {stdout}"));
    assert!(line.contains("candidates"), "{line}");
    assert!(!line.contains("FAILED"), "{line}");
}
