//! The solver-strategy equivalence contract: `--solver-strategy
//! incremental` (query families, UNSAT-core subsumption, memoization)
//! must be a pure optimization — identical reports, an identical
//! sat/unsat verdict for every query, and identical `--json` output
//! once the fields a strategy is *allowed* to change are normalized
//! away: wall times, and the CDCL work counters (decisions, conflicts,
//! propagations, learned clauses, theory lemmas), which necessarily
//! differ when solver state is reused across queries.
//!
//! Layers:
//!
//! 1. a property test (16 cases) over random `canary-workloads`
//!    programs comparing full outcomes fresh vs incremental, at one
//!    and at four solver threads;
//! 2. a CLI-level `--json` comparison on a concrete program.

use canary::{AnalysisOutcome, Canary, CanaryConfig};
use canary_smt::SolverStrategy;
use canary_workloads::{generate, WorkloadSpec};
use proptest::prelude::*;

fn with_strategy(strategy: SolverStrategy, solver_threads: usize) -> Canary {
    let mut config = CanaryConfig::default();
    config.detect.solver.strategy = strategy;
    config.detect.solver.num_threads = solver_threads;
    config.detect.explain_refutations = true;
    Canary::with_config(config)
}

/// Canonical JSON for everything a solving strategy must NOT change:
/// reports (with witness schedules), refutation cores, per-query
/// verdicts, and the strategy-invariant counters (`queries`,
/// `prefiltered`, `confirmed`, `candidate_paths`).
fn canonical_json(outcome: &AnalysisOutcome) -> String {
    let reports: Vec<serde_json::Value> = outcome
        .reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "kind": r.kind.to_string(),
                "source": r.source.0,
                "sink": r.sink.0,
                "inter_thread": r.inter_thread,
                "path": r.path,
                "constraint": r.constraint,
                "schedule": r.schedule.iter().map(|l| l.0).collect::<Vec<u32>>(),
                "guards": r.guards.iter().map(|&(c, v)| format!("c{}={v}", c.0)).collect::<Vec<String>>(),
            })
        })
        .collect();
    let verdicts: Vec<serde_json::Value> = outcome
        .metrics
        .query_profiles
        .iter()
        .map(|p| {
            serde_json::json!({
                "kind": p.kind.to_string(),
                "source": p.source.0,
                "sink": p.sink.0,
                "path_len": p.path_len,
                "sat": p.sat,
                "prefiltered": p.prefiltered,
            })
        })
        .collect();
    let m = &outcome.metrics;
    let doc = serde_json::json!({
        "reports": reports,
        "verdicts": verdicts,
        "refuted": outcome.refuted.iter().map(|r| {
            serde_json::json!({
                "kind": r.kind.to_string(),
                "source": r.source.0,
                "sink": r.sink.0,
                "core": r.core,
            })
        }).collect::<Vec<_>>(),
        "candidate_paths": m.detect.candidate_paths,
        "queries": m.detect.queries,
        "confirmed": m.detect.confirmed,
        "prefiltered": m.detect.prefiltered,
    });
    serde_json::to_string_pretty(&doc).expect("valid json")
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1000,
        150usize..500,
        1usize..4,
        1usize..5,
        0usize..3,
        0usize..3,
        0usize..3,
        0usize..2,
    )
        .prop_map(
            |(seed, stmts, threads, cells, bugs, benign, contra, df)| WorkloadSpec {
                name: format!("strat-eq-{seed}"),
                seed,
                target_stmts: stmts,
                threads,
                shared_cells: cells,
                true_bugs: bugs,
                benign_patterns: benign,
                contradiction_patterns: contra,
                handshake_patterns: 1,
                order_fp_patterns: 1,
                double_free: df,
                null_deref: 1,
                leak: 0,
                double_lock: 0,
                conflict_lock: 0,
                sb_patterns: 0,
                mp_patterns: 0,
                lb_patterns: 0,
                family_fanout: 0,
                hard_family_ratio: 0.0,
                filler: true,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_matches_fresh_on_random_workloads(spec in spec_strategy()) {
        let w = generate(&spec);
        let fresh = with_strategy(SolverStrategy::Fresh, 1).analyze(&w.prog);
        let incr = with_strategy(SolverStrategy::Incremental, 1).analyze(&w.prog);
        prop_assert_eq!(canonical_json(&fresh), canonical_json(&incr));
        // The incremental strategy stays deterministic under parallel
        // family solving, and equivalent to fresh there too.
        let incr_par = with_strategy(SolverStrategy::Incremental, 4).analyze(&w.prog);
        prop_assert_eq!(canonical_json(&incr), canonical_json(&incr_par));
    }
}

/// Byte-level check on a concrete program via the CLI: `--json` output
/// must agree across strategies after normalizing wall-time fields and
/// the per-strategy solver work counters.
#[test]
fn cli_json_agrees_across_strategies_modulo_timing() {
    let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/fig2_variant.cir");
    let run = |strategy: &str| -> serde_json::Value {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_canary"))
            .arg(&src)
            .arg("--json")
            .arg("--solver-strategy")
            .arg(strategy)
            .output()
            .expect("run canary");
        serde_json::from_slice(&out.stdout).expect("valid json")
    };
    fn null_out(rec: &mut serde_json::Value, keys: &[&str]) {
        let serde_json::Value::Object(map) = rec else {
            panic!("expected object, got {rec:?}");
        };
        for key in keys {
            map.insert((*key).to_string(), serde_json::Value::Null);
        }
    }
    let normalize = |mut doc: serde_json::Value| -> serde_json::Value {
        let serde_json::Value::Object(top) = &mut doc else {
            panic!("expected object document");
        };
        let m = top.get_mut("metrics").expect("metrics block");
        null_out(
            m,
            &[
                "time_dataflow_ms",
                "time_interference_ms",
                "time_detect_ms",
                "solver",
            ],
        );
        let serde_json::Value::Object(m) = m else {
            unreachable!()
        };
        if let Some(registry) = m.get_mut("registry") {
            // Cross-strategy comparison: zero the volatile families and
            // the strategy-sensitive `canary_solver_*` work counters.
            canary_trace::metrics::normalize_registry_json(registry, true);
        }
        if let Some(serde_json::Value::Array(qs)) = m.get_mut("hot_queries") {
            for q in qs.iter_mut() {
                null_out(
                    q,
                    &[
                        "wall_ms",
                        "decisions",
                        "conflicts",
                        "propagations",
                        "learned",
                        "theory_lemmas",
                        "memo_hit",
                        "core_subsumed",
                        "incremental",
                    ],
                );
            }
            // The hot-query table is ranked by CDCL work, which a
            // strategy may legitimately change; compare as a set.
            qs.sort_by_key(|q| serde_json::to_string(q).unwrap());
        }
        if let Some(serde_json::Value::Array(fs)) = m.get_mut("hot_functions") {
            for f in fs {
                null_out(f, &["wall_ms"]);
            }
        }
        doc
    };
    let fresh = run("fresh");
    let incr = run("incremental");
    assert_eq!(
        fresh["metrics"]["solver"]["strategy"], "fresh",
        "strategy flag reaches the solver block"
    );
    assert_eq!(incr["metrics"]["solver"]["strategy"], "incremental");
    assert_eq!(
        serde_json::to_string_pretty(&normalize(fresh)).unwrap(),
        serde_json::to_string_pretty(&normalize(incr)).unwrap(),
        "--json differs across strategies beyond timing + work counters"
    );
}
