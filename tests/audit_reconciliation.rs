//! The audit layer's two contracts (PR-10):
//!
//! 1. **Exactly one disposition** — every candidate the pipeline ever
//!    considers ends in exactly one terminal disposition, and the
//!    counts reconcile: `candidates = reported + deduped + prefiltered
//!    + unsat + memoized + scope-filtered`.
//! 2. **Strategy invariance** — the `--audit-out` JSONL export is
//!    byte-identical across solver strategy, dispatcher, shard count,
//!    worker thread count, cube escalation and `--explain`: every
//!    disposition is derived from term-determined data, never from
//!    scheduling.
//!
//! Plus targeted certificate checks: the three suppression layers
//! (MHP, lock-sharpened MHP, SMT refutation) each produce a concrete
//! machine-checkable certificate that `canary why-not` can surface.

use canary::{AnalysisOutcome, Canary, CanaryConfig};
use canary_detect::Disposition;
use canary_smt::{Dispatch, SolverStrategy};
use canary_workloads::{generate, WorkloadSpec};
use proptest::prelude::*;

#[derive(Clone, Copy)]
struct Knobs {
    strategy: SolverStrategy,
    dispatch: Dispatch,
    shards: usize,
    threads: usize,
    cube_split: usize,
    cube_budget: u64,
    explain: bool,
}

impl Knobs {
    fn fresh() -> Knobs {
        Knobs {
            strategy: SolverStrategy::Fresh,
            dispatch: Dispatch::WorkSteal,
            shards: 0,
            threads: 1,
            cube_split: 0,
            cube_budget: u64::MAX,
            explain: false,
        }
    }

    fn incremental() -> Knobs {
        Knobs {
            strategy: SolverStrategy::Incremental,
            ..Knobs::fresh()
        }
    }

    fn analyze(self, prog: &canary_ir::Program) -> AnalysisOutcome {
        let mut config = CanaryConfig::default();
        config.detect.solver.strategy = self.strategy;
        config.detect.solver.dispatch = self.dispatch;
        config.detect.solver.shards = self.shards;
        config.detect.solver.num_threads = self.threads;
        config.detect.solver.cube_split = self.cube_split;
        config.detect.solver.cube_budget = self.cube_budget;
        config.detect.explain_refutations = self.explain;
        Canary::with_config(config).analyze(prog)
    }
}

/// Workloads spanning all six checkers so every disposition source —
/// checker candidates, prefilter folds, SMT refutations, report dedup
/// — is exercised, with hard query families so cubed configurations
/// actually escalate.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1000,
        150usize..350,
        1usize..4,
        1usize..4,
        0usize..3,
        2usize..5,
    )
        .prop_map(
            |(seed, stmts, threads, cells, bugs, fanout)| WorkloadSpec {
                name: format!("audit-rec-{seed}"),
                seed,
                target_stmts: stmts,
                threads,
                shared_cells: cells,
                true_bugs: bugs,
                benign_patterns: 1,
                contradiction_patterns: 2,
                handshake_patterns: 1,
                order_fp_patterns: 1,
                double_free: 1,
                null_deref: 1,
                leak: 1,
                double_lock: 1,
                conflict_lock: 1,
                sb_patterns: 0,
                mp_patterns: 0,
                lb_patterns: 0,
                family_fanout: fanout,
                hard_family_ratio: 0.5,
                filler: true,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn audit_reconciles_and_export_is_knob_invariant(spec in spec_strategy()) {
        let w = generate(&spec);
        let base = Knobs::fresh().analyze(&w.prog);
        let summary = base.metrics.audit.reconcile();
        prop_assert!(summary.is_ok(), "{}", summary.unwrap_err());
        let summary = summary.unwrap();
        // The suppression-accounting gate: every emitted report has
        // exactly one Reported record, nothing leaks, nothing is
        // double-counted.
        prop_assert_eq!(summary.reported, base.reports.len());
        let base_jsonl = base.metrics.audit.to_jsonl();
        prop_assert!(!base_jsonl.is_empty() || summary.candidates == 0);
        for knobs in [
            Knobs::incremental(),
            Knobs { threads: 4, ..Knobs::fresh() },
            Knobs { shards: 16, threads: 4, ..Knobs::incremental() },
            Knobs { dispatch: Dispatch::Static, threads: 4, ..Knobs::incremental() },
            Knobs { cube_split: 2, cube_budget: 2, ..Knobs::incremental() },
            Knobs { cube_split: 2, cube_budget: 2, threads: 4, shards: 4, ..Knobs::incremental() },
            Knobs { explain: true, ..Knobs::fresh() },
            Knobs { explain: true, threads: 4, ..Knobs::incremental() },
        ] {
            let o = knobs.analyze(&w.prog);
            prop_assert!(o.metrics.audit.reconcile().is_ok());
            prop_assert_eq!(&base_jsonl, &o.metrics.audit.to_jsonl());
        }
    }
}

fn analyze(src: &str) -> AnalysisOutcome {
    Canary::new().analyze_source(src).expect("parses")
}

/// A load that happens-before the forked writer's store: the pair is
/// impossible interference, killed by MHP with the consulted facts as
/// the certificate.
#[test]
fn mhp_pruned_pair_has_certificate() {
    let outcome = analyze(
        "fn main() {
            x = alloc c;
            e = *x;
            use e;
            fork t w(x);
         }
         fn w(p) {
            b = alloc o;
            *p = b;
         }",
    );
    let audit = &outcome.metrics.audit;
    let rec = audit
        .records()
        .iter()
        .find(|r| matches!(r.disposition, Some(Disposition::PrunedMhp { .. })))
        .expect("an MHP-pruned pair");
    let Some(Disposition::PrunedMhp {
        parallel,
        ordered_before,
    }) = rec.disposition
    else {
        unreachable!()
    };
    assert!(!parallel && !ordered_before);
    // `canary why-not <store> <load>` finds the same record.
    let found = audit.find_pair(rec.source, rec.sink.unwrap());
    assert!(found.iter().any(|r| r.seq == rec.seq), "{found:?}");
    assert!(rec.describe().contains("MHP"), "{}", rec.describe());
}

/// Both accesses inside critical sections of one lock class, with a
/// later store overwriting the value before the writer's unlock: the
/// certificate names the class and the killing store.
#[test]
fn lock_sharpened_pair_names_killing_store() {
    let outcome = analyze(
        "fn main() {
            x = alloc cell; m = alloc mu;
            v = alloc o1; u = alloc o2;
            fork t r(x, m);
            lock m;
            *x = v;
            *x = u;
            unlock m;
         }
         fn r(p, n) {
            lock n;
            c = *p;
            use c;
            unlock n;
         }",
    );
    let audit = &outcome.metrics.audit;
    let rec = audit
        .records()
        .iter()
        .find(|r| matches!(r.disposition, Some(Disposition::PrunedLockSharpen { .. })))
        .expect("a lock-sharpened pair");
    let Some(Disposition::PrunedLockSharpen { killing_store, .. }) = rec.disposition else {
        unreachable!()
    };
    // The killing store is the *x = u after the pruned *x = v, inside
    // the same region — in particular a different label than the
    // pruned store itself.
    assert_ne!(killing_store, rec.source);
    assert!(
        rec.describe().contains(&killing_store.to_string()),
        "{}",
        rec.describe()
    );
}

/// A refutation that only falls to the solver (the freed value is
/// overwritten before the reader starts — Eq. 2's no-overwrite
/// disjunction): the certificate carries the refuted conjunct set,
/// mapped back to named order atoms.
#[test]
fn solver_refuted_pair_has_unsat_core_conjuncts() {
    let outcome = analyze(
        "fn main() {
            cell = alloc c;
            v = alloc o;
            *cell = v;
            free v;
            g = alloc o2;
            *cell = g;
            fork t w(cell);
         }
         fn w(s) { x = *s; use x; }",
    );
    assert!(outcome.reports.is_empty());
    let audit = &outcome.metrics.audit;
    let rec = audit
        .records()
        .iter()
        .find(|r| matches!(r.disposition, Some(Disposition::UnsatCore { .. })))
        .expect("a solver-refuted pair");
    let Some(Disposition::UnsatCore {
        conjuncts,
        conjunct_ids,
        subsumed_by,
    }) = &rec.disposition
    else {
        unreachable!()
    };
    assert!(!conjuncts.is_empty());
    assert_eq!(subsumed_by, &None, "first refutation of this set");
    assert!(
        conjunct_ids.len() >= conjuncts.len(),
        "ids cover at least the rendered prefix"
    );
    assert!(conjuncts.iter().any(|c| c.contains('O')), "{conjuncts:?}");
}

/// Reported pairs reconcile against the emitted reports: the audit
/// record's fingerprint is the report's fingerprint, and duplicate
/// candidates point at the surviving winner.
#[test]
fn reported_and_deduped_records_match_emitted_reports() {
    let src = "fn main() { p = alloc o; fork t w(p); free p; }
         fn w(q) { use q; }";
    let parsed = canary_ir::parse(src).expect("parses");
    let outcome = analyze(src);
    assert_eq!(outcome.reports.len(), 1);
    let prog = outcome.analyzed_program.as_ref().unwrap_or(&parsed);
    let fp = outcome.reports[0].fingerprint(prog);
    let audit = &outcome.metrics.audit;
    let reported: Vec<_> = audit
        .records()
        .iter()
        .filter_map(|r| match &r.disposition {
            Some(Disposition::Reported { fingerprint }) => Some(*fingerprint),
            _ => None,
        })
        .collect();
    assert_eq!(reported, vec![fp]);
    for r in audit.records() {
        if let Some(Disposition::Deduped { winner }) = &r.disposition {
            assert_eq!(*winner, fp, "duplicates point at the survivor");
        }
    }
}

/// The flagship bug-free program: its lone candidate folds to `ff` at
/// construction, so the audit shows a prefilter certificate and zero
/// solver work — identically with and without `--explain`, which keeps
/// such candidates alive longer for core extraction.
#[test]
fn prefiltered_disposition_is_explain_invariant() {
    const FIG2: &str = "fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
         }
         fn thread1(y) {
            b = alloc o2;
            if (!theta1) { *y = b; free b; }
         }";
    let plain = analyze(FIG2);
    let mut config = CanaryConfig::default();
    config.detect.explain_refutations = true;
    let explained = Canary::with_config(config).analyze_source(FIG2).unwrap();
    let jsonl = plain.metrics.audit.to_jsonl();
    assert!(jsonl.contains("\"prefiltered\""), "{jsonl}");
    assert_eq!(jsonl, explained.metrics.audit.to_jsonl());
    assert_eq!(plain.metrics.detect.queries, 0, "no solver work");
}

/// A tiny path budget leaves a `path_budget` marker: enumeration was
/// truncated, so missing candidates are accounted for rather than
/// silently absent.
#[test]
fn path_budget_truncation_is_recorded() {
    let mut config = CanaryConfig::default();
    config.detect.limits.max_paths = 1;
    let outcome = Canary::with_config(config)
        .analyze_source(
            "fn main() {
                c1 = alloc c1;
                v = alloc o;
                *c1 = v;
                t0 = *c1;
                *c1 = t0;
                free v;
                fork t w(c1);
             }
             fn w(p) { x = *p; use x; }",
        )
        .unwrap();
    let audit = &outcome.metrics.audit;
    let summary = audit.reconcile().expect("reconciles");
    assert!(
        summary.path_budget >= 1,
        "expected a truncation marker: {}",
        summary.render()
    );
    assert!(audit
        .records()
        .iter()
        .any(|r| matches!(r.disposition, Some(Disposition::PathBudget { limit: "max_paths" }))));
}
