//! End-to-end tests of the structured tracing layer: Chrome trace-event
//! schema validity, byte-level determinism across worker counts, solver
//! attribution reaching [`canary_core::Metrics`], and the `--trace-out`
//! / `CANARY_LOG` CLI surface.

use std::io::Write;
use std::process::Command;

use canary_core::{trace, Canary, CanaryConfig};

/// The paper's Fig. 2 variant without the contradictory branch
/// conditions: a real inter-thread UAF, so §5 issues at least one SMT
/// query (per-query spans and attribution records are populated).
const FIG2_VARIANT: &str = "
    fn main(a) {
        x = alloc o1;
        *x = a;
        fork t thread1(x);
        c = *x;
        use c;
    }
    fn thread1(y) {
        b = alloc o2;
        *y = b;
        free b;
    }
";

fn canary_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_canary"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("canary-trace-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

/// Runs the full pipeline with an enabled tracer at a worker count and
/// returns the Chrome trace export.
fn traced_run(threads: usize) -> String {
    let prog = canary_ir::parse(FIG2_VARIANT).unwrap();
    let config = CanaryConfig {
        threads,
        ..CanaryConfig::default()
    };
    let tracer = trace::Tracer::enabled();
    let outcome = Canary::with_config(config).analyze_traced(&prog, &tracer);
    assert_eq!(outcome.reports.len(), 1, "the variant's UAF is real");
    tracer.export_chrome()
}

#[test]
fn chrome_trace_schema_is_well_formed() {
    let json = traced_run(1);
    let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(doc["displayTimeUnit"], "ms");
    let events = doc["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e["pid"].as_u64(), Some(1), "{e:?}");
        assert!(e["tid"].as_u64().is_some(), "{e:?}");
        assert_eq!(e["ph"], "X", "{e:?}");
        assert!(e["ts"].as_u64().is_some(), "{e:?}");
        assert!(e["dur"].as_u64().unwrap() >= 1, "{e:?}");
        assert!(!e["name"].as_str().unwrap().is_empty(), "{e:?}");
        assert!(e["cat"].as_str().is_some(), "{e:?}");
    }
}

#[test]
fn trace_covers_all_three_phases_and_smt_queries() {
    let json = traced_run(1);
    let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    let names: Vec<String> = doc["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["name"].as_str().unwrap().to_string())
        .collect();
    for phase in ["alg1", "alg2", "detect"] {
        assert!(names.iter().any(|n| n == phase), "missing {phase}: {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("alg1.func:")),
        "{names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("alg2.edges:")),
        "{names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("detect.kind:")),
        "{names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("smt.query:")),
        "at least one per-SMT-query span: {names:?}"
    );
}

#[test]
fn trace_is_deterministic_across_worker_counts() {
    let serial = traced_run(1);
    let parallel = traced_run(2);
    let normalize = |s: &str| -> String {
        let mut doc: serde_json::Value = serde_json::from_str(s).unwrap();
        trace::normalize_chrome_trace(&mut doc);
        serde_json::to_string_pretty(&doc).unwrap()
    };
    assert_eq!(
        normalize(&serial),
        normalize(&parallel),
        "trace differs between 1 and 2 workers after timing normalization"
    );
}

#[test]
fn solver_attribution_reaches_metrics() {
    let prog = canary_ir::parse(FIG2_VARIANT).unwrap();
    let outcome = Canary::new().analyze(&prog);
    let m = &outcome.metrics;
    assert!(m.detect.queries >= 1);
    assert_eq!(m.query_profiles.len(), m.detect.queries);
    let q = &m.query_profiles[0];
    assert!(q.sat);
    assert!(q.path_len >= 2);
    assert!(q.order_atoms >= 1, "Φ_po is non-trivial here: {q:?}");
    // The solver does real work on this query; the summed counters in
    // DetectStats must agree with the per-query records.
    let prop_sum: u64 = m.query_profiles.iter().map(|p| p.propagations).sum();
    assert_eq!(m.detect.propagations, prop_sum);
    assert!(prop_sum >= 1);
    // Alg. 1 profiles arrive in deterministic commit order (fork
    // targets are not call edges, so both functions share a level and
    // commit in function-index order).
    let names: Vec<&str> = m.func_profiles.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["main", "thread1"], "deterministic commit order");
    // Hottest-function ranking is by deterministic work counters.
    let hot = m.hottest_functions(5);
    assert_eq!(hot[0].name, "main");
    assert!(hot[0].stmt_visits >= hot[1].stmt_visits);
    assert_eq!(m.hottest_queries(5).len(), m.query_profiles.len().min(5));
}

#[test]
fn cli_trace_out_writes_valid_chrome_trace() {
    let src_path = write_temp("variant.cir", FIG2_VARIANT);
    let trace_path = std::env::temp_dir().join("canary-trace-tests/cli_trace.json");
    let out = canary_bin()
        .arg(&src_path)
        .arg("--trace-out")
        .arg(&trace_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "the bug is reported as usual");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let names: Vec<&str> = doc["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["name"].as_str().unwrap())
        .collect();
    for phase in ["alg1", "alg2", "detect"] {
        assert!(names.contains(&phase), "missing {phase}: {names:?}");
    }
    assert!(names.iter().any(|n| n.starts_with("smt.query:")), "{names:?}");
}

#[test]
fn cli_stats_shows_solver_totals_and_hottest_tables() {
    let src_path = write_temp("variant_stats.cir", FIG2_VARIANT);
    let out = canary_bin().arg(&src_path).arg("--stats").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solver: 1 queries"), "{stdout}");
    assert!(stdout.contains("propagations"), "{stdout}");
    assert!(stdout.contains("hottest queries:"), "{stdout}");
    assert!(stdout.contains("hottest functions (Alg. 1):"), "{stdout}");
    assert!(stdout.contains("decisions"), "{stdout}");
}

#[test]
fn cli_json_carries_solver_block_and_hot_tables() {
    let src_path = write_temp("variant_json.cir", FIG2_VARIANT);
    let out = canary_bin().arg(&src_path).arg("--json").output().unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let m = &doc["metrics"];
    assert!(m["solver"]["propagations"].as_u64().unwrap() >= 1);
    assert_eq!(m["solver"]["prefiltered"].as_u64(), Some(0));
    let hot_q = m["hot_queries"].as_array().unwrap();
    assert_eq!(hot_q.len(), 1);
    assert_eq!(hot_q[0]["sat"], true);
    assert!(hot_q[0]["order_atoms"].as_u64().unwrap() >= 1);
    let hot_f = m["hot_functions"].as_array().unwrap();
    assert_eq!(hot_f[0]["function"], "main");
}

#[test]
fn canary_log_heartbeats_go_to_stderr_only() {
    let src_path = write_temp("variant_log.cir", FIG2_VARIANT);
    let quiet = canary_bin().arg(&src_path).output().unwrap();
    let chatty = canary_bin()
        .arg(&src_path)
        .env("CANARY_LOG", "summary")
        .output()
        .unwrap();
    // stdout is identical with and without logging.
    assert_eq!(quiet.stdout, chatty.stdout);
    assert!(String::from_utf8_lossy(&quiet.stderr).is_empty());
    let stderr = String::from_utf8_lossy(&chatty.stderr);
    for needle in ["canary: alg1:", "canary: alg2:", "canary: detect:"] {
        assert!(stderr.contains(needle), "missing {needle:?} in {stderr}");
    }
    // debug is a superset of summary.
    let debug = canary_bin()
        .arg(&src_path)
        .env("CANARY_LOG", "debug")
        .output()
        .unwrap();
    let dbg_err = String::from_utf8_lossy(&debug.stderr);
    assert!(dbg_err.len() >= stderr.len());
    assert!(dbg_err.contains("canary: alg1:"), "{dbg_err}");
}

#[test]
fn log_flag_overrides_the_environment() {
    let src_path = write_temp("variant_logflag.cir", FIG2_VARIANT);
    // `--log off` silences a run whose environment asks for summary.
    let off = canary_bin()
        .arg(&src_path)
        .env("CANARY_LOG", "summary")
        .args(["--log", "off"])
        .output()
        .unwrap();
    assert_eq!(off.status.code(), Some(1), "the bug is still reported");
    assert!(
        off.stderr.is_empty(),
        "--log off must win over CANARY_LOG=summary: {}",
        String::from_utf8_lossy(&off.stderr)
    );
    // `--log summary` enables heartbeats without any environment.
    let on = canary_bin()
        .arg(&src_path)
        .env_remove("CANARY_LOG")
        .args(["--log", "summary"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&on.stderr);
    for needle in ["canary: alg1:", "canary: alg2:", "canary: detect:"] {
        assert!(stderr.contains(needle), "missing {needle:?} in {stderr}");
    }
    // The heartbeats carry live progress: per-level commits for Alg. 1,
    // convergence state for Alg. 2, per-checker progress for §5.
    assert!(stderr.contains("level"), "{stderr}");
    assert!(stderr.contains("(converged)"), "{stderr}");
    assert!(stderr.contains("checker"), "{stderr}");
}

#[test]
fn slow_query_watchdog_logs_full_attribution() {
    let src_path = write_temp("variant_slow.cir", FIG2_VARIANT);
    // A zero budget flags every query; the watchdog is opt-in via the
    // flag itself and must not require CANARY_LOG.
    let out = canary_bin()
        .arg(&src_path)
        .env_remove("CANARY_LOG")
        .args(["--slow-query-ms", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("canary: slow-query:"), "{stderr}");
    for field in ["path_len=", "decisions=", "conflicts=", "sat=", "memo_hit="] {
        assert!(stderr.contains(field), "missing {field} in {stderr}");
    }
    // Default is off: no watchdog lines without the flag.
    let quiet = canary_bin().arg(&src_path).env_remove("CANARY_LOG").output().unwrap();
    assert!(quiet.stderr.is_empty());
}
