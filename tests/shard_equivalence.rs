//! The dispatcher/shard/cube equivalence contract (PR-9): the
//! work-stealing dispatcher, the shard count, the solver thread count
//! and the §5.2 cube escalation are *pure scheduling and saturation
//! knobs* — none of them may change a report, a per-query verdict, a
//! refutation core, or (for fixed solver flags) any deterministic
//! work counter.
//!
//! Layers:
//!
//! 1. a property test (12 cases) over random `canary-workloads`
//!    programs with hard query families, comparing canonical outcomes
//!    across dispatchers × shard counts × thread counts × cube
//!    settings against a fresh-strategy baseline;
//! 2. thread-invariance of the deterministic counter block
//!    (`DetectStats`) for a fixed cubed configuration;
//! 3. a CLI-level SARIF byte-identity check across the same knobs.

use canary::{AnalysisOutcome, Canary, CanaryConfig};
use canary_smt::{Dispatch, SolverStrategy};
use canary_workloads::{generate, WorkloadSpec};
use proptest::prelude::*;

#[derive(Clone, Copy)]
struct Knobs {
    strategy: SolverStrategy,
    dispatch: Dispatch,
    shards: usize,
    threads: usize,
    cube_split: usize,
    cube_budget: u64,
}

impl Knobs {
    fn fresh() -> Knobs {
        Knobs {
            strategy: SolverStrategy::Fresh,
            dispatch: Dispatch::WorkSteal,
            shards: 0,
            threads: 1,
            cube_split: 0,
            cube_budget: u64::MAX,
        }
    }

    fn incremental() -> Knobs {
        Knobs {
            strategy: SolverStrategy::Incremental,
            ..Knobs::fresh()
        }
    }

    fn analyze(self, prog: &canary_ir::Program) -> AnalysisOutcome {
        let mut config = CanaryConfig::default();
        config.detect.solver.strategy = self.strategy;
        config.detect.solver.dispatch = self.dispatch;
        config.detect.solver.shards = self.shards;
        config.detect.solver.num_threads = self.threads;
        config.detect.solver.cube_split = self.cube_split;
        config.detect.solver.cube_budget = self.cube_budget;
        config.detect.explain_refutations = true;
        Canary::with_config(config).analyze(prog)
    }
}

/// Canonical JSON for everything a scheduling knob must NOT change:
/// reports (with witness schedules), refutation cores, and per-query
/// verdicts.
fn canonical_json(outcome: &AnalysisOutcome) -> String {
    let reports: Vec<serde_json::Value> = outcome
        .reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "kind": r.kind.to_string(),
                "source": r.source.0,
                "sink": r.sink.0,
                "inter_thread": r.inter_thread,
                "path": r.path,
                "schedule": r.schedule.iter().map(|l| l.0).collect::<Vec<u32>>(),
            })
        })
        .collect();
    let verdicts: Vec<serde_json::Value> = outcome
        .metrics
        .query_profiles
        .iter()
        .map(|p| {
            serde_json::json!({
                "kind": p.kind.to_string(),
                "source": p.source.0,
                "sink": p.sink.0,
                "sat": p.sat,
                "prefiltered": p.prefiltered,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "reports": reports,
        "verdicts": verdicts,
        "refuted": outcome.refuted.iter().map(|r| {
            serde_json::json!({
                "kind": r.kind.to_string(),
                "source": r.source.0,
                "sink": r.sink.0,
                "core": r.core,
            })
        }).collect::<Vec<_>>(),
        "queries": outcome.metrics.detect.queries,
        "confirmed": outcome.metrics.detect.confirmed,
    });
    serde_json::to_string_pretty(&doc).expect("valid json")
}

/// Workloads that include hard query families (`family_fanout`,
/// `hard_family_ratio`) so the cubed configurations actually escalate
/// on some cases instead of vacuously agreeing.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        0u64..1000,
        150usize..400,
        1usize..4,
        1usize..4,
        0usize..3,
        1usize..4,
        2usize..6,
    )
        .prop_map(
            |(seed, stmts, threads, cells, bugs, contra, fanout)| WorkloadSpec {
                name: format!("shard-eq-{seed}"),
                seed,
                target_stmts: stmts,
                threads,
                shared_cells: cells,
                true_bugs: bugs,
                benign_patterns: 1,
                contradiction_patterns: contra,
                handshake_patterns: 1,
                order_fp_patterns: 1,
                double_free: 0,
                null_deref: 1,
                leak: 0,
                double_lock: 0,
                conflict_lock: 0,
                sb_patterns: 0,
                mp_patterns: 0,
                lb_patterns: 0,
                family_fanout: fanout,
                hard_family_ratio: 0.75,
                filler: true,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn outcomes_identical_across_shard_thread_and_cube_settings(spec in spec_strategy()) {
        let w = generate(&spec);
        let base = canonical_json(&Knobs::fresh().analyze(&w.prog));
        let cubed = Knobs { cube_split: 2, cube_budget: 2, ..Knobs::incremental() };
        for knobs in [
            Knobs::incremental(),
            Knobs { shards: 1, ..Knobs::incremental() },
            Knobs { shards: 16, threads: 4, ..Knobs::incremental() },
            Knobs { dispatch: Dispatch::Static, threads: 4, ..Knobs::incremental() },
            Knobs { threads: 1, ..cubed },
            Knobs { threads: 4, shards: 4, ..cubed },
        ] {
            prop_assert_eq!(&base, &canonical_json(&knobs.analyze(&w.prog)));
        }
        // Stronger than verdict equality: for fixed solver flags the
        // whole deterministic counter block — decisions, conflicts,
        // propagations, lemmas, families, epochs, cube escalations —
        // is invariant under the worker thread count.
        let c1 = Knobs { threads: 1, shards: 4, ..cubed }.analyze(&w.prog);
        let c4 = Knobs { threads: 4, shards: 4, ..cubed }.analyze(&w.prog);
        prop_assert_eq!(
            format!("{:?}", c1.metrics.detect),
            format!("{:?}", c4.metrics.detect)
        );
    }
}

/// Byte-level check via the CLI: for a fixed program, SARIF output
/// must agree byte-for-byte (outside the run manifest, which records
/// the actual knob values) across dispatchers, shard counts, cube
/// settings and the memory budget.
#[test]
fn cli_sarif_is_byte_identical_across_dispatch_shards_and_cubes() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/fig2_variant.cir");
    let run = |extra: &[&str]| -> String {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_canary"))
            .arg(&path)
            .args(["--format", "sarif"])
            .args(extra)
            .output()
            .expect("run canary");
        let mut doc: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid json");
        // Blank the manifest: it records the actual dispatch/shard/cube
        // flags, which are exactly what this test varies.
        {
            let serde_json::Value::Object(top) = &mut doc else {
                panic!("expected object document")
            };
            let Some(serde_json::Value::Array(runs)) = top.get_mut("runs") else {
                panic!("expected runs array")
            };
            let Some(serde_json::Value::Object(r)) = runs.get_mut(0) else {
                panic!("expected run object")
            };
            let Some(serde_json::Value::Array(invs)) = r.get_mut("invocations") else {
                panic!("expected invocations array")
            };
            let Some(serde_json::Value::Object(inv)) = invs.get_mut(0) else {
                panic!("expected invocation object")
            };
            inv.insert("properties".to_string(), serde_json::Value::Null);
        }
        serde_json::to_string_pretty(&doc).expect("valid json")
    };
    let base = run(&[]);
    for extra in [
        &["--dispatch", "static"][..],
        &["--dispatch", "worksteal", "--shards", "1"][..],
        &["--shards", "16", "--threads", "4"][..],
        &["--cube-split", "2"][..],
        &["--cube-split", "2", "--threads", "4"][..],
        &["--memory-budget-mb", "1"][..],
    ] {
        assert_eq!(base, run(extra), "SARIF differs under {extra:?}");
    }
}
