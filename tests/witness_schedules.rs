//! Tests for the witness-interleaving extraction: every confirmed
//! report carries a concrete sequentially consistent schedule of the
//! constrained events that actually exhibits the bug.

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;
use canary_ir::{parse, CallGraph, OrderGraph};

#[test]
fn uaf_schedule_places_free_before_use() {
    let src = "fn main() { p = alloc o; fork t w(p); free p; }
               fn w(q) { use q; }";
    let outcome = Canary::new().analyze_source(src).unwrap();
    let report = outcome
        .reports
        .iter()
        .find(|r| r.kind == BugKind::UseAfterFree)
        .expect("uaf reported");
    let sched = &report.schedule;
    assert!(!sched.is_empty(), "witness extracted");
    let pos = |l| sched.iter().position(|&x| x == l);
    let (pf, pu) = (pos(report.source), pos(report.sink));
    if let (Some(pf), Some(pu)) = (pf, pu) {
        assert!(pf < pu, "free must precede the use in the witness");
    } else {
        panic!("source and sink must appear in the schedule: {sched:?}");
    }
}

#[test]
fn schedule_respects_program_order() {
    let src = "fn main() { p = alloc o; fork t w(p); free p; }
               fn w(q) { use q; }";
    let prog = parse(src).unwrap();
    let cg = CallGraph::build(&prog);
    let og = OrderGraph::build(&prog, &cg);
    let outcome = Canary::new().analyze(&prog);
    for report in &outcome.reports {
        let sched = &report.schedule;
        for i in 0..sched.len() {
            for j in (i + 1)..sched.len() {
                // Later events must never be ordered before earlier ones.
                assert!(
                    !og.happens_before(sched[j], sched[i]),
                    "schedule {:?} violates program order at ({}, {})",
                    sched,
                    sched[i],
                    sched[j]
                );
            }
        }
    }
}

#[test]
fn schedule_events_are_unique() {
    let src = "fn main() {
                   cell = alloc c; v = alloc o; *cell = v;
                   fork t w(cell);
                   free v;
               }
               fn w(slot) { x = *slot; use x; }";
    let outcome = Canary::new().analyze_source(src).unwrap();
    assert!(!outcome.reports.is_empty());
    for report in &outcome.reports {
        let mut seen = std::collections::HashSet::new();
        for &l in &report.schedule {
            assert!(seen.insert(l), "duplicate event {l} in witness");
        }
    }
}

#[test]
fn schedule_is_a_complete_replayable_prefix() {
    // The schedule must contain not just the constrained value-flow
    // events but every fork that creates a participating thread —
    // otherwise it cannot drive an interpreter from the initial state.
    let src = "fn main() { p = alloc o; fork t w(p); free p; }
               fn w(q) { use q; }";
    let prog = parse(src).unwrap();
    let outcome = Canary::new().analyze(&prog);
    let report = outcome
        .reports
        .iter()
        .find(|r| r.kind == BugKind::UseAfterFree)
        .expect("uaf reported");
    let fork = (0..u32::try_from(prog.stmt_count()).unwrap())
        .map(canary_ir::Label::new)
        .find(|&l| matches!(prog.inst(l), canary_ir::Inst::Fork { .. }))
        .expect("program has a fork");
    assert!(
        report.schedule.contains(&fork),
        "fork {fork} missing from witness prefix {:?}",
        report.schedule
    );
    let replayed = canary_oracle::replay_report(&prog, report);
    assert!(replayed.confirmed(), "{replayed:?}");
}

#[test]
fn every_report_schedule_replays_to_its_bug() {
    // Precision over a handful of shapes: heap-published pointers,
    // guarded frees with a consistent valuation, and double frees.
    let programs = [
        "fn main() {
             cell = alloc c; v = alloc o; *cell = v;
             fork t w(cell);
             free v;
         }
         fn w(slot) { x = *slot; use x; }",
        "fn main() {
             cell = alloc c; v = alloc o; *cell = v;
             fork t w(cell);
             if (g1) { free v; }
         }
         fn w(slot) { if (g1) { x = *slot; use x; } }",
        "fn main() { p = alloc o; fork t w(p); free p; }
         fn w(q) { free q; }",
    ];
    for src in programs {
        let prog = parse(src).unwrap();
        let outcome = Canary::new().analyze(&prog);
        assert!(!outcome.reports.is_empty(), "{src}");
        for report in &outcome.reports {
            let replayed = canary_oracle::replay_report(&prog, report);
            assert!(replayed.confirmed(), "{report:?} -> {replayed:?}\n{src}");
        }
    }
}

#[test]
fn refuted_candidates_have_no_reports_hence_no_schedules() {
    let src = r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) { *y = b; free b; }
        }
    "#;
    let outcome = Canary::new().analyze_source(src).unwrap();
    assert!(outcome.reports.is_empty());
}

#[test]
fn rendered_report_includes_the_schedule() {
    let src = "fn main() { p = alloc o; fork t w(p); free p; }
               fn w(q) { use q; }";
    let prog = parse(src).unwrap();
    let outcome = Canary::with_config(CanaryConfig::default()).analyze(&prog);
    let text = outcome.render(&prog);
    assert!(text.contains("witness schedule"), "{text}");
    assert!(text.contains("free p"), "{text}");
}
