//! A scenario matrix across all four checkers: each cell pairs a buggy
//! program with its closest safe variant, so every report the engine
//! emits is balanced by a refutation the engine must also get right.

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions};

fn reports(src: &str, kind: BugKind) -> usize {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![kind],
        ..CanaryConfig::default()
    });
    canary.analyze_source(src).expect("test program parses").reports.len()
}

mod use_after_free {
    use super::*;

    #[test]
    fn racy_fork_reported() {
        let src = "fn main() { p = alloc o; fork t w(p); free p; }
                   fn w(q) { use q; }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 1);
    }

    #[test]
    fn join_protected_safe() {
        let src = "fn main() { p = alloc o; fork t w(p); join t; free p; }
                   fn w(q) { use q; }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 0);
    }

    #[test]
    fn free_through_heap_alias_reported() {
        // The freed pointer travels through shared memory before the use.
        let src = "fn main() {
                       cell = alloc c; v = alloc o; *cell = v;
                       fork t w(cell);
                       free v;
                   }
                   fn w(slot) { x = *slot; use x; }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 1);
    }

    #[test]
    fn overwritten_before_load_safe() {
        // A fresh value strongly overwrites the cell before the only load.
        let src = "fn main() {
                       cell = alloc c; v = alloc o; *cell = v;
                       free v;
                       w2 = alloc o2; *cell = w2;
                       x = *cell; use x;
                   }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 0);
    }

    #[test]
    fn disjunctive_alias_guards_keep_recall() {
        // The store reaches the cell through either of two aliases,
        // one per branch arm; the free fires in the ¬c1 arm. The
        // pointed-to-by guard must be the *disjunction* over both arms
        // (c1 ∨ ¬c1 = true), or the ¬c1 path would be wrongly refuted.
        let src = "fn main() {
                       cell = alloc c; v = alloc o;
                       if (c1) { p = cell; *p = v; }
                       else { q = cell; *q = v; }
                       fork t w(cell);
                       if (!c1) { free v; }
                   }
                   fn w(s) { x = *s; use x; }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 1);
    }

    #[test]
    fn contradictory_guards_safe() {
        let src = "fn main() {
                       cell = alloc c; v = alloc o; *cell = v;
                       fork t w(cell);
                       if (g1) { free v; }
                   }
                   fn w(slot) { if (!g1) { x = *slot; use x; } }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 0);
    }

    #[test]
    fn guard_on_sink_as_first_statement_is_honored() {
        // The victim's dereference is its function's *first* statement
        // and guarded by ¬shutdown; the free is guarded by shutdown.
        // The sink's path condition must reach the constraint even
        // though the parameter anchor and the sink node coincide.
        let src = "fn main() {
                       v = alloc o;
                       fork t w(v);
                       if (shutdown) { free v; }
                   }
                   fn w(q) { if (!shutdown) { use q; } }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 0);
    }

    #[test]
    fn same_polarity_guards_reported() {
        let src = "fn main() {
                       cell = alloc c; v = alloc o; *cell = v;
                       fork t w(cell);
                       if (g1) { free v; }
                   }
                   fn w(slot) { if (g1) { x = *slot; use x; } }";
        assert_eq!(reports(src, BugKind::UseAfterFree), 1);
    }
}

mod double_free {
    use super::*;

    #[test]
    fn two_threads_reported() {
        let src = "fn main() { p = alloc o; fork t w(p); free p; }
                   fn w(q) { free q; }";
        assert_eq!(reports(src, BugKind::DoubleFree), 1);
    }

    #[test]
    fn branch_exclusive_safe() {
        let src = "fn main() { p = alloc o; if (c) { free p; } else { q = p; free q; } }";
        assert_eq!(reports(src, BugKind::DoubleFree), 0);
    }

    #[test]
    fn sequential_same_pointer_reported() {
        let src = "fn main() { p = alloc o; q = p; free p; free q; }";
        assert_eq!(reports(src, BugKind::DoubleFree), 1);
    }

    #[test]
    fn distinct_objects_safe() {
        let src = "fn main() { p = alloc o1; q = alloc o2; free p; free q; }";
        assert_eq!(reports(src, BugKind::DoubleFree), 0);
    }
}

mod null_deref {
    use super::*;

    #[test]
    fn cross_thread_sentinel_reported() {
        let src = "fn main() {
                       q = alloc slot; m = alloc msg; *q = m;
                       fork t w(q);
                       n = null; *q = n;
                   }
                   fn w(s) { x = *s; use x; }";
        assert_eq!(reports(src, BugKind::NullDeref), 1);
    }

    #[test]
    fn overwritten_null_safe() {
        let src = "fn main() {
                       q = alloc slot;
                       n = null; *q = n;
                       m = alloc msg; *q = m;
                       x = *q; use x;
                   }";
        assert_eq!(reports(src, BugKind::NullDeref), 0);
    }

    #[test]
    fn direct_null_use_reported() {
        let src = "fn main() { n = null; use n; }";
        assert_eq!(reports(src, BugKind::NullDeref), 1);
    }

    #[test]
    fn guarded_null_publication_safe() {
        let src = "fn main() {
                       q = alloc slot; m = alloc msg; *q = m;
                       fork t w(q);
                       if (down) { n = null; *q = n; }
                   }
                   fn w(s) { if (!down) { x = *s; use x; } }";
        assert_eq!(reports(src, BugKind::NullDeref), 0);
    }
}

mod data_leak {
    use super::*;

    #[test]
    fn cross_thread_leak_reported() {
        let src = "fn main() {
                       q = alloc slot; s = taint; *q = s;
                       fork t w(q);
                   }
                   fn w(c) { x = *c; sink x; }";
        assert_eq!(reports(src, BugKind::DataLeak), 1);
    }

    #[test]
    fn clean_value_safe() {
        let src = "fn main() {
                       q = alloc slot; v = alloc pub_data; *q = v;
                       fork t w(q);
                   }
                   fn w(c) { x = *c; sink x; }";
        assert_eq!(reports(src, BugKind::DataLeak), 0);
    }

    #[test]
    fn leak_through_copy_chain_reported() {
        let src = "fn main() { s = taint; a = s; b = a; sink b; }";
        assert_eq!(reports(src, BugKind::DataLeak), 1);
    }

    #[test]
    fn overwritten_secret_safe() {
        let src = "fn main() {
                       q = alloc slot; s = taint; *q = s;
                       v = alloc pub_data; *q = v;
                       x = *q; sink x;
                   }";
        assert_eq!(reports(src, BugKind::DataLeak), 0);
    }
}

mod double_lock {
    use super::*;

    #[test]
    fn reacquisition_through_alias_reported() {
        let src = "fn main() { m = alloc mu; n = m; lock m; lock n; unlock n; }";
        assert_eq!(reports(src, BugKind::DoubleLock), 1);
    }

    #[test]
    fn unlock_between_acquisitions_safe() {
        let src = "fn main() { m = alloc mu; lock m; unlock m; lock m; unlock m; }";
        assert_eq!(reports(src, BugKind::DoubleLock), 0);
    }

    #[test]
    fn distinct_mutexes_safe() {
        let src = "fn main() { a = alloc ma; b = alloc mb; lock a; lock b; unlock b; unlock a; }";
        assert_eq!(reports(src, BugKind::DoubleLock), 0);
    }

    #[test]
    fn cross_thread_contention_safe() {
        // The parent holds the mutex across the fork while the child
        // acquires it: contention blocks, it does not re-acquire.
        let src = "fn main() { m = alloc mu; lock m; fork t w(m); unlock m; join t; }
                   fn w(n) { lock n; unlock n; }";
        assert_eq!(reports(src, BugKind::DoubleLock), 0);
    }
}

mod conflict_lock {
    use super::*;

    #[test]
    fn opposite_acquisition_orders_reported() {
        let src = "fn main() {
                       a = alloc ma; b = alloc mb;
                       fork t w(a, b);
                       lock a; lock b; unlock b; unlock a;
                       join t;
                   }
                   fn w(x, y) { lock y; lock x; unlock x; unlock y; }";
        assert_eq!(reports(src, BugKind::ConflictLock), 1);
    }

    #[test]
    fn consistent_acquisition_orders_safe() {
        let src = "fn main() {
                       a = alloc ma; b = alloc mb;
                       fork t w(a, b);
                       lock a; lock b; unlock b; unlock a;
                       join t;
                   }
                   fn w(x, y) { lock x; lock y; unlock y; unlock x; }";
        assert_eq!(reports(src, BugKind::ConflictLock), 0);
    }

    #[test]
    fn join_serialized_orders_safe() {
        let src = "fn main() {
                       a = alloc ma; b = alloc mb;
                       fork t w(a, b);
                       join t;
                       lock a; lock b; unlock b; unlock a;
                   }
                   fn w(x, y) { lock y; lock x; unlock x; unlock y; }";
        assert_eq!(reports(src, BugKind::ConflictLock), 0);
    }

    #[test]
    fn gate_lock_safe() {
        // A common outer gate mutex serializes both acquisition
        // sequences, so the opposite inner orders cannot interleave.
        let src = "fn main() {
                       g = alloc mg; a = alloc ma; b = alloc mb;
                       fork t w(g, a, b);
                       lock g; lock a; lock b; unlock b; unlock a; unlock g;
                       join t;
                   }
                   fn w(h, x, y) { lock h; lock y; lock x; unlock x; unlock y; unlock h; }";
        assert_eq!(reports(src, BugKind::ConflictLock), 0);
    }
}

mod generated_lock_workloads {
    use super::*;
    use canary_workloads::{confirm_ground_truth, generate, WorkloadSpec};

    /// Lock corpora: the engine's lock findings are *exactly* the
    /// seeded set — every seeded double-lock / deadlock reported, no
    /// lock report beyond them.
    #[test]
    fn seeded_lock_bugs_are_the_exact_finding_set() {
        for seed in [11, 12, 13] {
            let w = generate(&WorkloadSpec::lean_locks(seed));
            let unconfirmed = confirm_ground_truth(&w);
            assert!(unconfirmed.is_empty(), "seed {seed}: {unconfirmed:?}");
            let outcome = Canary::new().analyze(&w.prog);
            let found: std::collections::BTreeSet<_> = outcome
                .reports
                .iter()
                .filter(|r| {
                    matches!(r.kind, BugKind::DoubleLock | BugKind::ConflictLock)
                })
                .map(|r| (r.kind, r.source, r.sink))
                .collect();
            let seeded: std::collections::BTreeSet<_> = w
                .truth
                .seeded
                .iter()
                .filter(|b| {
                    matches!(b.kind, BugKind::DoubleLock | BugKind::ConflictLock)
                })
                .map(|b| (b.kind, b.source, b.sink))
                .collect();
            assert_eq!(seeded.len(), 2, "seed {seed}: both lock kinds seeded");
            assert_eq!(found, seeded, "seed {seed}");
        }
    }

    /// Zero false positives on lock-free corpora: programs without a
    /// single lock statement never produce a lock-discipline report.
    #[test]
    fn lock_free_corpora_stay_clean() {
        for seed in [1, 2, 3] {
            let w = generate(&WorkloadSpec::lean(seed));
            let outcome = Canary::new().analyze(&w.prog);
            let lock_reports: Vec<_> = outcome
                .reports
                .iter()
                .filter(|r| {
                    matches!(r.kind, BugKind::DoubleLock | BugKind::ConflictLock)
                })
                .collect();
            assert!(lock_reports.is_empty(), "seed {seed}: {lock_reports:?}");
        }
    }

    /// The lock knobs compose with the full (filler) generator.
    #[test]
    fn seeded_lock_patterns_survive_filler() {
        let spec = WorkloadSpec {
            double_lock: 1,
            conflict_lock: 1,
            ..WorkloadSpec::small(29)
        };
        let w = generate(&spec);
        let unconfirmed = confirm_ground_truth(&w);
        assert!(unconfirmed.is_empty(), "{unconfirmed:?}");
        let outcome = Canary::new().analyze(&w.prog);
        let found: std::collections::HashSet<_> = outcome
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect();
        for bug in &w.truth.seeded {
            assert!(
                found.contains(&(bug.kind, bug.source, bug.sink)),
                "seeded {bug:?} not in reports {found:?}"
            );
        }
    }
}

mod generated_workloads {
    use super::*;
    use canary_workloads::{confirm_ground_truth, generate, WorkloadSpec};

    /// Lean workloads seed one bug per checker; the oracle confirms each
    /// schedule and the engine must report each (kind, source, sink).
    #[test]
    fn all_four_seeded_checkers_are_detected_and_confirmed() {
        for seed in [1, 2, 3] {
            let w = generate(&WorkloadSpec::lean(seed));
            let unconfirmed = confirm_ground_truth(&w);
            assert!(unconfirmed.is_empty(), "seed {seed}: {unconfirmed:?}");
            let outcome = Canary::new().analyze(&w.prog);
            let found: std::collections::HashSet<_> = outcome
                .reports
                .iter()
                .map(|r| (r.kind, r.source, r.sink))
                .collect();
            for bug in &w.truth.seeded {
                assert!(
                    found.contains(&(bug.kind, bug.source, bug.sink)),
                    "seed {seed}: seeded {bug:?} not in reports {found:?}"
                );
            }
            let kinds: std::collections::HashSet<_> =
                w.truth.seeded.iter().map(|b| b.kind).collect();
            assert_eq!(kinds.len(), 4, "lean spec must cover all checkers");
        }
    }

    /// The knobs also compose with the full (filler) generator: seeded
    /// double-free / null-deref / leak patterns survive inside a large
    /// program and stay oracle-confirmable.
    #[test]
    fn seeded_patterns_survive_filler() {
        let spec = WorkloadSpec {
            double_free: 1,
            null_deref: 1,
            leak: 1,
            ..WorkloadSpec::small(23)
        };
        let w = generate(&spec);
        let unconfirmed = confirm_ground_truth(&w);
        assert!(unconfirmed.is_empty(), "{unconfirmed:?}");
        let outcome = Canary::new().analyze(&w.prog);
        let found: std::collections::HashSet<_> = outcome
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect();
        for bug in &w.truth.seeded {
            assert!(
                found.contains(&(bug.kind, bug.source, bug.sink)),
                "seeded {bug:?} not in reports {found:?}"
            );
        }
    }
}

mod memory_model_sweep {
    use super::*;
    use canary_detect::MemoryModel;
    use canary_ir::Label;
    use canary_workloads::{generate, WorkloadSpec};
    use std::collections::BTreeSet;

    fn triples_under(
        prog: &canary_ir::Program,
        model: MemoryModel,
    ) -> BTreeSet<(BugKind, Label, Label)> {
        let canary = Canary::with_config(CanaryConfig {
            detect: DetectOptions {
                memory_model: model,
                ..DetectOptions::default()
            },
            ..CanaryConfig::default()
        });
        canary
            .analyze(prog)
            .reports
            .iter()
            .map(|r| (r.kind, r.source, r.sink))
            .collect()
    }

    /// Weakening the memory model only removes program-order
    /// constraints, so on the seeded corpora every SC finding — across
    /// all six checkers — persists under TSO, and every TSO finding
    /// persists under PSO.
    #[test]
    fn sc_findings_persist_under_weaker_models() {
        for spec in [
            WorkloadSpec::lean(1),
            WorkloadSpec::lean(2),
            WorkloadSpec::lean(3),
            WorkloadSpec::lean_locks(11),
            WorkloadSpec::lean_locks(12),
        ] {
            let w = generate(&spec);
            let sc = triples_under(&w.prog, MemoryModel::Sc);
            let tso = triples_under(&w.prog, MemoryModel::Tso);
            let pso = triples_under(&w.prog, MemoryModel::Pso);
            assert!(!sc.is_empty(), "{}: corpus seeds bugs", spec.name);
            assert!(
                sc.is_subset(&tso),
                "{}: TSO lost SC findings {:?}",
                spec.name,
                sc.difference(&tso)
            );
            assert!(
                tso.is_subset(&pso),
                "{}: PSO lost TSO findings {:?}",
                spec.name,
                tso.difference(&pso)
            );
        }
    }

    /// Lock-discipline checking reasons about acquisition order, not
    /// memory visibility: the DoubleLock / ConflictLock finding sets
    /// must be identical under all three models.
    #[test]
    fn lock_discipline_findings_are_model_insensitive() {
        for seed in [11, 12, 13] {
            let w = generate(&WorkloadSpec::lean_locks(seed));
            let lock_only = |model| -> BTreeSet<(BugKind, Label, Label)> {
                triples_under(&w.prog, model)
                    .into_iter()
                    .filter(|(k, _, _)| {
                        matches!(k, BugKind::DoubleLock | BugKind::ConflictLock)
                    })
                    .collect()
            };
            let sc = lock_only(MemoryModel::Sc);
            assert!(!sc.is_empty(), "seed {seed}: lock bugs seeded");
            assert_eq!(sc, lock_only(MemoryModel::Tso), "seed {seed}");
            assert_eq!(sc, lock_only(MemoryModel::Pso), "seed {seed}");
        }
    }
}

mod config_behaviour {
    use super::*;

    #[test]
    fn inter_thread_only_suppresses_sequential() {
        let canary = Canary::with_config(CanaryConfig {
            checkers: vec![BugKind::UseAfterFree],
            detect: DetectOptions {
                inter_thread_only: true,
                ..DetectOptions::default()
            },
            ..CanaryConfig::default()
        });
        let seq = canary
            .analyze_source("fn main() { p = alloc o; free p; use p; }")
            .unwrap();
        assert!(seq.reports.is_empty());
        let conc = canary
            .analyze_source(
                "fn main() { p = alloc o; fork t w(p); free p; }
                 fn w(q) { use q; }",
            )
            .unwrap();
        assert_eq!(conc.reports.len(), 1);
    }

    #[test]
    fn all_four_checkers_fire_on_one_program() {
        let src = "fn main() {
                       p = alloc o; q = p;
                       fork t w(p);
                       free p;
                       free q;
                       n = null; use n;
                       s = taint; sink s;
                   }
                   fn w(x) { use x; }";
        let outcome = Canary::new().analyze_source(src).unwrap();
        let kinds: std::collections::HashSet<_> =
            outcome.reports.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&BugKind::UseAfterFree), "{kinds:?}");
        assert!(kinds.contains(&BugKind::DoubleFree), "{kinds:?}");
        assert!(kinds.contains(&BugKind::NullDeref), "{kinds:?}");
        assert!(kinds.contains(&BugKind::DataLeak), "{kinds:?}");
    }

    #[test]
    fn all_six_checkers_fire_on_one_program() {
        let src = "fn main() {
                       p = alloc o; q = p;
                       fork t w(p);
                       free p;
                       free q;
                       n = null; use n;
                       s = taint; sink s;
                       m = alloc mu; lock m; lock m; unlock m;
                       a = alloc ma; b = alloc mb;
                       fork t2 v(a, b);
                       lock a; lock b; unlock b; unlock a;
                   }
                   fn w(x) { use x; }
                   fn v(x, y) { lock y; lock x; unlock x; unlock y; }";
        let outcome = Canary::new().analyze_source(src).unwrap();
        let kinds: std::collections::HashSet<_> =
            outcome.reports.iter().map(|r| r.kind).collect();
        for kind in [
            BugKind::UseAfterFree,
            BugKind::DoubleFree,
            BugKind::NullDeref,
            BugKind::DataLeak,
            BugKind::DoubleLock,
            BugKind::ConflictLock,
        ] {
            assert!(kinds.contains(&kind), "missing {kind}: {kinds:?}");
        }
    }
}
