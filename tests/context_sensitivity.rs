//! Clone-based context sensitivity (§5.1): the depth-k cloning
//! transform eliminates the false positives that context-insensitive
//! label merging produces, without losing true reports.

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;

/// A helper shared by two unrelated call sites: without cloning, the
/// helper's load node merges both contexts, so the freed value of one
/// site appears to flow to the other site's consumer.
const MERGED_HELPER: &str = r#"
    fn getv(c) {
        v = *c;
        return v;
    }
    fn main() {
        a = alloc ca;
        b = alloc cb;
        va = alloc oa;
        vb = alloc ob;
        *a = va;
        *b = vb;
        x = call getv(a);
        y = call getv(b);
        free va;
        fork t w(y);
    }
    fn w(q) {
        use q;
    }
"#;

fn analyze(src: &str, depth: usize) -> usize {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        context_depth: depth,
        ..CanaryConfig::default()
    });
    canary.analyze_source(src).expect("parses").reports.len()
}

#[test]
fn context_insensitive_merging_produces_the_fp() {
    assert_eq!(analyze(MERGED_HELPER, 0), 1, "the documented FP");
}

#[test]
fn cloning_eliminates_the_fp() {
    for depth in [1, 2, 6] {
        assert_eq!(analyze(MERGED_HELPER, depth), 0, "depth {depth}");
    }
}

#[test]
fn cloning_keeps_true_bugs() {
    // The same shape, but freeing the value that *does* reach the
    // consumer: every depth must report it.
    let src = MERGED_HELPER.replace("free va;", "free vb;");
    for depth in [0usize, 1, 6] {
        assert_eq!(analyze(&src, depth), 1, "depth {depth}");
    }
}

#[test]
fn cloning_keeps_fig2_refutation() {
    let fig2 = r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) { *y = b; free b; }
        }
    "#;
    for depth in [0usize, 6] {
        assert_eq!(analyze(fig2, depth), 0, "depth {depth}");
    }
}

#[test]
fn cloned_forks_from_shared_spawner_are_distinct_threads() {
    // spawner() forks a worker; called twice, the two workers must be
    // distinct threads so a join of one does not protect the other.
    let src = r#"
        fn spawner(c) {
            fork t reader(c);
        }
        fn reader(x) {
            y = *x;
            use y;
        }
        fn main() {
            a = alloc ca;
            va = alloc oa;
            *a = va;
            call spawner(a);
            b = alloc cb;
            vb = alloc ob;
            *b = vb;
            call spawner(b);
            free va;
        }
    "#;
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        context_depth: 6,
        ..CanaryConfig::default()
    });
    let outcome = canary.analyze_source(src).expect("parses");
    let analyzed = outcome.analyzed_program.as_ref().expect("cloned");
    assert_eq!(analyzed.threads.len(), 3, "main + two reader threads");
    // The racy free of va is still found (reader #1 dereferences it).
    assert_eq!(outcome.reports.len(), 1, "{:?}", outcome.reports);
}

#[test]
fn render_uses_the_cloned_program() {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        context_depth: 6,
        ..CanaryConfig::default()
    });
    let src = MERGED_HELPER.replace("free va;", "free vb;");
    let prog = canary::ir::parse(&src).unwrap();
    let outcome = canary.analyze(&prog);
    // Rendering must not panic even though report labels belong to the
    // cloned program, and should mention the clone by name.
    let text = outcome.render(&prog);
    assert!(text.contains("use-after-free"), "{text}");
}
