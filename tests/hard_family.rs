//! Hard-family generator knobs (`family_fanout`, `hard_family_ratio`):
//! hardened contradiction patterns stay infeasible — zero findings —
//! but their refutation lives in the wait/notify order theory, beyond
//! the construction-time prefilter, so they cost real CDCL(T) work and
//! drive the §5.2 cube escalation under a tight conflict budget.

use canary::{AnalysisOutcome, Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions};
use canary_smt::{SolverOptions, SolverStrategy};
use canary_workloads::{generate, WorkloadSpec};

fn spec(ratio: f64, fanout: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("hard-{ratio}-{fanout}"),
        seed: 0x4A8D,
        target_stmts: 0,
        threads: 0,
        shared_cells: 1,
        true_bugs: 0,
        benign_patterns: 0,
        contradiction_patterns: 4,
        handshake_patterns: 0,
        order_fp_patterns: 0,
        double_free: 0,
        null_deref: 0,
        leak: 0,
        double_lock: 0,
        conflict_lock: 0,
        sb_patterns: 0,
        mp_patterns: 0,
        lb_patterns: 0,
        family_fanout: fanout,
        hard_family_ratio: ratio,
        filler: false,
    }
}

fn analyze(ratio: f64, fanout: usize, solver: SolverOptions) -> AnalysisOutcome {
    let w = generate(&spec(ratio, fanout));
    Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            inter_thread_only: false,
            solver,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    })
    .analyze(&w.prog)
}

fn incremental() -> SolverOptions {
    SolverOptions {
        strategy: SolverStrategy::Incremental,
        ..SolverOptions::default()
    }
}

#[test]
fn hard_families_are_refuted_but_cost_real_solver_work() {
    let easy = analyze(0.0, 4, incremental());
    let hard = analyze(1.0, 4, incremental());
    assert_eq!(easy.reports.len(), 0, "legacy contradictions refuted");
    assert_eq!(hard.reports.len(), 0, "hard families stay infeasible");
    let work = |o: &AnalysisOutcome| {
        o.metrics.detect.decisions
            + o.metrics.detect.conflicts
            + o.metrics.detect.propagations
            + o.metrics.detect.theory_lemmas
    };
    assert!(
        work(&hard) > work(&easy),
        "hard families must out-work the prefilter-folded ones: {} vs {}",
        work(&hard),
        work(&easy),
    );
    assert!(
        hard.metrics.detect.conflicts > 0,
        "refuting notify disjuncts must produce CDCL conflicts"
    );
}

#[test]
fn hard_families_scale_work_with_fanout() {
    let narrow = analyze(1.0, 2, incremental());
    let wide = analyze(1.0, 8, incremental());
    assert_eq!(narrow.reports.len(), 0);
    assert_eq!(wide.reports.len(), 0);
    assert!(
        wide.metrics.detect.queries > narrow.metrics.detect.queries,
        "fan-out widens the query family: {} vs {}",
        wide.metrics.detect.queries,
        narrow.metrics.detect.queries,
    );
}

#[test]
fn cube_escalation_fires_on_hard_families_without_changing_findings() {
    let flat = analyze(1.0, 6, incremental());
    let cubed = analyze(
        1.0,
        6,
        SolverOptions {
            cube_split: 2,
            cube_budget: 1,
            ..incremental()
        },
    );
    assert_eq!(flat.reports.len(), cubed.reports.len());
    assert_eq!(flat.metrics.detect.cube_escalated, 0);
    assert!(
        cubed.metrics.detect.cube_escalated > 0,
        "a 1-conflict budget must escalate some hard member"
    );
}
