//! Extended end-to-end scenarios: multi-hop flows, nested threads,
//! loops, call chains and mixed synchronization — the shapes §7.3
//! attributes to the real bugs ("control-flow paths span several
//! functions and compilation units", "triggered only in rare thread
//! schedules").

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;

fn uaf(src: &str) -> usize {
    kind(src, BugKind::UseAfterFree)
}

fn kind(src: &str, k: BugKind) -> usize {
    Canary::with_config(CanaryConfig {
        checkers: vec![k],
        ..CanaryConfig::default()
    })
    .analyze_source(src)
    .expect("test program parses")
    .reports
    .len()
}

#[test]
fn value_laundered_through_three_functions() {
    // The freed pointer crosses three call frames before the racy use.
    let src = "
        fn wrap1(p) { q = p; return q; }
        fn wrap2(p) { q = call wrap1(p); return q; }
        fn main() {
            v = alloc o;
            w = call wrap2(v);
            fork t consumer(w);
            free v;
        }
        fn consumer(x) { use x; }";
    assert_eq!(uaf(src), 1);
}

#[test]
fn grandchild_thread_use_is_racy() {
    // main forks A, A forks B, B uses; main frees concurrently.
    let src = "
        fn main() {
            v = alloc o;
            fork a level1(v);
            free v;
        }
        fn level1(p) { fork b level2(p); }
        fn level2(q) { use q; }";
    assert_eq!(uaf(src), 1);
}

#[test]
fn grandchild_protected_by_transitive_joins() {
    let src = "
        fn main() {
            v = alloc o;
            fork a level1(v);
            join a;
            free v;
        }
        fn level1(p) { fork b level2(p); join b; }
        fn level2(q) { use q; }";
    assert_eq!(uaf(src), 0, "join chain orders the grandchild's use first");
}

#[test]
fn grandchild_unjoined_inner_thread_still_races() {
    // The outer join does not help if the inner thread is never joined.
    let src = "
        fn main() {
            v = alloc o;
            fork a level1(v);
            join a;
            free v;
        }
        fn level1(p) { fork b level2(p); }
        fn level2(q) { use q; }";
    assert_eq!(uaf(src), 1, "inner thread outlives the joined outer one");
}

#[test]
fn loop_carried_pointer_is_checked_in_each_unrolling() {
    let src = "
        fn main() {
            v = alloc o;
            fork t w(v);
            while (more) {
                free v;
            }
        }
        fn w(q) { use q; }";
    // One report (deduped by source/sink pairs over the unrolled frees —
    // each unrolled free is a distinct label, so up to two).
    let n = uaf(src);
    assert!((1..=2).contains(&n), "{n}");
}

#[test]
fn double_free_between_two_children() {
    let src = "
        fn main() {
            v = alloc o;
            fork a f1(v);
            fork b f2(v);
        }
        fn f1(p) { free p; }
        fn f2(q) { free q; }";
    assert_eq!(kind(src, BugKind::DoubleFree), 1);
}

#[test]
fn double_free_serialized_by_flag_handshake_still_double() {
    // Even perfectly ordered, two frees of one object are a double-free.
    let src = "
        fn main() {
            v = alloc o;
            fork a f1(v);
            join a;
            free v;
        }
        fn f1(p) { free p; }";
    assert_eq!(kind(src, BugKind::DoubleFree), 1);
}

#[test]
fn taint_laundered_through_two_cells_and_a_thread() {
    let src = "
        fn main() {
            c1 = alloc cell1;
            c2 = alloc cell2;
            s = taint;
            *c1 = s;
            fork t mover(c1, c2);
            join t;
            out = *c2;
            sink out;
        }
        fn mover(a, b) { x = *a; *b = x; }";
    assert_eq!(kind(src, BugKind::DataLeak), 1);
}

#[test]
fn sanitizing_overwrite_between_cells_blocks_the_leak() {
    let src = "
        fn main() {
            c1 = alloc cell1;
            c2 = alloc cell2;
            s = taint;
            *c1 = s;
            fork t mover(c1, c2);
            join t;
            clean = alloc pub_obj;
            *c2 = clean;
            out = *c2;
            sink out;
        }
        fn mover(a, b) { x = *a; *b = x; }";
    assert_eq!(kind(src, BugKind::DataLeak), 0, "strong update sanitizes c2");
}

#[test]
fn null_published_by_one_of_three_writers() {
    let src = "
        fn main() {
            q = alloc slot;
            m = alloc msg;
            *q = m;
            fork w1 writer_ok(q);
            fork w2 writer_ok2(q);
            fork w3 writer_null(q);
            x = *q;
            use x;
        }
        fn writer_ok(s) { v = alloc good1; *s = v; }
        fn writer_ok2(s) { v = alloc good2; *s = v; }
        fn writer_null(s) { n = null; *s = n; }";
    assert_eq!(kind(src, BugKind::NullDeref), 1);
}

#[test]
fn producer_consumer_ring_with_locks_reports_only_the_real_race() {
    // The enqueue/dequeue sections are lock-protected (mutual exclusion
    // does not refute a free/use race by itself), but the shutdown free
    // is join-protected and must stay silent.
    let src = "
        fn main() {
            mu = alloc lock_obj;
            ring = alloc ring_cell;
            item = alloc item_obj;
            *ring = item;
            fork c consumer(ring, mu);
            lock mu;
            stale = *ring;
            unlock mu;
            free stale;
            join c;
            done = alloc done_obj;
            free done;
        }
        fn consumer(r, m) {
            lock m;
            x = *r;
            unlock m;
            use x;
        }";
    assert_eq!(uaf(src), 1, "the mid-run free races; the shutdown free is private");
}

#[test]
fn reader_behind_function_pointer_is_found() {
    let src = "
        fn main() {
            v = alloc o;
            handler = fnptr reader;
            fork t handler(v);
            free v;
        }
        fn reader(q) { use q; }";
    assert_eq!(uaf(src), 1, "fork through a fnptr resolves via Steensgaard");
}

#[test]
fn two_candidate_handlers_both_checked() {
    let src = "
        fn main() {
            v = alloc o;
            slot = alloc fp_cell;
            h1 = fnptr safe_handler;
            h2 = fnptr racy_handler;
            if (mode) { *slot = h1; } else { *slot = h2; }
            h = *slot;
            fork t h(v);
            free v;
        }
        fn safe_handler(q) { q2 = q; }
        fn racy_handler(q) { use q; }";
    assert_eq!(uaf(src), 1, "only the dereferencing handler yields a report");
}
