//! The three-way precision split of Tbl. 1, pattern by pattern: each
//! seeded pattern class is dismissed by exactly the tools whose extra
//! machinery the paper credits.
//!
//! | pattern | Saber | Fsam | Canary |
//! |---|---|---|---|
//! | same-thread use-before-free | reports | filters (flow order) | filters |
//! | Fig. 2 guard contradiction | reports | reports | filters (SMT) |
//! | wait/notify handshake | reports | reports | filters (§9 sync) |
//! | benign uncorrelated guards | reports | reports | reports (shared FP) |
//! | true racy UAF | reports | reports | reports (TP) |

use std::time::Duration;

use canary::{Canary, CanaryConfig};
use canary_baselines::{fsam, saber, Deadline};
use canary_detect::{BugKind, DetectOptions};
use canary_workloads::{generate, Workload, WorkloadSpec};

fn workload(bugs: usize, benign: usize, contra: usize, hs: usize, order_fp: usize) -> Workload {
    generate(&WorkloadSpec {
        name: "diff".into(),
        seed: 0xD1FF,
        target_stmts: 260,
        threads: 2,
        shared_cells: 2,
        true_bugs: bugs,
        benign_patterns: benign,
        contradiction_patterns: contra,
        handshake_patterns: hs,
        order_fp_patterns: order_fp,
        double_free: 0,
        null_deref: 0,
        leak: 0,
        double_lock: 0,
        conflict_lock: 0,
        sb_patterns: 0,
        mp_patterns: 0,
        lb_patterns: 0,
        family_fanout: 0,
        hard_family_ratio: 0.0,
        filler: true,
    })
}

fn canary_count(w: &Workload) -> usize {
    Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            inter_thread_only: false,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    })
    .analyze(&w.prog)
    .reports
    .len()
}

fn saber_count(w: &Workload) -> usize {
    saber::check_uaf(&w.prog, Deadline::after(Duration::from_secs(60)))
        .expect_done("small subject")
        .len()
}

fn fsam_count(w: &Workload) -> usize {
    fsam::check_uaf(&w.prog, Deadline::after(Duration::from_secs(60)))
        .expect_done("small subject")
        .len()
}

#[test]
fn order_fp_patterns_split_saber_from_fsam() {
    // Only same-thread use-before-free noise: Saber reports every
    // pattern, Fsam's flow-sensitive def-use filters them all.
    let w = workload(0, 0, 0, 0, 3);
    assert_eq!(canary_count(&w), 0, "canary refutes by order");
    assert_eq!(fsam_count(&w), 0, "fsam filters by flow order");
    assert!(saber_count(&w) >= 3, "saber reports each pattern");
}

#[test]
fn contradiction_patterns_split_canary_from_both() {
    let w = workload(0, 0, 3, 0, 0);
    assert_eq!(canary_count(&w), 0);
    assert!(saber_count(&w) >= 1);
    assert!(fsam_count(&w) >= 1);
}

#[test]
fn handshake_patterns_split_canary_from_both() {
    let w = workload(0, 0, 0, 2, 0);
    assert_eq!(canary_count(&w), 0);
    assert!(saber_count(&w) >= 2);
    assert!(fsam_count(&w) >= 2);
}

#[test]
fn true_bugs_found_by_everyone() {
    let w = workload(2, 0, 0, 0, 0);
    assert_eq!(canary_count(&w), 2);
    assert!(saber_count(&w) >= 2);
    assert!(fsam_count(&w) >= 2);
}

#[test]
fn report_volume_ordering_on_a_mixed_subject() {
    // The Tbl. 1 ordering: Canary ≤ Fsam ≤ Saber.
    let w = workload(1, 1, 2, 1, 4);
    let c = canary_count(&w);
    let f = fsam_count(&w);
    let s = saber_count(&w);
    assert!(c <= f, "canary {c} <= fsam {f}");
    assert!(f <= s, "fsam {f} <= saber {s}");
    assert!(s > c, "the gap exists: saber {s} vs canary {c}");
}
