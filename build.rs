//! Captures the compiler version at build time so run manifests can
//! trace any diffed run back to the build that produced it.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=CANARY_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
