//! # canary-interference
//!
//! Algorithm 2 of the Canary paper: the interference-dependence
//! analysis. Starting from the intra-thread VFG of Alg. 1, it
//!
//! 1. runs an **escape analysis** (Alg. 2 lines 12–23): the escaped
//!    objects `EspObj` seed from objects passed to fork calls, grow
//!    through stores into already-escaped cells, and each escaped
//!    object's *pointed-to-by* set `Pted(o)` is the set of VFG nodes
//!    reachable from `o` together with the aggregated edge guards;
//! 2. adds an **interference edge** for every store/load pair in
//!    distinct threads whose address pointers meet in a common escaped
//!    object (Defn. 1, Property 1), guarded by
//!    `Φ_guard = Φ_alias ∧ Φ_ls` (Eq. 1): the alias conditions
//!    `φ1 ∧ φ2 ∧ α ∧ β` and the load-store order constraints of Eq. 2;
//! 3. iterates: new edges enlarge reachability, which may escape more
//!    objects and reveal more edges — the cyclic dependence the paper
//!    resolves by fixpoint — until no edge is added;
//! 4. also refreshes same-thread data dependence over escaped objects
//!    (Alg. 2 line 9).
//!
//! May-happen-in-parallel pruning (§6) is switchable for the ablation
//! benches; with it off, impossible pairs still die at SMT time via the
//! order constraints, exactly as the paper describes.
//!
//! # Parallel execution
//!
//! The two heavy parts of an edge round shard across workers — the
//! `Pted(o)` reachability sweeps (one task per escaped object) and the
//! store/load candidate checks (one task per load). Workers build
//! guards in per-task [`canary_smt::ScratchPool`]s against the frozen
//! round-start pool and emit pending edges; the coordinator commits
//! both in a fixed order (escape order for `Pted`, load order for
//! edges), so the VFG, the term pool, and every report are
//! byte-identical for any [`InterferenceOptions::threads`] value.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashMap, HashSet};

use canary_dataflow::{exec, DataflowResult, LoadSite, LockModel, StoreSite};
use canary_ir::{Inst, Label, MhpAnalysis, ObjId, Program, ThreadStructure, VarId};
use canary_smt::{ScratchPool, TermBuild, TermId, TermPool};
use canary_trace::{Tracer, LANE_ALG2};
use canary_vfg::{EdgeKind, NodeId, NodeKind, Vfg};

/// Options for the interference analysis.
#[derive(Clone, Debug)]
pub struct InterferenceOptions {
    /// Prune store/load pairs that can never run in parallel (§6).
    /// Disabling this is sound — the order constraints refute the same
    /// pairs at solve time — but slower; the ablation bench measures it.
    pub use_mhp: bool,
    /// Cap on fixpoint rounds (a safety valve; the analysis is
    /// monotone and converges long before this).
    pub max_rounds: usize,
    /// Worker threads for the sharded phases of each edge round.
    /// Output is identical for every value; `1` runs inline.
    pub threads: usize,
    /// Lock-based sharpening: discharge store/load pairs whose
    /// critical sections guard a common mutex class when a definite
    /// later store in the store's own section overwrites the value
    /// before the section ends (thread-modular mutual exclusion à la
    /// Kusano & Wang). Sound: the two sections serialize, so the load
    /// can never observe the overwritten value.
    pub lock_sharpen: bool,
}

impl Default for InterferenceOptions {
    fn default() -> Self {
        InterferenceOptions {
            use_mhp: true,
            max_rounds: 16,
            threads: 1,
            lock_sharpen: true,
        }
    }
}

/// Facts produced by the analysis (the edges themselves are added to
/// the [`Vfg`] inside the [`DataflowResult`]).
#[derive(Debug)]
pub struct InterferenceResult {
    /// The escaped objects, in discovery order.
    pub escaped: Vec<ObjId>,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Number of interference edges added.
    pub interference_edges: usize,
    /// Number of same-thread data-dependence edges added by the line-9
    /// refresh.
    pub refreshed_data_edges: usize,
    /// Store/load pairs pruned by the MHP analysis.
    pub mhp_pruned: usize,
    /// Store/load pairs additionally discharged by lock-based
    /// mutual-exclusion sharpening.
    pub mhp_lock_pruned: usize,
    /// Sharded work items executed across all rounds (`Pted` sweeps
    /// plus per-load candidate scans) — the unit the per-phase metrics
    /// report.
    pub tasks: usize,
    /// One record per store/load pair the analysis discharged without
    /// ever adding an edge, with the facts consulted — the audit
    /// layer's interference certificates. Deduped across rounds and
    /// objects (first reason wins), pairs that later gained an edge
    /// removed, sorted by `(store, load)` — deterministic for any
    /// worker count. The `mhp_pruned` / `mhp_lock_pruned` counters
    /// keep their per-object-per-round multiplicity semantics.
    pub pruned_pairs: Vec<PrunedPair>,
}

/// A store/load pair discharged by Alg. 2 before any VFG edge (and so
/// before any candidate path) could exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrunedPair {
    /// The store whose value could have flowed.
    pub store: Label,
    /// The load that could have observed it.
    pub load: Label,
    /// The escaped object the pair would have flowed through.
    pub object: ObjId,
    /// The facts that discharged the pair.
    pub reason: PruneReason,
}

/// Why an interference pair was discharged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneReason {
    /// The MHP facts consulted (§6): the pair neither may run in
    /// parallel nor is the store ordered before the load.
    Mhp {
        /// `may_happen_in_parallel(store, load)`.
        parallel: bool,
        /// `happens_before(store, load)`.
        ordered_before: bool,
    },
    /// Lock-based mutual-exclusion sharpening: both accesses sit in
    /// critical sections of the same mutex class and a definite later
    /// store overwrites the value before the store's section ends.
    LockSharpen {
        /// The shared mutex class.
        class: usize,
        /// The overwriting store inside the region.
        killing_store: Label,
    },
    /// Program order alone: the load is ordered before the store.
    StoreAfterLoad,
}

/// Runs Algorithm 2, extending `df.vfg` in place.
pub fn run(
    prog: &Program,
    ts: &ThreadStructure,
    mhp: &MhpAnalysis<'_>,
    df: &mut DataflowResult,
    pool: &mut TermPool,
    opts: &InterferenceOptions,
) -> InterferenceResult {
    run_traced(prog, ts, mhp, df, pool, opts, &Tracer::disabled())
}

/// [`run`] plus observability: one span per escape pass and per edge
/// round on the Alg. 2 lane, keyed by round number, recording frontier
/// size and edges added.
#[allow(clippy::too_many_arguments)]
pub fn run_traced(
    prog: &Program,
    ts: &ThreadStructure,
    mhp: &MhpAnalysis<'_>,
    df: &mut DataflowResult,
    pool: &mut TermPool,
    opts: &InterferenceOptions,
    tracer: &Tracer,
) -> InterferenceResult {
    let mut a = InterferenceAnalysis {
        prog,
        ts,
        mhp,
        pool,
        opts,
        escaped: Vec::new(),
        escaped_set: HashSet::new(),
        interference_edges: 0,
        refreshed_data_edges: 0,
        mhp_pruned: 0,
        mhp_lock_pruned: 0,
        tasks: 0,
        pruned_pairs: HashMap::new(),
        edged: HashSet::new(),
    };
    let rounds = a.fixpoint(df, tracer);
    let mut pruned_pairs: Vec<PrunedPair> = a.pruned_pairs.into_values().collect();
    pruned_pairs.sort_by_key(|p| (p.store, p.load));
    InterferenceResult {
        escaped: a.escaped,
        rounds,
        interference_edges: a.interference_edges,
        refreshed_data_edges: a.refreshed_data_edges,
        mhp_pruned: a.mhp_pruned,
        mhp_lock_pruned: a.mhp_lock_pruned,
        tasks: a.tasks,
        pruned_pairs,
    }
}

struct InterferenceAnalysis<'p> {
    prog: &'p Program,
    ts: &'p ThreadStructure,
    mhp: &'p MhpAnalysis<'p>,
    pool: &'p mut TermPool,
    opts: &'p InterferenceOptions,
    escaped: Vec<ObjId>,
    escaped_set: HashSet<ObjId>,
    interference_edges: usize,
    refreshed_data_edges: usize,
    mhp_pruned: usize,
    mhp_lock_pruned: usize,
    tasks: usize,
    /// First prune record per `(store, load)` pair, across rounds and
    /// objects; a pair that later gains an edge is evicted.
    pruned_pairs: HashMap<(Label, Label), PrunedPair>,
    /// Pairs that produced a VFG edge (any kind): never audit-pruned.
    edged: HashSet<(Label, Label)>,
}

/// An edge decision made by a sharded pair check, in scratch-relative
/// term ids, to be materialized at commit time.
struct PendingEdge {
    kind: EdgeKind,
    src_var: VarId,
    src_label: Label,
    dst_var: VarId,
    dst_label: Label,
    guard: TermId,
    /// The escaped object whose `Pted` set produced the pair (Defn. 1);
    /// recorded on the VFG edge for report provenance.
    license: ObjId,
}

impl InterferenceAnalysis<'_> {
    fn fixpoint(&mut self, df: &mut DataflowResult, tracer: &Tracer) -> usize {
        let mut rounds = 0;
        let t_start = std::time::Instant::now();
        loop {
            rounds += 1;
            let mut changed = false;
            {
                let escaped_before = self.escaped.len() as u64;
                let mut span = tracer.span(LANE_ALG2, "alg2", rounds as u64, || {
                    format!("alg2.escape:{rounds}")
                });
                changed |= self.escape_round(df);
                span.record("escaped", self.escaped.len() as u64);
                span.record("new_escaped", self.escaped.len() as u64 - escaped_before);
            }
            {
                let edges_before = self.interference_edges as u64;
                let data_before = self.refreshed_data_edges as u64;
                let pruned_before = self.mhp_pruned as u64;
                let lock_before = self.mhp_lock_pruned as u64;
                let tasks_before = self.tasks as u64;
                let mut span = tracer.span(LANE_ALG2, "alg2", rounds as u64, || {
                    format!("alg2.edges:{rounds}")
                });
                changed |= self.edge_round(df);
                span.record("frontier", self.escaped.len() as u64);
                span.record(
                    "interference_edges_added",
                    self.interference_edges as u64 - edges_before,
                );
                span.record(
                    "data_edges_added",
                    self.refreshed_data_edges as u64 - data_before,
                );
                span.record("mhp_pruned", self.mhp_pruned as u64 - pruned_before);
                span.record("mhp_lock_pruned", self.mhp_lock_pruned as u64 - lock_before);
                span.record("tasks", self.tasks as u64 - tasks_before);
            }
            canary_trace::log(canary_trace::LogLevel::Debug, || {
                format!(
                    "alg2: round {rounds}, {} escaped, {} interference edge(s)",
                    self.escaped.len(),
                    self.interference_edges
                )
            });
            let done = !changed || rounds >= self.opts.max_rounds;
            canary_trace::log(canary_trace::LogLevel::Summary, || {
                // No round-count ETA: fixpoint depth is unknowable up
                // front, so report convergence state instead.
                let state = if !changed {
                    " (converged)"
                } else if done {
                    " (round budget reached)"
                } else {
                    ""
                };
                format!(
                    "alg2: round {rounds}/{}{state} — {} escaped, {} interference \
                     edge(s), {} task(s) in {:?}",
                    self.opts.max_rounds,
                    self.escaped.len(),
                    self.interference_edges,
                    self.tasks,
                    t_start.elapsed()
                )
            });
            if done {
                return rounds;
            }
        }
    }

    /// One escape-analysis pass (Alg. 2 lines 12–23): seed with objects
    /// passed to forks, then escalate through stores into escaped cells.
    ///
    /// Reverse reachability is memoized per node for the duration of
    /// the pass (the graph does not change inside a pass, only between
    /// fixpoint rounds), keeping the pass linear in practice.
    fn escape_round(&mut self, df: &DataflowResult) -> bool {
        let mut changed = false;
        let mut reach_cache: HashMap<NodeId, std::rc::Rc<Vec<ObjId>>> = HashMap::new();
        let mut objs_of = |vfg: &Vfg, n: NodeId| -> std::rc::Rc<Vec<ObjId>> {
            reach_cache
                .entry(n)
                .or_insert_with(|| std::rc::Rc::new(vfg.objects_reaching(n)))
                .clone()
        };
        // Seeds: objects whose value reaches a fork argument.
        for l in self.prog.labels() {
            if let Inst::Fork { args, .. } = self.prog.inst(l) {
                for &a in args {
                    let Some(n) = find_def_node(df, a) else {
                        continue;
                    };
                    for &o in objs_of(&df.vfg, n).iter() {
                        changed |= self.mark_escaped(o);
                    }
                }
            }
        }
        // Escalation: `*x = q` with x pointing to an escaped object
        // escapes everything q points to.
        loop {
            let mut grew = false;
            for s in &df.stores {
                let Some(xa) = find_def_node(df, s.addr) else {
                    continue;
                };
                let addr_objs = objs_of(&df.vfg, xa);
                if !addr_objs.iter().any(|o| self.escaped_set.contains(o)) {
                    continue;
                }
                let Some(qn) = find_def_node(df, s.src) else {
                    continue;
                };
                for &o2 in objs_of(&df.vfg, qn).iter() {
                    grew |= self.mark_escaped(o2);
                }
            }
            if !grew {
                break;
            }
            changed = true;
        }
        changed
    }

    fn mark_escaped(&mut self, o: ObjId) -> bool {
        if self.escaped_set.insert(o) {
            self.escaped.push(o);
            true
        } else {
            false
        }
    }

    /// One interference-edge discovery pass (Alg. 2 lines 2–10).
    ///
    /// Sharded in two waves: the `Pted(o)` sweeps (one task per escaped
    /// object) and the candidate pair checks (one task per load). Both
    /// run against the frozen round-start pool/VFG and commit in a
    /// fixed order, so the round is deterministic for any worker count.
    fn edge_round(&mut self, df: &mut DataflowResult) -> bool {
        let threads = self.opts.threads;
        // Pted(o) for every escaped object: nodes reachable from o with
        // aggregated guards (Alg. 2 lines 19–23). Kept in escape order —
        // the iteration order downstream decides term creation order.
        let obj_nodes: Vec<(ObjId, Option<NodeId>)> = self
            .escaped
            .iter()
            .map(|&o| (o, find_obj_node(&df.vfg, o)))
            .collect();
        self.tasks += obj_nodes.len();
        let pted: Vec<(ObjId, HashMap<NodeId, TermId>)> = {
            let frozen: &TermPool = self.pool;
            let vfg = &df.vfg;
            let outs = exec::run_indexed(obj_nodes.len(), threads, |i| {
                let (_, on) = obj_nodes[i];
                let on = on?;
                let mut sp = ScratchPool::new(frozen);
                let tt = sp.tt();
                let reach = vfg.reachable_with_guards(&mut sp, on, tt);
                Some((reach, sp.into_log()))
            });
            let mut pted = Vec::new();
            for (i, out) in outs.into_iter().enumerate() {
                let Some((reach, log)) = out else { continue };
                let remap = log.commit(self.pool);
                pted.push((
                    obj_nodes[i].0,
                    reach
                        .into_iter()
                        .map(|(n, g)| (n, remap.remap(g)))
                        .collect(),
                ));
            }
            pted
        };

        // For Φ_ls we need, per (load, object), the competing stores
        // S(l): every store whose address may point to the object.
        let mut stores_on_obj: HashMap<ObjId, Vec<usize>> = HashMap::new();
        for (si, s) in df.stores.iter().enumerate() {
            let Some(xa) = find_def_node(df, s.addr) else {
                continue;
            };
            for (o, nodes) in &pted {
                if nodes.contains_key(&xa) {
                    stores_on_obj.entry(*o).or_default().push(si);
                }
            }
        }

        // Critical sections for the lock-sharpening prune, rebuilt per
        // round so mutex aliasing reflects the current VFG.
        let lockm = self
            .opts
            .lock_sharpen
            .then(|| LockModel::build(self.prog, self.mhp.order_graph(), df));

        // Candidate pair checks, one task per load. Tasks see frozen
        // state and only *propose* edges; the commit below materializes
        // them in load order, which reproduces the serial pool exactly.
        self.tasks += df.loads.len();
        let outs = {
            let frozen: &TermPool = self.pool;
            let prog = self.prog;
            let ts = self.ts;
            let mhp = self.mhp;
            let use_mhp = self.opts.use_mhp;
            let dff: &DataflowResult = df;
            let pted = &pted;
            let stores_on_obj = &stores_on_obj;
            let locks = lockm.as_ref();
            exec::run_indexed(dff.loads.len(), threads, |li| {
                check_load(
                    prog,
                    ts,
                    mhp,
                    use_mhp,
                    dff,
                    frozen,
                    pted,
                    stores_on_obj,
                    locks,
                    &dff.loads[li],
                )
            })
        };

        let mut changed = false;
        for check in outs {
            self.mhp_pruned += check.pruned;
            self.mhp_lock_pruned += check.lock_pruned;
            for rec in check.records {
                let key = (rec.store, rec.load);
                if !self.edged.contains(&key) {
                    self.pruned_pairs.entry(key).or_insert(rec);
                }
            }
            let Some(log) = check.log else { continue };
            let remap = log.commit(self.pool);
            for e in check.edges {
                let guard = remap.remap(e.guard);
                let sn = df.vfg.def_node(e.src_var, e.src_label);
                let ln = df.vfg.def_node(e.dst_var, e.dst_label);
                // The pair flows (even if the edge already existed):
                // any prune record for it — e.g. via another object —
                // is superseded.
                let key = (e.src_label, e.dst_label);
                self.edged.insert(key);
                self.pruned_pairs.remove(&key);
                if df.vfg.add_edge_licensed(sn, ln, e.kind, guard, e.license) {
                    match e.kind {
                        EdgeKind::Interference => self.interference_edges += 1,
                        _ => self.refreshed_data_edges += 1,
                    }
                    changed = true;
                }
            }
        }
        changed
    }
}

/// One sharded load check's proposals: pending edges, the scratch log
/// to commit, the prune counters (per-object multiplicity) and the
/// audit prune records.
struct LoadCheck {
    edges: Vec<PendingEdge>,
    log: Option<canary_smt::ScratchLog>,
    pruned: usize,
    lock_pruned: usize,
    records: Vec<PrunedPair>,
}

/// Checks every candidate store against one load (the body of Alg. 2
/// lines 2–10 for a single `l`), building guards in a scratch pool.
#[allow(clippy::too_many_arguments)]
fn check_load(
    prog: &Program,
    ts: &ThreadStructure,
    mhp: &MhpAnalysis<'_>,
    use_mhp: bool,
    df: &DataflowResult,
    frozen: &TermPool,
    pted: &[(ObjId, HashMap<NodeId, TermId>)],
    stores_on_obj: &HashMap<ObjId, Vec<usize>>,
    locks: Option<&LockModel>,
    load: &LoadSite,
) -> LoadCheck {
    let mut pruned = 0usize;
    let mut lock_pruned = 0usize;
    let mut records = Vec::new();
    let Some(ya) = find_def_node(df, load.addr) else {
        return LoadCheck {
            edges: Vec::new(),
            log: None,
            pruned: 0,
            lock_pruned: 0,
            records,
        };
    };
    let mut sp = ScratchPool::new(frozen);
    let tt = sp.tt();
    let mut edges = Vec::new();
    let stores = &df.stores;
    for (o, nodes) in pted {
        let Some(&beta) = nodes.get(&ya) else {
            continue;
        };
        let Some(candidates) = stores_on_obj.get(o) else {
            continue;
        };
        for &si in candidates {
            let s = &stores[si];
            if s.label == load.label {
                continue;
            }
            let distinct = ts.may_be_in_distinct_threads(prog, s.label, load.label);
            // Quick order refutation: a store that happens strictly
            // after the load can never feed it. For a cross-function
            // pair the order is fork/join-induced, i.e. an MHP fact
            // (Defn. 1): the accesses never run in parallel and the
            // store is not ordered before the load. For a same-function
            // pair (a body live in several threads) it is plain program
            // order. (Within `distinct`, these two cases exhaust the
            // impossible-interference orders: `!parallel` with the
            // store unordered before the load *is* `load -> store`.)
            // Under `--no-mhp` the cross-function case keeps its edge —
            // the SMT order constraints refute the same pairs, which
            // `prop_pipeline::mhp_toggle_never_changes_reports` checks.
            if mhp.order_graph().happens_before(load.label, s.label) {
                let same_func = prog.func_of(s.label) == prog.func_of(load.label);
                if same_func || use_mhp {
                    if distinct {
                        let reason = if same_func {
                            PruneReason::StoreAfterLoad
                        } else {
                            pruned += 1;
                            PruneReason::Mhp {
                                parallel: false,
                                ordered_before: false,
                            }
                        };
                        records.push(PrunedPair {
                            store: s.label,
                            load: load.label,
                            object: *o,
                            reason,
                        });
                    }
                    continue;
                }
            }
            let xa = find_def_node(df, s.addr).expect("store candidates have address nodes");
            let alpha = nodes[&xa];
            if distinct {
                if let Some(lm) = locks {
                    if let Some((class, killing_store)) =
                        lock_excluded(df, mhp, lm, tt, s, load, candidates, stores)
                    {
                        lock_pruned += 1;
                        records.push(PrunedPair {
                            store: s.label,
                            load: load.label,
                            object: *o,
                            reason: PruneReason::LockSharpen {
                                class,
                                killing_store,
                            },
                        });
                        continue;
                    }
                }
                let guard = edge_guard(&mut sp, mhp, s, load, alpha, beta, candidates, stores);
                edges.push(PendingEdge {
                    kind: EdgeKind::Interference,
                    src_var: s.src,
                    src_label: s.label,
                    dst_var: load.dst,
                    dst_label: load.label,
                    guard,
                    license: *o,
                });
            } else if mhp.order_graph().happens_before(s.label, load.label) {
                // Alg. 2 line 9: refresh same-thread data dependence
                // over escaped objects (covers flows the bottom-up
                // summaries cannot see).
                let guard = edge_guard(&mut sp, mhp, s, load, alpha, beta, candidates, stores);
                edges.push(PendingEdge {
                    kind: EdgeKind::DataDep,
                    src_var: s.src,
                    src_label: s.label,
                    dst_var: load.dst,
                    dst_label: load.label,
                    guard,
                    license: *o,
                });
            }
        }
    }
    LoadCheck {
        edges,
        log: Some(sp.into_log()),
        pruned,
        lock_pruned,
        records,
    }
}

/// Lock-based mutual-exclusion sharpening for one store/load pair:
/// prunable when both statements sit in critical sections guarding a
/// common mutex class and a *definite* later store in the store's own
/// section overwrites the value before the section ends. The sections
/// serialize, so either the store's section completes first — and the
/// load observes the overwrite, not `s` — or it runs entirely after
/// the load, and `O_s < O_l` fails. Naive common-lock pruning without
/// the killing store is unsound (the value survives the unlock).
///
/// Strictness guards against may-reach region containment: the
/// region's `lock` must be unconditional or share the statement's own
/// path condition, and the killing store must write through the same
/// address variable (syntactic must-alias) under the store's guard or
/// unconditionally.
///
/// Returns the certificate on success: the shared mutex class and the
/// killing store.
#[allow(clippy::too_many_arguments)]
fn lock_excluded(
    df: &DataflowResult,
    mhp: &MhpAnalysis<'_>,
    lm: &LockModel,
    tt: TermId,
    s: &StoreSite,
    l: &LoadSite,
    candidates: &[usize],
    stores: &[StoreSite],
) -> Option<(usize, Label)> {
    if lm.regions.is_empty() {
        return None;
    }
    let og = mhp.order_graph();
    let strict = |lock: Label, stmt: Label| {
        let g = df.path_conds.guard(lock);
        g == tt || g == df.path_conds.guard(stmt)
    };
    let load_classes: Vec<usize> = lm
        .regions_containing(og, l.label)
        .into_iter()
        .filter(|&ri| strict(lm.regions[ri].lock, l.label))
        .map(|ri| lm.regions[ri].class)
        .collect();
    if load_classes.is_empty() {
        return None;
    }
    lm.regions_containing(og, s.label).into_iter().find_map(|ri| {
        let r = &lm.regions[ri];
        if !load_classes.contains(&r.class) || !strict(r.lock, s.label) {
            return None;
        }
        // A definite overwrite between the store and its unlock.
        candidates
            .iter()
            .map(|&si| &stores[si])
            .find(|s2| {
                s2.label != s.label
                    && s2.addr == s.addr
                    && og.happens_before(s.label, s2.label)
                    && lm.in_region(og, r, s2.label)
                    && (s2.guard == s.guard || s2.guard == tt)
            })
            .map(|s2| (r.class, s2.label))
    })
}

/// `Φ_guard = Φ_alias ∧ Φ_ls` (Eq. 1–2).
#[allow(clippy::too_many_arguments)]
fn edge_guard<B: TermBuild>(
    pool: &mut B,
    mhp: &MhpAnalysis<'_>,
    s: &StoreSite,
    l: &LoadSite,
    alpha: TermId,
    beta: TermId,
    candidates: &[usize],
    stores: &[StoreSite],
) -> TermId {
    // Φ_alias = φ1 ∧ φ2 ∧ α ∧ β
    let alias = pool.and([s.guard, l.guard, alpha, beta]);
    // Φ_ls: the store precedes the load...
    let mut parts = vec![order_atom(pool, s.label, l.label)];
    // ...and no competing store lands in between (Eq. 2). As §4.2.2
    // notes, "it is unnecessary to encode some order constraints
    // between statements in the same thread, because we can quickly
    // determine their order by traversing the control flow graph":
    // a competing store the program order already places before the
    // store or after the load satisfies its disjunct trivially and
    // is skipped exactly.
    let og = mhp.order_graph();
    let mut kept = 0usize;
    for &si in candidates {
        let other = &stores[si];
        if other.label == s.label {
            continue;
        }
        if og.happens_before(other.label, s.label) || og.happens_before(l.label, other.label) {
            continue; // disjunct holds in every execution
        }
        // Cap the genuinely concurrent competitors: dropping a
        // conjunct weakens the guard (more SAT ⇒ soundly more
        // reports), never hides a bug.
        kept += 1;
        if kept > MAX_COMPETING_STORES {
            continue;
        }
        let before = order_atom(pool, other.label, s.label);
        let after = order_atom(pool, l.label, other.label);
        // A competing store only overwrites under its own guard; a
        // store off-path (guard false) does not constrain the flow.
        let ng = pool.not(other.guard);
        let dodge = pool.or([before, after, ng]);
        parts.push(dodge);
    }
    let ls = pool.and(parts);
    pool.and2(alias, ls)
}

/// The def node of `v` at its anchor, if the dataflow pass created it.
fn find_def_node(df: &DataflowResult, v: VarId) -> Option<NodeId> {
    let l = df.def_site[v.index()]?;
    df.vfg.find(NodeKind::Def { var: v, label: l })
}

/// Bound on per-edge no-overwrite conjuncts (Eq. 2). Beyond this many
/// genuinely concurrent competing stores the guard is truncated — a
/// sound weakening (reports can only be added, not lost).
const MAX_COMPETING_STORES: usize = 24;

/// The strict-order atom `O_a < O_b` over statement labels.
fn order_atom<B: TermBuild>(pool: &mut B, a: Label, b: Label) -> TermId {
    pool.order_lt(a.0, b.0)
}

/// Locates the node of an object, if the dataflow pass materialized it.
fn find_obj_node(vfg: &Vfg, o: ObjId) -> Option<NodeId> {
    vfg.node_ids()
        .find(|&n| matches!(vfg.kind(n), NodeKind::Object { obj, .. } if obj == o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::{parse, CallGraph};

    struct Setup {
        prog: Program,
        pool: TermPool,
        df: DataflowResult,
        result: InterferenceResult,
    }

    fn analyze(src: &str) -> Setup {
        analyze_opts(src, &InterferenceOptions::default())
    }

    fn analyze_opts(src: &str, opts: &InterferenceOptions) -> Setup {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let ts = ThreadStructure::compute(&prog, &cg);
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let mut pool = TermPool::new();
        let mut df = canary_dataflow::run(&prog, &cg, &mut pool);
        let result = run(&prog, &ts, &mhp, &mut df, &mut pool, opts);
        Setup {
            prog,
            pool,
            df,
            result,
        }
    }

    use canary_ir::ThreadStructure;

    const FIG2: &str = r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) {
                c = *x;
                use c;
            }
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) {
                *y = b;
                free b;
            }
        }
    "#;

    #[test]
    fn fig2_object_escapes_and_edge_appears() {
        let s = analyze(FIG2);
        let o1 = s.prog.obj_by_name("o1").unwrap();
        let o2 = s.prog.obj_by_name("o2").unwrap();
        assert!(s.result.escaped.contains(&o1), "o1 passed to fork escapes");
        assert!(
            s.result.escaped.contains(&o2),
            "o2 escapes by being stored into escaped o1"
        );
        assert!(
            s.result.interference_edges >= 1,
            "store *y=b must interfere with load c=*x"
        );
        assert!(s.df.vfg.interference_edge_count() >= 1);
    }

    #[test]
    fn fig2_interference_edge_is_licensed_by_escaped_object() {
        let s = analyze(FIG2);
        let o1 = s.prog.obj_by_name("o1").unwrap();
        let edge = s
            .df
            .vfg
            .edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Interference)
            .copied()
            .expect("one interference edge");
        assert_eq!(
            s.df.vfg.license_of(edge.from, edge.to, edge.kind),
            Some(o1),
            "the store/load pair meets in o1, which must license the edge"
        );
    }

    #[test]
    fn fig2_edge_guard_contains_contradictory_branches() {
        let mut s = analyze(FIG2);
        // The interference edge guard conjoins θ1 (load side) and ¬θ1
        // (store side): it must already fold or solve to unsat.
        let edge = s
            .df
            .vfg
            .edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Interference)
            .copied()
            .expect("one interference edge");
        let stats = canary_smt::SolverStats::default();
        let res = canary_smt::check(
            &s.pool,
            edge.guard,
            &canary_smt::SolverOptions::default(),
            &stats,
        );
        assert_eq!(res, canary_smt::SmtResult::Unsat);
        let _ = &mut s.pool;
    }

    #[test]
    fn feasible_interference_edge_guard_is_sat() {
        let s = analyze(
            "fn main() {
                x = alloc o1;
                fork t w(x);
                c = *x;
                use c;
             }
             fn w(y) {
                b = alloc o2;
                *y = b;
             }",
        );
        let edge = s
            .df
            .vfg
            .edges()
            .iter()
            .find(|e| e.kind == EdgeKind::Interference)
            .copied()
            .expect("interference edge");
        let stats = canary_smt::SolverStats::default();
        let res = canary_smt::check(
            &s.pool,
            edge.guard,
            &canary_smt::SolverOptions::default(),
            &stats,
        );
        assert_eq!(res, canary_smt::SmtResult::Sat);
    }

    #[test]
    fn non_escaped_objects_get_no_interference() {
        let s = analyze(
            "fn main() {
                x = alloc o1;
                priv = alloc o2;
                v = alloc o3;
                *priv = v;
                fork t w(x);
                c = *priv;
                use c;
             }
             fn w(y) {
                d = alloc o4;
                *y = d;
             }",
        );
        let o2 = s.prog.obj_by_name("o2").unwrap();
        assert!(!s.result.escaped.contains(&o2), "o2 never escapes");
        // The only interference can involve o1.
        for e in s.df.vfg.edges() {
            if e.kind == EdgeKind::Interference {
                // load c=*priv must not be its target
                let NodeKind::Def { label, .. } = s.df.vfg.kind(e.to) else {
                    panic!()
                };
                let inst = s.prog.inst(label).clone();
                if let Inst::Load { addr, .. } = inst {
                    assert_ne!(s.prog.var_name(addr), "priv");
                }
            }
        }
    }

    #[test]
    fn join_ordered_store_prunable_by_mhp_still_edges_when_before() {
        // Store in child, load in parent after join: ordered (store
        // before load) — edge must still exist (value flows through).
        let s = analyze(
            "fn main() {
                x = alloc o1;
                fork t w(x);
                join t;
                c = *x;
                use c;
             }
             fn w(y) {
                b = alloc o2;
                *y = b;
             }",
        );
        assert!(
            s.df.vfg.interference_edge_count() >= 1,
            "ordered store→load across threads still flows a value"
        );
    }

    #[test]
    fn load_before_fork_cannot_see_child_store() {
        let s = analyze(
            "fn main() {
                x = alloc o1;
                c = *x;
                use c;
                fork t w(x);
             }
             fn w(y) {
                b = alloc o2;
                *y = b;
             }",
        );
        assert_eq!(
            s.df.vfg.interference_edge_count(),
            0,
            "a load before the fork cannot observe the child's store"
        );
    }

    #[test]
    fn mhp_off_gives_superset_of_edges() {
        let src = "fn main() {
                x = alloc o1;
                c = *x;
                use c;
                fork t w(x);
                join t;
                d = *x;
                use d;
             }
             fn w(y) {
                b = alloc o2;
                *y = b;
             }";
        let with = analyze(src);
        let without = analyze_opts(
            src,
            &InterferenceOptions {
                use_mhp: false,
                ..InterferenceOptions::default()
            },
        );
        assert!(
            without.df.vfg.interference_edge_count()
                >= with.df.vfg.interference_edge_count()
        );
    }

    #[test]
    fn lock_sharpening_prunes_overwritten_store() {
        // Both critical sections guard the same (aliased) mutex and a
        // later unconditional store in the writer's section overwrites
        // v before the unlock: the r-side load can never observe v, so
        // that pair is discharged. The final store's edge remains.
        let src = "fn main() {
                x = alloc cell; m = alloc mu;
                v = alloc o1; u = alloc o2;
                fork t r(x, m);
                lock m;
                *x = v;
                *x = u;
                unlock m;
             }
             fn r(p, n) {
                lock n;
                c = *p;
                use c;
                unlock n;
             }";
        let s = analyze(src);
        assert!(s.result.mhp_lock_pruned >= 1, "{:?}", s.result);
        let off = analyze_opts(
            src,
            &InterferenceOptions {
                lock_sharpen: false,
                ..InterferenceOptions::default()
            },
        );
        assert_eq!(off.result.mhp_lock_pruned, 0);
        assert!(
            off.df.vfg.interference_edge_count() > s.df.vfg.interference_edge_count(),
            "sharpening off must give strictly more edges here"
        );
    }

    #[test]
    fn lock_without_overwrite_is_not_pruned() {
        // Common lock but the stored value survives the section: naive
        // common-lock pruning would be unsound — the edge must remain.
        let s = analyze(
            "fn main() {
                x = alloc cell; m = alloc mu; v = alloc o1;
                fork t r(x, m);
                lock m;
                *x = v;
                unlock m;
             }
             fn r(p, n) {
                lock n;
                c = *p;
                use c;
                unlock n;
             }",
        );
        assert_eq!(s.result.mhp_lock_pruned, 0);
        assert!(s.df.vfg.interference_edge_count() >= 1);
    }

    #[test]
    fn lock_free_programs_are_never_lock_pruned() {
        let s = analyze(FIG2);
        assert_eq!(s.result.mhp_lock_pruned, 0);
    }

    #[test]
    fn fixpoint_discovers_second_level_escape() {
        // b escapes only because it is stored into already-escaped o1;
        // then w2's load through o1 must interfere with the store.
        let s = analyze(
            "fn main() {
                x = alloc o1;
                fork t1 w1(x);
                fork t2 w2(x);
             }
             fn w1(y) {
                b = alloc o2;
                *y = b;
             }
             fn w2(z) {
                c = *z;
                use c;
             }",
        );
        let o2 = s.prog.obj_by_name("o2").unwrap();
        assert!(s.result.escaped.contains(&o2));
        assert!(s.df.vfg.interference_edge_count() >= 1);
        assert!(s.result.rounds >= 1);
    }

    #[test]
    fn line9_refreshes_same_thread_flow_after_join() {
        // Store in child, load in parent after join, but through a
        // helper function shared by no summaries: the line-9 refresh
        // (or the interference edge) must connect them. Either way the
        // load must be reachable from the store in the final VFG.
        let s = analyze(
            "fn main() {
                x = alloc o1;
                fork t w(x);
                join t;
                c = *x;
                use c;
             }
             fn w(y) {
                b = alloc o2;
                *y = b;
             }",
        );
        let store_label = s
            .prog
            .labels()
            .find(|&l| matches!(s.prog.inst(l), Inst::Store { .. }))
            .unwrap();
        let load_label = s
            .prog
            .labels()
            .find(|&l| matches!(s.prog.inst(l), Inst::Load { .. }))
            .unwrap();
        let sn = s
            .df
            .vfg
            .find(NodeKind::Def {
                var: match s.prog.inst(store_label) {
                    Inst::Store { src, .. } => *src,
                    _ => unreachable!(),
                },
                label: store_label,
            })
            .unwrap();
        let reach = s.df.vfg.reachable_from(sn);
        let ln = s
            .df
            .vfg
            .find(NodeKind::Def {
                var: match s.prog.inst(load_label) {
                    Inst::Load { dst, .. } => *dst,
                    _ => unreachable!(),
                },
                label: load_label,
            })
            .unwrap();
        assert!(reach.contains(&ln));
    }
}
