//! Determinism contract of the sharded interference rounds: the full
//! Alg. 1 + Alg. 2 front-end must produce byte-identical state — term
//! pool, VFG, interference facts — for every worker count.

use proptest::prelude::*;

use canary_ir::{CallGraph, MhpAnalysis, ThreadStructure};
use canary_smt::TermPool;
use canary_workloads::{generate, WorkloadSpec};

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (0u64..400, 150usize..450, 1usize..4, 1usize..4).prop_map(
        |(seed, stmts, threads, cells)| WorkloadSpec {
            name: format!("alg2-par-{seed}"),
            seed,
            target_stmts: stmts,
            threads,
            shared_cells: cells,
            true_bugs: 1,
            benign_patterns: 1,
            contradiction_patterns: 1,
            handshake_patterns: 1,
            order_fp_patterns: 1,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 0,
            conflict_lock: 0,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: true,
        },
    )
}

fn front_end(
    spec: &WorkloadSpec,
    threads: usize,
) -> (TermPool, canary_dataflow::DataflowResult, canary_interference::InterferenceResult) {
    let w = generate(spec);
    let cg = CallGraph::build(&w.prog);
    let ts = ThreadStructure::compute(&w.prog, &cg);
    let mhp = MhpAnalysis::new(&w.prog, &cg, &ts);
    let mut pool = TermPool::new();
    let mut df = canary_dataflow::run_with(&w.prog, &cg, &mut pool, threads);
    let opts = canary_interference::InterferenceOptions {
        threads,
        ..Default::default()
    };
    let ir = canary_interference::run(&w.prog, &ts, &mhp, &mut df, &mut pool, &opts);
    (pool, df, ir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_rounds_match_serial_exactly(spec in spec_strategy()) {
        let (pool1, df1, ir1) = front_end(&spec, 1);
        for threads in [2usize, 8] {
            let (pooln, dfn, irn) = front_end(&spec, threads);
            prop_assert_eq!(pool1.len(), pooln.len(), "term pools diverged at {} threads", threads);
            prop_assert_eq!(df1.vfg.edges(), dfn.vfg.edges());
            prop_assert_eq!(df1.vfg.node_count(), dfn.vfg.node_count());
            for n in df1.vfg.node_ids() {
                prop_assert_eq!(df1.vfg.kind(n), dfn.vfg.kind(n));
            }
            prop_assert_eq!(&ir1.escaped, &irn.escaped);
            prop_assert_eq!(ir1.rounds, irn.rounds);
            prop_assert_eq!(ir1.interference_edges, irn.interference_edges);
            prop_assert_eq!(ir1.refreshed_data_edges, irn.refreshed_data_edges);
            prop_assert_eq!(ir1.mhp_pruned, irn.mhp_pruned);
            prop_assert_eq!(ir1.tasks, irn.tasks);
        }
    }
}
