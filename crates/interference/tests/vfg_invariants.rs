//! Property-based structural invariants of the interference-aware VFG
//! over randomly generated workloads.

use proptest::prelude::*;

use canary_ir::{CallGraph, Inst, MhpAnalysis, ThreadStructure};
use canary_smt::TermPool;
use canary_vfg::{EdgeKind, NodeKind};
use canary_workloads::{generate, WorkloadSpec};

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (0u64..500, 150usize..500, 1usize..4, 1usize..4, 0usize..3).prop_map(
        |(seed, stmts, threads, cells, bugs)| WorkloadSpec {
            name: format!("inv-{seed}"),
            seed,
            target_stmts: stmts,
            threads,
            shared_cells: cells,
            true_bugs: bugs,
            benign_patterns: bugs.min(1),
            contradiction_patterns: 2,
            handshake_patterns: 1,
            order_fp_patterns: 1,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 0,
            conflict_lock: 0,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: true,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interference_edges_connect_cross_thread_store_loads(spec in spec_strategy()) {
        let w = generate(&spec);
        let prog = &w.prog;
        let cg = CallGraph::build(prog);
        let ts = ThreadStructure::compute(prog, &cg);
        let mhp = MhpAnalysis::new(prog, &cg, &ts);
        let mut pool = TermPool::new();
        let mut df = canary_dataflow::run(prog, &cg, &mut pool);
        canary_interference::run(
            prog,
            &ts,
            &mhp,
            &mut df,
            &mut pool,
            &canary_interference::InterferenceOptions::default(),
        );
        for e in df.vfg.edges() {
            if e.kind != EdgeKind::Interference {
                continue;
            }
            let NodeKind::Def { label: sl, .. } = df.vfg.kind(e.from) else {
                prop_assert!(false, "interference source must be a def node");
                unreachable!()
            };
            let NodeKind::Def { label: ll, .. } = df.vfg.kind(e.to) else {
                prop_assert!(false, "interference target must be a def node");
                unreachable!()
            };
            prop_assert!(
                matches!(prog.inst(sl), Inst::Store { .. }),
                "interference edge must leave a store, found {:?}",
                prog.inst(sl)
            );
            prop_assert!(
                matches!(prog.inst(ll), Inst::Load { .. }),
                "interference edge must enter a load, found {:?}",
                prog.inst(ll)
            );
            prop_assert!(
                ts.may_be_in_distinct_threads(prog, sl, ll),
                "interference requires distinct-thread capability"
            );
            // A load the program order places *before* the store can
            // never observe it.
            prop_assert!(
                !mhp.order_graph().happens_before(ll, sl),
                "edge against program order"
            );
        }
    }

    #[test]
    fn fork_arguments_objects_always_escape(spec in spec_strategy()) {
        let w = generate(&spec);
        let prog = &w.prog;
        let cg = CallGraph::build(prog);
        let ts = ThreadStructure::compute(prog, &cg);
        let mhp = MhpAnalysis::new(prog, &cg, &ts);
        let mut pool = TermPool::new();
        let mut df = canary_dataflow::run(prog, &cg, &mut pool);
        let result = canary_interference::run(
            prog,
            &ts,
            &mhp,
            &mut df,
            &mut pool,
            &canary_interference::InterferenceOptions::default(),
        );
        // Every object directly reaching a fork argument is escaped.
        for l in prog.labels() {
            if let Inst::Fork { args, .. } = prog.inst(l) {
                for &a in args {
                    let Some(anchor) = df.def_site[a.index()] else { continue };
                    let Some(n) = df.vfg.find(NodeKind::Def { var: a, label: anchor }) else {
                        continue;
                    };
                    for o in df.vfg.objects_reaching(n) {
                        prop_assert!(
                            result.escaped.contains(&o),
                            "fork-arg object {o} must escape"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn edge_guards_are_never_constant_false(spec in spec_strategy()) {
        // The analyses drop false-guarded entries at construction, so a
        // structurally false guard on an edge signals a bug upstream.
        // (Guards that a solver would refute are fine — that is the
        // whole point — but the constant `false` must not appear.)
        let w = generate(&spec);
        let prog = &w.prog;
        let cg = CallGraph::build(prog);
        let ts = ThreadStructure::compute(prog, &cg);
        let mhp = MhpAnalysis::new(prog, &cg, &ts);
        let mut pool = TermPool::new();
        let mut df = canary_dataflow::run(prog, &cg, &mut pool);
        canary_interference::run(
            prog,
            &ts,
            &mhp,
            &mut df,
            &mut pool,
            &canary_interference::InterferenceOptions::default(),
        );
        let mut false_direct = 0usize;
        for e in df.vfg.edges() {
            if e.guard == pool.ff() && e.kind == EdgeKind::Direct {
                false_direct += 1;
            }
        }
        prop_assert_eq!(false_direct, 0, "no direct edge should carry `false`");
    }
}
