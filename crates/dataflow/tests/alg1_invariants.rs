//! Property-based invariants of Algorithm 1 over generated workloads:
//! the inventory matches the program, definition anchors are correct,
//! and every guarded points-to entry is satisfiable on its own.

use proptest::prelude::*;

use canary_ir::{CallGraph, Inst, VarId};
use canary_smt::{check, SolverOptions, SolverStats, TermPool};
use canary_workloads::{generate, WorkloadSpec};

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (0u64..400, 150usize..450, 1usize..4, 1usize..4).prop_map(
        |(seed, stmts, threads, cells)| WorkloadSpec {
            name: format!("alg1-{seed}"),
            seed,
            target_stmts: stmts,
            threads,
            shared_cells: cells,
            true_bugs: 1,
            benign_patterns: 1,
            contradiction_patterns: 1,
            handshake_patterns: 1,
            order_fp_patterns: 1,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 0,
            conflict_lock: 0,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: true,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn store_load_inventory_matches_program(spec in spec_strategy()) {
        let w = generate(&spec);
        let cg = CallGraph::build(&w.prog);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&w.prog, &cg, &mut pool);
        let n_stores = w
            .prog
            .labels()
            .filter(|&l| matches!(w.prog.inst(l), Inst::Store { .. }))
            .count();
        let n_loads = w
            .prog
            .labels()
            .filter(|&l| matches!(w.prog.inst(l), Inst::Load { .. }))
            .count();
        prop_assert_eq!(df.stores.len(), n_stores);
        prop_assert_eq!(df.loads.len(), n_loads);
        // Every inventoried site points back at the right instruction.
        for s in &df.stores {
            let ok = matches!(
                w.prog.inst(s.label),
                Inst::Store { addr, src } if *addr == s.addr && *src == s.src
            );
            prop_assert!(ok, "store site mismatch at {}", s.label);
        }
        for l in &df.loads {
            let ok = matches!(
                w.prog.inst(l.label),
                Inst::Load { dst, addr } if *dst == l.dst && *addr == l.addr
            );
            prop_assert!(ok, "load site mismatch at {}", l.label);
        }
    }

    #[test]
    fn def_sites_anchor_at_definitions_or_param_entries(spec in spec_strategy()) {
        let w = generate(&spec);
        let cg = CallGraph::build(&w.prog);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&w.prog, &cg, &mut pool);
        for (vi, anchor) in df.def_site.iter().enumerate() {
            let Some(l) = anchor else { continue };
            let v = VarId::new(vi as u32);
            let inst = w.prog.inst(*l);
            let is_def = inst.def() == Some(v);
            let func = w.prog.func_of(*l);
            let is_param_anchor = w.prog.func(func).params.contains(&v)
                && w.prog.func(func).labels().next() == Some(*l);
            prop_assert!(
                is_def || is_param_anchor,
                "anchor {l} of {v} is neither its def nor a param entry"
            );
        }
    }

    #[test]
    fn points_to_guards_are_individually_satisfiable(spec in spec_strategy()) {
        // insert_guarded drops false entries; anything surviving must be
        // satisfiable (or the entry could never hold and pollutes Pted).
        let w = generate(&spec);
        let cg = CallGraph::build(&w.prog);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&w.prog, &cg, &mut pool);
        let opts = SolverOptions::default();
        let stats = SolverStats::default();
        let mut checked = 0;
        for set in &df.pgtop {
            for e in set {
                prop_assert!(
                    check(&pool, e.guard, &opts, &stats).is_sat(),
                    "unsatisfiable points-to guard"
                );
                checked += 1;
                if checked > 400 {
                    return Ok(()); // bound solver work per case
                }
            }
        }
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial(spec in spec_strategy()) {
        // The determinism contract of `run_with`: worker count must not
        // change a single term id, VFG node/edge, points-to entry, or
        // summary — threads only shorten wall time.
        let w = generate(&spec);
        let cg = CallGraph::build(&w.prog);
        let mut pool1 = TermPool::new();
        let serial = canary_dataflow::run_with(&w.prog, &cg, &mut pool1, 1);
        for threads in [2usize, 8] {
            let mut pooln = TermPool::new();
            let par = canary_dataflow::run_with(&w.prog, &cg, &mut pooln, threads);
            prop_assert_eq!(pool1.len(), pooln.len(), "term pools diverged at {} threads", threads);
            prop_assert_eq!(serial.vfg.edges(), par.vfg.edges());
            prop_assert_eq!(serial.vfg.node_count(), par.vfg.node_count());
            for n in serial.vfg.node_ids() {
                prop_assert_eq!(serial.vfg.kind(n), par.vfg.kind(n));
            }
            prop_assert_eq!(&serial.pgtop, &par.pgtop);
            prop_assert_eq!(serial.stores.len(), par.stores.len());
            for (a, b) in serial.stores.iter().zip(&par.stores) {
                prop_assert!(a.label == b.label && a.addr == b.addr && a.src == b.src && a.guard == b.guard);
            }
            prop_assert_eq!(serial.loads.len(), par.loads.len());
            for (a, b) in serial.loads.iter().zip(&par.loads) {
                prop_assert!(a.label == b.label && a.addr == b.addr && a.dst == b.dst && a.guard == b.guard);
            }
            prop_assert_eq!(serial.summaries.len(), par.summaries.len());
            for (a, b) in serial.summaries.iter().zip(&par.summaries) {
                prop_assert_eq!(&a.exit_mem, &b.exit_mem);
                prop_assert_eq!(a.returns.len(), b.returns.len());
                for (ra, rb) in a.returns.iter().zip(&b.returns) {
                    prop_assert!(ra.0 == rb.0 && ra.1 == rb.1 && ra.2 == rb.2);
                }
                prop_assert_eq!(a.param_loads.len(), b.param_loads.len());
                for (pa, pb) in a.param_loads.iter().zip(&b.param_loads) {
                    prop_assert!(
                        pa.param == pb.param && pa.dst == pb.dst
                            && pa.label == pb.label && pa.guard == pb.guard
                    );
                }
            }
            prop_assert_eq!(serial.tasks, par.tasks);
        }
    }

    #[test]
    fn path_conditions_of_reachable_code_are_satisfiable(spec in spec_strategy()) {
        let w = generate(&spec);
        let cg = CallGraph::build(&w.prog);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&w.prog, &cg, &mut pool);
        let opts = SolverOptions::default();
        let stats = SolverStats::default();
        for (i, l) in w.prog.labels().enumerate() {
            if i % 7 != 0 {
                continue; // sample
            }
            let g = df.path_conds.guard(l);
            prop_assert!(
                check(&pool, g, &opts, &stats).is_sat(),
                "generated statements are all reachable, guard must be sat"
            );
        }
    }
}
