//! Critical-section tracking: lock/unlock sites, mutex alias classes,
//! and lexical lock regions.
//!
//! The [`LockModel`] is the shared substrate of the lock-discipline
//! layer: the double-lock and conflicting-lock-order checkers
//! (`canary-detect`) read acquisition sites and regions from it, and
//! the lock-sharpened MHP pruning (`canary-interference`) uses region
//! membership to discharge store/load pairs whose critical sections
//! exclude each other. It mirrors the pairing discipline of the §9
//! synchronization model: each `lock` pairs with its nearest following
//! `unlock` on an aliasing mutex within the same function.

use canary_ir::{Inst, Label, ObjId, OrderGraph, Program};
use canary_vfg::NodeKind;

use crate::analysis::DataflowResult;

/// One `lock` or `unlock` statement.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// The statement label.
    pub label: Label,
    /// Objects the mutex pointer may reference.
    pub objs: Vec<ObjId>,
    /// The mutex alias class, when the pointer resolves to any object.
    pub class: Option<usize>,
}

/// A lexical critical section within one function.
#[derive(Clone, Debug)]
pub struct LockRegion {
    /// The acquiring `lock` statement.
    pub lock: Label,
    /// The matching `unlock` statement (nearest following, same
    /// function, aliasing mutex).
    pub unlock: Label,
    /// The mutex alias class guarded by the region.
    pub class: usize,
}

/// Lock sites, alias classes and critical sections of one program.
#[derive(Clone, Debug, Default)]
pub struct LockModel {
    /// All `lock` statements, in label order.
    pub locks: Vec<LockSite>,
    /// All `unlock` statements, in label order.
    pub unlocks: Vec<LockSite>,
    /// All paired critical sections, in `lock`-label order.
    pub regions: Vec<LockRegion>,
    /// Number of distinct mutex alias classes.
    pub class_count: usize,
}

impl LockModel {
    /// Scans the program for lock sites, merges may-alias mutex object
    /// sets into classes, and pairs lexical regions.
    pub fn build(prog: &Program, og: &OrderGraph<'_>, df: &DataflowResult) -> Self {
        let objs_of = |v: canary_ir::VarId| -> Vec<ObjId> {
            df.def_site[v.index()]
                .and_then(|l| df.vfg.find(NodeKind::Def { var: v, label: l }))
                .map(|n| df.vfg.objects_reaching(n))
                .unwrap_or_default()
        };
        let mut locks: Vec<LockSite> = Vec::new();
        let mut unlocks: Vec<LockSite> = Vec::new();
        for l in prog.labels() {
            match prog.inst(l) {
                Inst::Lock { mutex } => locks.push(LockSite {
                    label: l,
                    objs: objs_of(*mutex),
                    class: None,
                }),
                Inst::Unlock { mutex } => unlocks.push(LockSite {
                    label: l,
                    objs: objs_of(*mutex),
                    class: None,
                }),
                _ => {}
            }
        }
        // Union-find over mutex objects: the objects of one site are a
        // may-alias set, so they merge into one class; sites sharing an
        // object land in the same class transitively.
        let mut parent: std::collections::HashMap<ObjId, ObjId> =
            std::collections::HashMap::new();
        fn find(parent: &mut std::collections::HashMap<ObjId, ObjId>, x: ObjId) -> ObjId {
            let p = *parent.entry(x).or_insert(x);
            if p == x {
                return x;
            }
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
        for site in locks.iter().chain(unlocks.iter()) {
            for w in site.objs.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent.insert(a, b);
                }
            }
        }
        // Merge across sites sharing any object.
        for site in locks.iter().chain(unlocks.iter()) {
            if let Some(&first) = site.objs.first() {
                for &o in &site.objs[1..] {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, o));
                    if a != b {
                        parent.insert(a, b);
                    }
                }
            }
        }
        // Dense class numbering in site order (deterministic).
        let mut class_ids: std::collections::HashMap<ObjId, usize> =
            std::collections::HashMap::new();
        let mut class_count = 0usize;
        let mut assign = |parent: &mut std::collections::HashMap<ObjId, ObjId>,
                          site: &mut LockSite| {
            let Some(&first) = site.objs.first() else {
                return;
            };
            let root = find(parent, first);
            let id = *class_ids.entry(root).or_insert_with(|| {
                class_count += 1;
                class_count - 1
            });
            site.class = Some(id);
        };
        for site in locks.iter_mut() {
            assign(&mut parent, site);
        }
        for site in unlocks.iter_mut() {
            assign(&mut parent, site);
        }
        // Pair each lock with its nearest following aliasing unlock in
        // the same function.
        let mut regions = Vec::new();
        for ls in &locks {
            let Some(class) = ls.class else { continue };
            let mut best: Option<Label> = None;
            for us in &unlocks {
                if us.class != Some(class) || prog.func_of(ls.label) != prog.func_of(us.label)
                {
                    continue;
                }
                if og.happens_before(ls.label, us.label)
                    && best.is_none_or(|b| og.happens_before(us.label, b))
                {
                    best = Some(us.label);
                }
            }
            if let Some(unlock) = best {
                regions.push(LockRegion {
                    lock: ls.label,
                    unlock,
                    class,
                });
            }
        }
        LockModel {
            locks,
            unlocks,
            regions,
            class_count,
        }
    }

    /// Whether label `l` lies inside region `r` (may-reach containment:
    /// at or after the lock, at or before the matching unlock).
    pub fn in_region(&self, og: &OrderGraph<'_>, r: &LockRegion, l: Label) -> bool {
        (l == r.lock || og.happens_before(r.lock, l))
            && (l == r.unlock || og.happens_before(l, r.unlock))
    }

    /// Indices of the regions that may contain `l`.
    pub fn regions_containing(&self, og: &OrderGraph<'_>, l: Label) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| self.in_region(og, r, l))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::{parse, CallGraph};
    use canary_smt::TermPool;

    fn model(src: &str) -> (Program, LockModel) {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let mut pool = TermPool::new();
        let df = crate::run(&prog, &cg, &mut pool);
        let og = OrderGraph::build(&prog, &cg);
        let m = LockModel::build(&prog, &og, &df);
        (prog, m)
    }

    #[test]
    fn distinct_mutexes_get_distinct_classes() {
        let (_, m) = model(
            "fn main() {
                a = alloc ma; b = alloc mb;
                lock a; lock b; unlock b; unlock a;
             }",
        );
        assert_eq!(m.class_count, 2);
        assert_eq!(m.locks.len(), 2);
        assert_eq!(m.regions.len(), 2);
        assert_ne!(m.locks[0].class, m.locks[1].class);
    }

    #[test]
    fn aliased_mutexes_share_a_class() {
        // The same mutex travels into the worker as a parameter: both
        // sides' lock sites must land in one class.
        let (_, m) = model(
            "fn main() {
                m = alloc mu;
                fork t w(m);
                lock m; unlock m;
             }
             fn w(n) { lock n; unlock n; }",
        );
        assert_eq!(m.class_count, 1);
        assert_eq!(m.regions.len(), 2);
        assert_eq!(m.regions[0].class, m.regions[1].class);
    }

    #[test]
    fn region_membership_is_bounded_by_the_nearest_unlock() {
        let (prog, m) = model(
            "fn main() {
                mu = alloc mx;
                lock mu;
                p = alloc o;
                unlock mu;
                use p;
             }",
        );
        assert_eq!(m.regions.len(), 1);
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let alloc = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Alloc { .. } if l > m.regions[0].lock))
            .unwrap();
        assert!(m.in_region(&og, &m.regions[0], alloc));
        let deref = prog.deref_sites()[0];
        assert!(!m.in_region(&og, &m.regions[0], deref));
    }
}
