//! Compact binary codec for [`FuncSummary`], the payload of the
//! bounded-memory spill store (`canary-store`).
//!
//! Everything a summary holds is dense `u32` ids ([`canary_ir::Label`],
//! [`canary_ir::VarId`], [`canary_ir::ObjId`], [`canary_smt::TermId`])
//! plus small enum tags, so the format is a flat little-endian `u32`
//! stream: no framing, no compression, byte-identical for identical
//! summaries. Term ids are pool-relative — a decoded summary is only
//! meaningful against the same [`canary_smt::TermPool`] the encoder
//! saw, which holds within one analysis run (the store never outlives
//! the run).

use canary_ir::{Label, ObjId, VarId};
use canary_smt::TermId;

use crate::analysis::{FuncSummary, ParamLoad};
use crate::symbols::{Guarded, MemKey, MemVal, Sym};

fn w32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Sequential little-endian `u32` reader over the encoded stream.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn r32(&mut self) -> Option<u32> {
        let chunk = self.bytes.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(chunk.try_into().ok()?))
    }

    fn rlen(&mut self) -> Option<usize> {
        let n = self.r32()? as usize;
        // A length can't exceed the words left in the stream: rejects
        // corrupt lengths before they turn into huge allocations.
        (n <= (self.bytes.len() - self.at) / 4).then_some(n)
    }
}

fn w_sym(out: &mut Vec<u8>, s: Option<Sym>) {
    match s {
        None => {
            w32(out, 0);
            w32(out, 0);
        }
        Some(Sym::Obj(o)) => {
            w32(out, 1);
            w32(out, o.0);
        }
        Some(Sym::Null) => {
            w32(out, 2);
            w32(out, 0);
        }
        Some(Sym::Param(i)) => {
            w32(out, 3);
            w32(out, i as u32);
        }
        Some(Sym::DerefParam(i)) => {
            w32(out, 4);
            w32(out, i as u32);
        }
    }
}

fn r_sym(r: &mut Reader<'_>) -> Option<Option<Sym>> {
    let tag = r.r32()?;
    let payload = r.r32()?;
    Some(match tag {
        0 => None,
        1 => Some(Sym::Obj(ObjId::new(payload))),
        2 => Some(Sym::Null),
        3 => Some(Sym::Param(payload as usize)),
        4 => Some(Sym::DerefParam(payload as usize)),
        _ => return None,
    })
}

/// Encodes a summary to the flat `u32`-LE spill format.
pub fn encode_summary(s: &FuncSummary) -> Vec<u8> {
    let mut out = Vec::new();
    w32(&mut out, s.exit_mem.len() as u32);
    for (key, cells) in &s.exit_mem {
        match key {
            MemKey::Obj(o) => {
                w32(&mut out, 0);
                w32(&mut out, o.0);
            }
            MemKey::ParamCell(i) => {
                w32(&mut out, 1);
                w32(&mut out, *i as u32);
            }
        }
        w32(&mut out, cells.len() as u32);
        for g in cells {
            w32(&mut out, g.guard.0);
            w_sym(&mut out, g.value.pointee);
            match g.value.origin {
                None => {
                    w32(&mut out, 0);
                    w32(&mut out, 0);
                    w32(&mut out, 0);
                }
                Some((l, v)) => {
                    w32(&mut out, 1);
                    w32(&mut out, l.0);
                    w32(&mut out, v.0);
                }
            }
        }
    }
    w32(&mut out, s.param_loads.len() as u32);
    for p in &s.param_loads {
        w32(&mut out, p.param as u32);
        w32(&mut out, p.dst.0);
        w32(&mut out, p.label.0);
        w32(&mut out, p.guard.0);
    }
    w32(&mut out, s.returns.len() as u32);
    for (l, g, vars) in &s.returns {
        w32(&mut out, l.0);
        w32(&mut out, g.0);
        w32(&mut out, vars.len() as u32);
        for v in vars {
            w32(&mut out, v.0);
        }
    }
    out
}

/// Decodes a summary from the spill format. Returns `None` on
/// truncated input, bad enum tags, or trailing bytes.
pub fn decode_summary(bytes: &[u8]) -> Option<FuncSummary> {
    let mut r = Reader { bytes, at: 0 };
    let n_mem = r.rlen()?;
    let mut exit_mem = Vec::with_capacity(n_mem);
    for _ in 0..n_mem {
        let key = match r.r32()? {
            0 => MemKey::Obj(ObjId::new(r.r32()?)),
            1 => MemKey::ParamCell(r.r32()? as usize),
            _ => return None,
        };
        let n_cells = r.rlen()?;
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let guard = TermId(r.r32()?);
            let pointee = r_sym(&mut r)?;
            let origin = match r.r32()? {
                0 => {
                    r.r32()?;
                    r.r32()?;
                    None
                }
                1 => Some((Label::new(r.r32()?), VarId::new(r.r32()?))),
                _ => return None,
            };
            cells.push(Guarded::new(guard, MemVal { pointee, origin }));
        }
        exit_mem.push((key, cells));
    }
    let n_loads = r.rlen()?;
    let mut param_loads = Vec::with_capacity(n_loads);
    for _ in 0..n_loads {
        param_loads.push(ParamLoad {
            param: r.r32()? as usize,
            dst: VarId::new(r.r32()?),
            label: Label::new(r.r32()?),
            guard: TermId(r.r32()?),
        });
    }
    let n_rets = r.rlen()?;
    let mut returns = Vec::with_capacity(n_rets);
    for _ in 0..n_rets {
        let l = Label::new(r.r32()?);
        let g = TermId(r.r32()?);
        let n_vars = r.rlen()?;
        let mut vars = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            vars.push(VarId::new(r.r32()?));
        }
        returns.push((l, g, vars));
    }
    (r.at == bytes.len()).then_some(FuncSummary {
        exit_mem,
        param_loads,
        returns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuncSummary {
        FuncSummary {
            exit_mem: vec![
                (
                    MemKey::Obj(ObjId::new(3)),
                    vec![
                        Guarded::new(
                            TermId(7),
                            MemVal {
                                pointee: Some(Sym::Obj(ObjId::new(1))),
                                origin: Some((Label::new(12), VarId::new(4))),
                            },
                        ),
                        Guarded::new(
                            TermId(0),
                            MemVal {
                                pointee: None,
                                origin: None,
                            },
                        ),
                    ],
                ),
                (
                    MemKey::ParamCell(2),
                    vec![Guarded::new(
                        TermId(9),
                        MemVal {
                            pointee: Some(Sym::DerefParam(1)),
                            origin: None,
                        },
                    )],
                ),
            ],
            param_loads: vec![ParamLoad {
                param: 1,
                dst: VarId::new(8),
                label: Label::new(20),
                guard: TermId(5),
            }],
            returns: vec![(
                Label::new(30),
                TermId(2),
                vec![VarId::new(0), VarId::new(6)],
            )],
        }
    }

    fn eq(a: &FuncSummary, b: &FuncSummary) -> bool {
        // FuncSummary has no PartialEq; the codec's byte output is a
        // faithful canonical form, so compare re-encodings.
        encode_summary(a) == encode_summary(b)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let s = sample();
        let bytes = encode_summary(&s);
        let d = decode_summary(&bytes).unwrap();
        assert!(eq(&s, &d));
        assert_eq!(d.exit_mem.len(), 2);
        assert_eq!(d.param_loads.len(), 1);
        assert_eq!(d.returns[0].2, vec![VarId::new(0), VarId::new(6)]);
    }

    #[test]
    fn empty_summary_round_trips() {
        let s = FuncSummary::default();
        let d = decode_summary(&encode_summary(&s)).unwrap();
        assert!(eq(&s, &d));
    }

    #[test]
    fn truncated_and_trailing_input_rejected() {
        let bytes = encode_summary(&sample());
        assert!(decode_summary(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_summary(&bytes[..4]).is_none());
        let mut extra = bytes.clone();
        extra.extend_from_slice(&[0; 4]);
        assert!(decode_summary(&extra).is_none());
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = encode_summary(&sample());
        // First MemKey tag lives right after the leading count.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_summary(&bytes).is_none());
    }

    #[test]
    fn huge_length_prefix_rejected_without_allocating() {
        let mut bytes = Vec::new();
        w32(&mut bytes, u32::MAX);
        assert!(decode_summary(&bytes).is_none());
    }
}
