//! # canary-dataflow
//!
//! Algorithm 1 of the Canary paper: the intra-thread, thread-modular
//! data-dependence analysis. It walks each function once in bottom-up
//! thread-call-graph order, computing
//!
//! * guarded, flow-sensitive points-to facts (strong updates on
//!   singletons — Alg. 1 lines 15–18);
//! * intra-thread value-flow edges, direct (Fig. 6 rows 1–2) and
//!   indirect store→load (Fig. 6 row 3), each annotated with its guard;
//! * procedural transfer functions ([`FuncSummary`]) exposing points-to
//!   side effects through formal parameters;
//! * the statement path conditions `φ` ([`PathConditions`]).
//!
//! Its output bootstraps the interference-dependence analysis (Alg. 2,
//! crate `canary-interference`).
//!
//! # Examples
//!
//! ```
//! use canary_ir::{parse, CallGraph};
//! use canary_smt::TermPool;
//!
//! let prog = parse(
//!     "fn main() { x = alloc o; p = alloc cell; *p = x; y = *p; use y; }",
//! )?;
//! let cg = CallGraph::build(&prog);
//! let mut pool = TermPool::new();
//! let result = canary_dataflow::run(&prog, &cg, &mut pool);
//! // The store→load indirect flow appears as a DataDep edge.
//! assert!(result
//!     .vfg
//!     .edges()
//!     .iter()
//!     .any(|e| e.kind == canary_vfg::EdgeKind::DataDep));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod exec;
pub mod locks;
pub mod pathcond;
pub mod spill;
pub mod symbols;

pub use analysis::{
    run, run_traced, run_with, DataflowResult, FuncProfile, FuncSummary, LoadSite, ParamLoad,
    StoreSite,
};
pub use spill::{decode_summary, encode_summary};
pub use locks::{LockModel, LockRegion, LockSite};
pub use pathcond::{cond_term, PathConditions};
pub use symbols::{insert_guarded, CellSet, Guarded, MemKey, MemVal, PtsSet, Sym};

#[cfg(test)]
mod tests {
    use canary_ir::{parse, CallGraph, Inst, Program};
    use canary_smt::TermPool;
    use canary_vfg::{EdgeKind, NodeKind};

    use crate::analysis::DataflowResult;
    use crate::symbols::Sym;

    fn analyze(src: &str) -> (Program, TermPool, DataflowResult) {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let mut pool = TermPool::new();
        let r = crate::run(&prog, &cg, &mut pool);
        (prog, pool, r)
    }

    fn pts_objs(prog: &Program, r: &DataflowResult, func: &str, var: &str) -> Vec<String> {
        let f = prog.func_by_name(func).unwrap();
        let v = prog.var_by_name(f, var).unwrap();
        let mut out: Vec<String> = r.pgtop[v.index()]
            .iter()
            .filter_map(|e| match e.value {
                Sym::Obj(o) => Some(prog.obj_name(o).to_string()),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn alloc_gives_points_to() {
        let (prog, _pool, r) = analyze("fn main() { p = alloc o1; use p; }");
        assert_eq!(pts_objs(&prog, &r, "main", "p"), vec!["o1"]);
    }

    #[test]
    fn copy_propagates_points_to() {
        let (prog, _pool, r) = analyze("fn main() { p = alloc o1; q = p; use q; }");
        assert_eq!(pts_objs(&prog, &r, "main", "q"), vec!["o1"]);
    }

    #[test]
    fn load_reads_stored_value() {
        let (prog, _pool, r) = analyze(
            "fn main() { x = alloc o1; cell = alloc c; *cell = x; y = *cell; use y; }",
        );
        assert_eq!(pts_objs(&prog, &r, "main", "y"), vec!["o1"]);
        // And the VFG has the indirect store→load edge.
        assert!(r
            .vfg
            .edges()
            .iter()
            .any(|e| e.kind == EdgeKind::DataDep));
    }

    #[test]
    fn strong_update_kills_previous_store() {
        let (prog, pool, r) = analyze(
            "fn main() {
                a = alloc oa; b = alloc ob; cell = alloc c;
                *cell = a;
                *cell = b;
                y = *cell;
                use y;
             }",
        );
        // cell's address set is a singleton, so the second store strongly
        // updates: y points only to ob.
        assert_eq!(pts_objs(&prog, &r, "main", "y"), vec!["ob"]);
        let _ = pool;
    }

    #[test]
    fn weak_update_keeps_older_value_visible() {
        let (prog, _pool, r) = analyze(
            "fn main() {
                a = alloc oa; b = alloc ob;
                c1 = alloc cell1; c2 = alloc cell2;
                if (t) { p = c1; } else { p = c2; }
                q = c1;
                *q = a;
                *p = b;
                y = *q;
                use y;
             }",
        );
        // The second store's address is not a singleton, so it is weak:
        // y must still possibly see `a`.
        let objs = pts_objs(&prog, &r, "main", "y");
        assert!(objs.contains(&"oa".to_string()), "{objs:?}");
    }

    #[test]
    fn guards_reflect_branch_conditions() {
        let (prog, mut pool, r) = analyze(
            "fn main() {
                a = alloc oa; b = alloc ob; cell = alloc c;
                if (t) { *cell = a; } else { *cell = b; }
                y = *cell;
                use y;
             }",
        );
        let f = prog.func_by_name("main").unwrap();
        let y = prog.var_by_name(f, "y").unwrap();
        let entries = &r.pgtop[y.index()];
        // Two guarded entries whose guards are complementary.
        assert_eq!(entries.len(), 2, "{entries:?}");
        let both = pool.and2(entries[0].guard, entries[1].guard);
        assert_eq!(both, pool.ff());
    }

    #[test]
    fn call_return_flows_object() {
        let (prog, _pool, r) = analyze(
            "fn mk() { p = alloc o1; return p; }
             fn main() { q = call mk(); use q; }",
        );
        assert_eq!(pts_objs(&prog, &r, "main", "q"), vec!["o1"]);
    }

    #[test]
    fn callee_store_visible_to_caller_load() {
        let (prog, _pool, r) = analyze(
            "fn init(slot) { v = alloc inner; *slot = v; }
             fn main() { cell = alloc c; call init(cell); y = *cell; use y; }",
        );
        assert_eq!(pts_objs(&prog, &r, "main", "y"), vec!["inner"]);
        // VFG edge from the callee store to the caller load.
        let store_label = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Store { .. }))
            .unwrap();
        let edge = r.vfg.edges().iter().any(|e| {
            e.kind == EdgeKind::DataDep
                && matches!(r.vfg.kind(e.from), NodeKind::Def { label, .. } if label == store_label)
        });
        assert!(edge, "expected DataDep edge anchored at the callee store");
    }

    #[test]
    fn caller_store_visible_to_callee_load() {
        let (prog, _pool, r) = analyze(
            "fn reader(slot) { y = *slot; use y; }
             fn main() { cell = alloc c; v = alloc inner; *cell = v; call reader(cell); }",
        );
        let reader = prog.func_by_name("reader").unwrap();
        let y = prog.var_by_name(reader, "y").unwrap();
        // Symbolically y = DerefParam(0); the caller-side connection is
        // the DataDep VFG edge from main's store to reader's load.
        assert!(r.pgtop[y.index()]
            .iter()
            .any(|e| e.value == Sym::DerefParam(0)));
        let store_label = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Store { .. }))
            .unwrap();
        let load_label = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Load { .. }))
            .unwrap();
        let edge = r.vfg.edges().iter().any(|e| {
            e.kind == EdgeKind::DataDep
                && matches!(r.vfg.kind(e.from), NodeKind::Def { label, .. } if label == store_label)
                && matches!(r.vfg.kind(e.to), NodeKind::Def { label, .. } if label == load_label)
        });
        assert!(edge, "expected store→load edge across the call boundary");
    }

    #[test]
    fn null_flows_through_memory() {
        let (prog, _pool, r) = analyze(
            "fn main() { cell = alloc c; n = null; *cell = n; y = *cell; use y; }",
        );
        let f = prog.func_by_name("main").unwrap();
        let y = prog.var_by_name(f, "y").unwrap();
        assert!(r.pgtop[y.index()].iter().any(|e| e.value == Sym::Null));
    }

    #[test]
    fn fork_args_bind_but_no_summary_applies() {
        let (prog, _pool, r) = analyze(
            "fn w(slot) { v = alloc inner; *slot = v; }
             fn main() { cell = alloc c; fork t w(cell); y = *cell; use y; }",
        );
        // No intra-thread flow from w's store to main's load: that is
        // interference, Alg. 2's job.
        assert_eq!(pts_objs(&prog, &r, "main", "y"), Vec::<String>::new());
        // But the direct arg→param edge exists (value enters the thread).
        let w = prog.func_by_name("w").unwrap();
        let slot = prog.var_by_name(w, "slot").unwrap();
        let slot_anchor = r.def_site[slot.index()].unwrap();
        let has_param_edge = r.vfg.edges().iter().any(|e| {
            matches!(r.vfg.kind(e.to), NodeKind::Def { var, label } if var == slot && label == slot_anchor)
        });
        assert!(has_param_edge);
    }

    #[test]
    fn stores_and_loads_are_inventoried() {
        let (_prog, _pool, r) = analyze(
            "fn main() { cell = alloc c; v = alloc o; *cell = v; y = *cell; use y; }",
        );
        assert_eq!(r.stores.len(), 1);
        assert_eq!(r.loads.len(), 1);
    }

    #[test]
    fn object_node_feeds_pointer_def() {
        let (prog, _pool, r) = analyze("fn main() { p = alloc o1; use p; }");
        let alloc_label = prog.labels().next().unwrap();
        let has = r.vfg.edges().iter().any(|e| {
            matches!(r.vfg.kind(e.from), NodeKind::Object { label, .. } if label == alloc_label)
        });
        assert!(has);
    }
}
