//! Algorithm 1: thread-modular data-dependence analysis.
//!
//! One pass over each function in bottom-up thread-call-graph order:
//! a flow-sensitive, guarded intra-procedural points-to analysis that
//! resolves local indirect flows (Fig. 6), builds the intra-thread
//! value-flow edges, and summarizes each function's side effects as a
//! procedural transfer function for its callers. Context-dependent
//! pointer values stay symbolic in the formal parameters
//! ([`Sym::Param`], [`Sym::DerefParam`]); fork sites transfer *no*
//! summary (Alg. 1 lines 23–24) — inter-thread effects are the business
//! of the interference analysis.

use std::collections::HashMap;

use canary_ir::{CallGraph, FuncId, Inst, Label, Program, Terminator, VarId};
use canary_smt::{TermId, TermPool};
use canary_vfg::{EdgeKind, NodeId, Vfg};

use crate::pathcond::PathConditions;
use crate::symbols::{insert_guarded, CellSet, Guarded, MemKey, MemVal, PtsSet, Sym};

/// A store statement and its analysis-time facts.
#[derive(Clone, Debug)]
pub struct StoreSite {
    /// The store's label.
    pub label: Label,
    /// The address operand.
    pub addr: VarId,
    /// The stored variable.
    pub src: VarId,
    /// The store's path condition.
    pub guard: TermId,
}

/// A load statement and its analysis-time facts.
#[derive(Clone, Debug)]
pub struct LoadSite {
    /// The load's label.
    pub label: Label,
    /// The address operand.
    pub addr: VarId,
    /// The destination variable.
    pub dst: VarId,
    /// The load's path condition.
    pub guard: TermId,
}

/// A load of a parameter cell's initial contents, exported in the
/// function summary so callers can connect their stores to it.
#[derive(Clone, Debug)]
pub struct ParamLoad {
    /// Formal parameter index whose cell is read.
    pub param: usize,
    /// Destination variable of the load.
    pub dst: VarId,
    /// Label of the load.
    pub label: Label,
    /// Guard (path condition ∧ address guard).
    pub guard: TermId,
}

/// The procedural transfer function of one function (its summary).
#[derive(Clone, Debug, Default)]
pub struct FuncSummary {
    /// Memory state at function exit, restricted to cells visible to the
    /// caller (`Obj` cells and `ParamCell`s).
    pub exit_mem: Vec<(MemKey, CellSet)>,
    /// Loads of parameter-cell initial contents.
    pub param_loads: Vec<ParamLoad>,
    /// Return statements: (label, guard, returned variables).
    pub returns: Vec<(Label, TermId, Vec<VarId>)>,
}

/// Everything Alg. 1 produces, consumed by Alg. 2 and the checkers.
#[derive(Debug)]
pub struct DataflowResult {
    /// The value-flow graph with direct and intra-thread indirect edges.
    pub vfg: Vfg,
    /// Guarded (symbolic) points-to sets per top-level variable.
    pub pgtop: Vec<PtsSet>,
    /// Path condition per statement.
    pub path_conds: PathConditions,
    /// All store sites.
    pub stores: Vec<StoreSite>,
    /// All load sites.
    pub loads: Vec<LoadSite>,
    /// Definition anchor per variable: its defining label (parameters
    /// anchor at their function's first label).
    pub def_site: Vec<Option<Label>>,
    /// Per-function summaries.
    pub summaries: Vec<FuncSummary>,
}

impl DataflowResult {
    /// The VFG node where `v` is defined (its single partial-SSA def, or
    /// its parameter anchor).
    pub fn def_node(&self, vfg: &mut Vfg, v: VarId) -> Option<NodeId> {
        self.def_site[v.index()].map(|l| vfg.def_node(v, l))
    }
}

/// Runs Algorithm 1 over the whole program.
pub fn run(prog: &Program, cg: &CallGraph, pool: &mut TermPool) -> DataflowResult {
    let path_conds = PathConditions::compute(prog, pool);
    let mut a = Analyzer {
        prog,
        cg,
        pool,
        pc: path_conds,
        vfg: Vfg::new(),
        pgtop: vec![Vec::new(); prog.vars.len()],
        def_site: vec![None; prog.vars.len()],
        stores: Vec::new(),
        loads: Vec::new(),
        summaries: vec![FuncSummary::default(); prog.funcs.len()],
        analyzed: vec![false; prog.funcs.len()],
    };
    a.compute_def_sites();
    for f in cg.bottom_up.clone() {
        a.analyze_func(f);
        a.analyzed[f.index()] = true;
    }
    DataflowResult {
        vfg: a.vfg,
        pgtop: a.pgtop,
        path_conds: a.pc,
        stores: a.stores,
        loads: a.loads,
        def_site: a.def_site,
        summaries: a.summaries,
    }
}

struct Analyzer<'p> {
    prog: &'p Program,
    cg: &'p CallGraph,
    pool: &'p mut TermPool,
    pc: PathConditions,
    vfg: Vfg,
    pgtop: Vec<PtsSet>,
    def_site: Vec<Option<Label>>,
    stores: Vec<StoreSite>,
    loads: Vec<LoadSite>,
    summaries: Vec<FuncSummary>,
    analyzed: Vec<bool>,
}

type Mem = HashMap<MemKey, CellSet>;

impl Analyzer<'_> {
    /// Anchors every variable at its defining statement; parameters at
    /// their function's first label.
    fn compute_def_sites(&mut self) {
        for l in self.prog.labels() {
            if let Some(d) = self.prog.inst(l).def() {
                self.def_site[d.index()] = Some(l);
            }
        }
        for func in &self.prog.funcs {
            if let Some(first) = func.labels().next() {
                for &p in &func.params {
                    if self.def_site[p.index()].is_none() {
                        self.def_site[p.index()] = Some(first);
                    }
                }
            }
        }
    }

    fn def_node(&mut self, v: VarId) -> Option<NodeId> {
        let l = self.def_site[v.index()]?;
        Some(self.vfg.def_node(v, l))
    }

    fn analyze_func(&mut self, f: FuncId) {
        let func = self.prog.func(f).clone();
        if func.blocks.iter().all(|b| b.stmts.is_empty()) {
            return;
        }
        // Seed parameter points-to symbolically.
        for (i, &p) in func.params.iter().enumerate() {
            let tt = self.pool.tt();
            insert_guarded(self.pool, &mut self.pgtop[p.index()], tt, Sym::Param(i));
        }
        // Flow-sensitive walk in reverse post-order; block-entry memory
        // states merge predecessor exits.
        let rpo = func.reverse_post_order();
        let mut block_in: HashMap<u32, Mem> = HashMap::new();
        block_in.insert(func.entry.0, Mem::new());
        let mut exit_mem = Mem::new();
        let mut returns: Vec<(Label, TermId, Vec<VarId>)> = Vec::new();
        let mut param_loads: Vec<ParamLoad> = Vec::new();
        for blk in rpo {
            let mut mem = block_in.remove(&blk.0).unwrap_or_default();
            for &l in &func.block(blk).stmts {
                self.transfer(f, l, &mut mem, &mut returns, &mut param_loads);
            }
            match &func.block(blk).term {
                Terminator::Exit => {
                    merge_mem(self.pool, &mut exit_mem, &mem);
                }
                term => {
                    for succ in term.successors() {
                        let entry = block_in.entry(succ.0).or_default();
                        merge_mem(self.pool, entry, &mem);
                    }
                }
            }
        }
        self.summaries[f.index()] = FuncSummary {
            exit_mem: {
                let mut v: Vec<(MemKey, CellSet)> = exit_mem.into_iter().collect();
                v.sort_by_key(|(k, _)| *k);
                v
            },
            param_loads,
            returns,
        };
    }

    #[allow(clippy::too_many_lines)]
    fn transfer(
        &mut self,
        f: FuncId,
        l: Label,
        mem: &mut Mem,
        returns: &mut Vec<(Label, TermId, Vec<VarId>)>,
        param_loads: &mut Vec<ParamLoad>,
    ) {
        let phi = self.pc.guard(l);
        match self.prog.inst(l).clone() {
            Inst::Alloc { dst, obj } => {
                insert_guarded(self.pool, &mut self.pgtop[dst.index()], phi, Sym::Obj(obj));
                let on = self.vfg.obj_node(obj, l);
                let dn = self.vfg.def_node(dst, l);
                self.vfg.add_edge(on, dn, EdgeKind::Direct, phi);
            }
            Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
                self.flow_var(src, dst, l, phi);
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                self.flow_var(lhs, dst, l, phi);
                self.flow_var(rhs, dst, l, phi);
            }
            Inst::FuncAddr { dst, .. } => {
                self.vfg.def_node(dst, l);
            }
            Inst::AssignNull { dst } => {
                insert_guarded(self.pool, &mut self.pgtop[dst.index()], phi, Sym::Null);
                self.vfg.def_node(dst, l);
            }
            Inst::TaintSource { dst } => {
                self.vfg.def_node(dst, l);
            }
            Inst::Load { dst, addr } => {
                self.loads.push(LoadSite {
                    label: l,
                    addr,
                    dst,
                    guard: phi,
                });
                let dn = self.vfg.def_node(dst, l);
                let addr_pts = self.pgtop[addr.index()].clone();
                for Guarded { guard: gamma, value: sym } in addr_pts {
                    let key = match sym {
                        Sym::Obj(o) => MemKey::Obj(o),
                        Sym::Param(i) => MemKey::ParamCell(i),
                        Sym::Null | Sym::DerefParam(_) => continue,
                    };
                    let base = self.pool.and2(phi, gamma);
                    if let Some(cells) = mem.get(&key).cloned() {
                        for Guarded { guard: delta, value: val } in cells {
                            let g = self.pool.and2(base, delta);
                            if g == self.pool.ff() {
                                continue;
                            }
                            if let Some(ptee) = val.pointee {
                                insert_guarded(self.pool, &mut self.pgtop[dst.index()], g, ptee);
                            }
                            if let Some((sl, sv)) = val.origin {
                                let sn = self.vfg.def_node(sv, sl);
                                self.vfg.add_edge(sn, dn, EdgeKind::DataDep, g);
                            }
                        }
                    }
                    if let MemKey::ParamCell(i) = key {
                        // The cell's initial (caller-provided) contents.
                        insert_guarded(
                            self.pool,
                            &mut self.pgtop[dst.index()],
                            base,
                            Sym::DerefParam(i),
                        );
                        param_loads.push(ParamLoad {
                            param: i,
                            dst,
                            label: l,
                            guard: base,
                        });
                    }
                }
            }
            Inst::Store { addr, src } => {
                self.stores.push(StoreSite {
                    label: l,
                    addr,
                    src,
                    guard: phi,
                });
                // Direct edge: the stored value's def flows into the
                // store occurrence node `src@ℓ` (the `a@ℓ3` of Fig. 2b).
                let store_node = self.vfg.def_node(src, l);
                if let Some(sn) = self.def_node(src) {
                    if sn != store_node {
                        self.vfg.add_edge(sn, store_node, EdgeKind::Direct, phi);
                    }
                }
                let addr_pts = self.pgtop[addr.index()].clone();
                let strong = addr_pts.len() == 1;
                let src_pts = self.pgtop[src.index()].clone();
                for Guarded { guard: gamma, value: sym } in addr_pts {
                    let key = match sym {
                        Sym::Obj(o) => MemKey::Obj(o),
                        Sym::Param(i) => MemKey::ParamCell(i),
                        Sym::Null | Sym::DerefParam(_) => continue,
                    };
                    let base = self.pool.and2(phi, gamma);
                    let mut new_entries: CellSet = Vec::new();
                    if src_pts.is_empty() {
                        insert_guarded(
                            self.pool,
                            &mut new_entries,
                            base,
                            MemVal {
                                pointee: None,
                                origin: Some((l, src)),
                            },
                        );
                    } else {
                        for Guarded { guard: delta, value: s } in &src_pts {
                            let g = self.pool.and2(base, *delta);
                            insert_guarded(
                                self.pool,
                                &mut new_entries,
                                g,
                                MemVal {
                                    pointee: Some(*s),
                                    origin: Some((l, src)),
                                },
                            );
                        }
                    }
                    let cell = mem.entry(key).or_default();
                    if strong {
                        // Alg. 1 line 16–17: singleton ⇒ strong update.
                        *cell = new_entries;
                    } else {
                        for e in new_entries {
                            insert_guarded(self.pool, cell, e.guard, e.value);
                        }
                    }
                }
            }
            Inst::Call { dsts, callee: _, args } => {
                for &g in self.cg.targets(l) {
                    self.bind_args(g, &args, phi);
                    if self.analyzed[g.index()] {
                        self.apply_summary(f, g, l, &dsts, &args, phi, mem, param_loads);
                    }
                }
            }
            Inst::Fork { entry: _, args, .. } => {
                // Bind arguments into the thread entry (value flows into
                // the child), but apply no summary: interference is
                // Alg. 2's job (Alg. 1 lines 23–24).
                for &g in self.cg.targets(l) {
                    self.bind_args(g, &args, phi);
                }
            }
            Inst::Free { ptr } | Inst::Deref { ptr } | Inst::TaintSink { src: ptr } => {
                let un = self.vfg.def_node(ptr, l);
                if let Some(dn) = self.def_node(ptr) {
                    if dn != un {
                        self.vfg.add_edge(dn, un, EdgeKind::Direct, phi);
                    }
                }
            }
            Inst::Return { vals } => {
                for &v in &vals {
                    self.def_node(v);
                }
                returns.push((l, phi, vals));
            }
            Inst::Join { .. }
            | Inst::Lock { .. }
            | Inst::Unlock { .. }
            | Inst::Wait { .. }
            | Inst::Notify { .. }
            | Inst::Nop => {}
        }
    }

    /// `dst = src` style flow: guarded points-to copy + direct edge.
    fn flow_var(&mut self, src: VarId, dst: VarId, l: Label, phi: TermId) {
        let entries = self.pgtop[src.index()].clone();
        for Guarded { guard, value } in entries {
            let g = self.pool.and2(guard, phi);
            insert_guarded(self.pool, &mut self.pgtop[dst.index()], g, value);
        }
        let dn = self.vfg.def_node(dst, l);
        if let Some(sn) = self.def_node(src) {
            self.vfg.add_edge(sn, dn, EdgeKind::Direct, phi);
        }
    }

    /// Direct argument→parameter value-flow edges for a call or fork.
    fn bind_args(&mut self, callee: FuncId, args: &[VarId], phi: TermId) {
        let params = self.prog.func(callee).params.clone();
        for (i, &a) in args.iter().enumerate() {
            let Some(&p) = params.get(i) else { continue };
            let (Some(an), Some(pn)) = (self.def_node(a), self.def_node(p)) else {
                continue;
            };
            self.vfg.add_edge(an, pn, EdgeKind::Direct, phi);
        }
    }

    /// Applies `callee`'s procedural transfer function at a call site
    /// (Alg. 1 lines 21–22).
    #[allow(clippy::too_many_arguments)]
    fn apply_summary(
        &mut self,
        caller: FuncId,
        callee: FuncId,
        call_label: Label,
        dsts: &[VarId],
        args: &[VarId],
        phi: TermId,
        mem: &mut Mem,
        caller_param_loads: &mut Vec<ParamLoad>,
    ) {
        let summary = self.summaries[callee.index()].clone();
        // 1. Returns: value flow + substituted points-to. The edge
        // leaves the returned variable's *definition* node so the flow
        // chain from its producers stays connected.
        for (rl, rguard, vals) in &summary.returns {
            for (k, &dst) in dsts.iter().enumerate() {
                let Some(&rv) = vals.get(k) else { continue };
                let g = self.pool.and2(phi, *rguard);
                let Some(rn) = self.def_node(rv) else { continue };
                let _ = rl;
                let dn = self.vfg.def_node(dst, call_label);
                self.vfg.add_edge(rn, dn, EdgeKind::Direct, g);
                let rpts = self.pgtop[rv.index()].clone();
                for Guarded { guard, value } in rpts {
                    let base = self.pool.and2(g, guard);
                    for (sg, s) in self.subst_sym(value, args, mem) {
                        let gg = self.pool.and2(base, sg);
                        if let Some(s) = s {
                            insert_guarded(self.pool, &mut self.pgtop[dst.index()], gg, s);
                        }
                    }
                }
            }
        }
        // 2. Exit memory effects, rebased into the caller's state.
        for (key, cells) in &summary.exit_mem {
            let resolved_keys: Vec<(TermId, MemKey)> = match key {
                MemKey::Obj(o) => vec![(self.pool.tt(), MemKey::Obj(*o))],
                MemKey::ParamCell(i) => {
                    let Some(&arg) = args.get(*i) else { continue };
                    self.pgtop[arg.index()]
                        .clone()
                        .into_iter()
                        .filter_map(|e| match e.value {
                            Sym::Obj(o) => Some((e.guard, MemKey::Obj(o))),
                            Sym::Param(j) => Some((e.guard, MemKey::ParamCell(j))),
                            _ => None,
                        })
                        .collect()
                }
            };
            for (kg, rkey) in resolved_keys {
                for Guarded { guard: delta, value: val } in cells {
                    let base3 = self.pool.and2(phi, kg);
                    let base = self.pool.and2(base3, *delta);
                    let pointees: Vec<(TermId, Option<Sym>)> = match val.pointee {
                        None => vec![(self.pool.tt(), None)],
                        Some(s) => self.subst_sym(s, args, mem),
                    };
                    for (sg, ptee) in pointees {
                        let g = self.pool.and2(base, sg);
                        let cell = mem.entry(rkey).or_default();
                        insert_guarded(
                            self.pool,
                            cell,
                            g,
                            MemVal {
                                pointee: ptee,
                                origin: val.origin,
                            },
                        );
                    }
                }
            }
        }
        // 3. Parameter-cell loads: connect the caller's store origins to
        //    the callee's load destinations.
        for pl in &summary.param_loads {
            let Some(&arg) = args.get(pl.param) else {
                continue;
            };
            let arg_pts = self.pgtop[arg.index()].clone();
            for Guarded { guard: ga, value: s } in arg_pts {
                let base2 = self.pool.and2(phi, ga);
                let base = self.pool.and2(base2, pl.guard);
                match s {
                    Sym::Obj(o) => {
                        let Some(cells) = mem.get(&MemKey::Obj(o)).cloned() else {
                            continue;
                        };
                        for Guarded { guard: delta, value: val } in cells {
                            let Some((sl, sv)) = val.origin else { continue };
                            let g = self.pool.and2(base, delta);
                            if g == self.pool.ff() {
                                continue;
                            }
                            let sn = self.vfg.def_node(sv, sl);
                            let dn = self.vfg.def_node(pl.dst, pl.label);
                            self.vfg.add_edge(sn, dn, EdgeKind::DataDep, g);
                        }
                    }
                    Sym::Param(j) => {
                        // Compose into the caller's own summary.
                        caller_param_loads.push(ParamLoad {
                            param: j,
                            dst: pl.dst,
                            label: pl.label,
                            guard: base,
                        });
                        let _ = caller;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Substitutes a callee-relative symbol into the caller's context.
    fn subst_sym(&mut self, s: Sym, args: &[VarId], mem: &Mem) -> Vec<(TermId, Option<Sym>)> {
        match s {
            Sym::Obj(_) | Sym::Null => vec![(self.pool.tt(), Some(s))],
            Sym::Param(i) => {
                let Some(&arg) = args.get(i) else {
                    return Vec::new();
                };
                self.pgtop[arg.index()]
                    .clone()
                    .into_iter()
                    .map(|e| (e.guard, Some(e.value)))
                    .collect()
            }
            Sym::DerefParam(i) => {
                let Some(&arg) = args.get(i) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for e in self.pgtop[arg.index()].clone() {
                    match e.value {
                        Sym::Obj(o) => {
                            if let Some(cells) = mem.get(&MemKey::Obj(o)) {
                                for c in cells {
                                    let g = self.pool.and2(e.guard, c.guard);
                                    out.push((g, c.value.pointee));
                                }
                            }
                        }
                        Sym::Param(j) => out.push((e.guard, Some(Sym::DerefParam(j)))),
                        _ => {}
                    }
                }
                out
            }
        }
    }
}

/// Merges `src` memory into `dst` (guarded union).
fn merge_mem(pool: &mut TermPool, dst: &mut Mem, src: &Mem) {
    for (k, cells) in src {
        let d = dst.entry(*k).or_default();
        for c in cells {
            insert_guarded(pool, d, c.guard, c.value);
        }
    }
}
