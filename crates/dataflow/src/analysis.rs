//! Algorithm 1: thread-modular data-dependence analysis.
//!
//! One pass over each function in bottom-up thread-call-graph order:
//! a flow-sensitive, guarded intra-procedural points-to analysis that
//! resolves local indirect flows (Fig. 6), builds the intra-thread
//! value-flow edges, and summarizes each function's side effects as a
//! procedural transfer function for its callers. Context-dependent
//! pointer values stay symbolic in the formal parameters
//! ([`Sym::Param`], [`Sym::DerefParam`]); fork sites transfer *no*
//! summary (Alg. 1 lines 23–24) — inter-thread effects are the business
//! of the interference analysis.
//!
//! # Parallel execution
//!
//! The bottom-up walk is scheduled level by level over
//! [`CallGraph::bottom_up_levels`]: call-graph SCCs whose callees all
//! sit in lower levels form one level's tasks and are mutually
//! independent, so [`run_with`] fans them out across a worker pool.
//! Each task analyzes its functions against *frozen* level-start state
//! — shared points-to sets, the published summary table, the base term
//! pool and VFG — and accumulates every side effect locally
//! ([`canary_smt::ScratchPool`], [`canary_vfg::VfgScratch`], a
//! points-to overlay, private summaries). Task outputs are then
//! committed in task order. Because a task's output is a pure function
//! of the level-start state and the commit order is fixed, the final
//! result — term ids, VFG numbering, report output — is byte-identical
//! for any worker count; `threads == 1` runs the very same task/commit
//! machinery inline.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

use canary_ir::{CallGraph, FuncId, Inst, Label, Program, Terminator, VarId};
use canary_smt::{ScratchLog, ScratchPool, TermBuild, TermId, TermPool, TermRemap};
use canary_trace::{Tracer, LANE_ALG1};
use canary_vfg::{EdgeKind, NodeId, Vfg, VfgLog, VfgScratch};
use parking_lot::RwLock;

use crate::exec;
use crate::pathcond::PathConditions;
use crate::symbols::{insert_guarded, CellSet, Guarded, MemKey, MemVal, PtsSet, Sym};

/// A store statement and its analysis-time facts.
#[derive(Clone, Debug)]
pub struct StoreSite {
    /// The store's label.
    pub label: Label,
    /// The address operand.
    pub addr: VarId,
    /// The stored variable.
    pub src: VarId,
    /// The store's path condition.
    pub guard: TermId,
}

/// A load statement and its analysis-time facts.
#[derive(Clone, Debug)]
pub struct LoadSite {
    /// The load's label.
    pub label: Label,
    /// The address operand.
    pub addr: VarId,
    /// The destination variable.
    pub dst: VarId,
    /// The load's path condition.
    pub guard: TermId,
}

/// A load of a parameter cell's initial contents, exported in the
/// function summary so callers can connect their stores to it.
#[derive(Clone, Debug)]
pub struct ParamLoad {
    /// Formal parameter index whose cell is read.
    pub param: usize,
    /// Destination variable of the load.
    pub dst: VarId,
    /// Label of the load.
    pub label: Label,
    /// Guard (path condition ∧ address guard).
    pub guard: TermId,
}

/// The procedural transfer function of one function (its summary).
#[derive(Clone, Debug, Default)]
pub struct FuncSummary {
    /// Memory state at function exit, restricted to cells visible to the
    /// caller (`Obj` cells and `ParamCell`s).
    pub exit_mem: Vec<(MemKey, CellSet)>,
    /// Loads of parameter-cell initial contents.
    pub param_loads: Vec<ParamLoad>,
    /// Return statements: (label, guard, returned variables).
    pub returns: Vec<(Label, TermId, Vec<VarId>)>,
}

/// Per-function cost profile of Alg. 1 — the per-summary accounting the
/// observability layer reports (Fig. 7a localizes front-end time to
/// functions). Everything except `wall` is deterministic.
#[derive(Clone, Debug)]
pub struct FuncProfile {
    /// Function index.
    pub func: usize,
    /// Function name.
    pub name: String,
    /// Statements run through the transfer function.
    pub stmt_visits: u64,
    /// Basic blocks walked.
    pub blocks: u64,
    /// Guarded cells in the published summary (transfer-function size).
    pub summary_cells: u64,
    /// Store sites inventoried while analyzing this function.
    pub stores: u64,
    /// Load sites inventoried while analyzing this function.
    pub loads: u64,
    /// Wall time spent in `analyze_func` (not deterministic).
    pub wall: Duration,
}

/// Everything Alg. 1 produces, consumed by Alg. 2 and the checkers.
#[derive(Debug)]
pub struct DataflowResult {
    /// The value-flow graph with direct and intra-thread indirect edges.
    pub vfg: Vfg,
    /// Guarded (symbolic) points-to sets per top-level variable.
    pub pgtop: Vec<PtsSet>,
    /// Path condition per statement.
    pub path_conds: PathConditions,
    /// All store sites.
    pub stores: Vec<StoreSite>,
    /// All load sites.
    pub loads: Vec<LoadSite>,
    /// Definition anchor per variable: its defining label (parameters
    /// anchor at their function's first label).
    pub def_site: Vec<Option<Label>>,
    /// Per-function summaries.
    pub summaries: Vec<FuncSummary>,
    /// Number of scheduler tasks (call-graph SCCs) executed — the unit
    /// the per-phase metrics report.
    pub tasks: usize,
    /// Per-function cost profiles, in commit (task) order — i.e. in a
    /// deterministic order independent of the worker count.
    pub func_profiles: Vec<FuncProfile>,
}

impl DataflowResult {
    /// The VFG node where `v` is defined (its single partial-SSA def, or
    /// its parameter anchor).
    pub fn def_node(&self, vfg: &mut Vfg, v: VarId) -> Option<NodeId> {
        self.def_site[v.index()].map(|l| vfg.def_node(v, l))
    }
}

/// Runs Algorithm 1 over the whole program on the calling thread.
///
/// Identical to [`run_with`] at one worker — the serial path *is* the
/// parallel path, so results are comparable byte-for-byte.
pub fn run(prog: &Program, cg: &CallGraph, pool: &mut TermPool) -> DataflowResult {
    run_with(prog, cg, pool, 1)
}

/// Runs Algorithm 1 with up to `threads` workers analyzing independent
/// call-graph SCCs of each bottom-up level concurrently.
///
/// Output is guaranteed byte-identical across `threads` values: worker
/// scheduling affects only wall time, never term ids, VFG numbering, or
/// any downstream report.
pub fn run_with(
    prog: &Program,
    cg: &CallGraph,
    pool: &mut TermPool,
    threads: usize,
) -> DataflowResult {
    run_traced(prog, cg, pool, threads, &Tracer::disabled())
}

/// [`run_with`] plus observability: per-level and per-function spans on
/// the Alg. 1 lane, and per-function [`FuncProfile`]s in the result.
/// With a disabled tracer this *is* `run_with` — the spans cost one
/// branch each.
pub fn run_traced(
    prog: &Program,
    cg: &CallGraph,
    pool: &mut TermPool,
    threads: usize,
    tracer: &Tracer,
) -> DataflowResult {
    let path_conds = PathConditions::compute(prog, pool);
    let def_site = compute_def_sites(prog);
    let mut shared = Shared {
        vfg: Vfg::new(),
        pgtop: vec![Vec::new(); prog.vars.len()],
        stores: Vec::new(),
        loads: Vec::new(),
        summaries: RwLock::new(vec![FuncSummary::default(); prog.funcs.len()]),
        analyzed: vec![false; prog.funcs.len()],
        func_profiles: Vec::new(),
    };
    let mut tasks = 0;
    let levels = cg.bottom_up_levels();
    let total_levels = levels.len();
    let total_tasks: usize = levels.iter().map(|l| l.len()).sum();
    let t_start = std::time::Instant::now();
    for (lvl, level) in levels.into_iter().enumerate() {
        tasks += level.len();
        let mut level_span = tracer.span(LANE_ALG1, "alg1", lvl as u64, || {
            format!("alg1.level:{lvl}")
        });
        canary_trace::log(canary_trace::LogLevel::Debug, || {
            format!("alg1: level {lvl}, {} task(s)", level.len())
        });
        // Fan the level's tasks out against frozen state; reborrows end
        // with the block, handing exclusive access back to the commits.
        let outs = {
            let shared_ref = &shared;
            let frozen: &TermPool = pool;
            let pc = &path_conds;
            let ds = &def_site;
            exec::run_indexed(level.len(), threads, |i| {
                run_task(prog, cg, pc, ds, shared_ref, frozen, &level[i], tracer)
            })
        };
        level_span.record("tasks", level.len() as u64);
        level_span.record(
            "scratch_terms",
            outs.iter().map(|o| o.terms.len() as u64).sum(),
        );
        for out in outs {
            commit_task(&mut shared, pool, out);
        }
        level_span.finish();
        canary_trace::log(canary_trace::LogLevel::Summary, || {
            let done_levels = lvl + 1;
            let elapsed = t_start.elapsed();
            // ETA scales remaining *tasks* by observed per-task cost:
            // levels are wildly uneven, task counts are the honest unit.
            let eta = if done_levels < total_levels && tasks > 0 {
                let per_task = elapsed.div_f64(tasks as f64);
                format!(", eta {:?}", per_task.mul_f64((total_tasks - tasks) as f64))
            } else {
                String::new()
            };
            format!(
                "alg1: level {done_levels}/{total_levels} committed, \
                 {tasks}/{total_tasks} task(s) in {elapsed:?}{eta}"
            )
        });
    }
    DataflowResult {
        vfg: shared.vfg,
        pgtop: shared.pgtop,
        path_conds,
        stores: shared.stores,
        loads: shared.loads,
        def_site,
        summaries: shared.summaries.into_inner(),
        tasks,
        func_profiles: shared.func_profiles,
    }
}

/// Anchors every variable at its defining statement; parameters at
/// their function's first label.
fn compute_def_sites(prog: &Program) -> Vec<Option<Label>> {
    let mut def_site = vec![None; prog.vars.len()];
    for l in prog.labels() {
        if let Some(d) = prog.inst(l).def() {
            def_site[d.index()] = Some(l);
        }
    }
    for func in &prog.funcs {
        if let Some(first) = func.labels().next() {
            for &p in &func.params {
                if def_site[p.index()].is_none() {
                    def_site[p.index()] = Some(first);
                }
            }
        }
    }
    def_site
}

/// Committed analysis state, frozen while a level's tasks run. The
/// summary table sits behind a lock because it is the one piece of
/// state workers read per-callee while the coordinator publishes
/// between levels; everything else is written only at commit time.
struct Shared {
    vfg: Vfg,
    pgtop: Vec<PtsSet>,
    stores: Vec<StoreSite>,
    loads: Vec<LoadSite>,
    summaries: RwLock<Vec<FuncSummary>>,
    analyzed: Vec<bool>,
    func_profiles: Vec<FuncProfile>,
}

/// Everything one task produced, in scratch-relative term ids. Owned
/// (no borrows of the frozen state), so the coordinator can commit
/// outputs while later levels' borrows are long gone.
struct TaskOut {
    funcs: Vec<usize>,
    terms: ScratchLog,
    vfg: VfgLog,
    pgtop: Vec<(usize, PtsSet)>,
    summaries: Vec<(usize, FuncSummary)>,
    stores: Vec<StoreSite>,
    loads: Vec<LoadSite>,
    profiles: Vec<FuncProfile>,
}

/// Analyzes one task (one call-graph SCC) against frozen shared state.
#[allow(clippy::too_many_arguments)]
fn run_task(
    prog: &Program,
    cg: &CallGraph,
    pc: &PathConditions,
    def_site: &[Option<Label>],
    shared: &Shared,
    pool: &TermPool,
    members: &[FuncId],
    tracer: &Tracer,
) -> TaskOut {
    let mut ctx = TaskCtx {
        prog,
        cg,
        pc,
        def_site,
        shared,
        pool: ScratchPool::new(pool),
        vfg: VfgScratch::new(&shared.vfg),
        pgtop: HashMap::new(),
        summaries: HashMap::new(),
        analyzed_local: HashSet::new(),
        stores: Vec::new(),
        loads: Vec::new(),
    };
    let mut profiles = Vec::with_capacity(members.len());
    for &f in members {
        let stores_before = ctx.stores.len() as u64;
        let loads_before = ctx.loads.len() as u64;
        let started = Instant::now();
        let visit = ctx.analyze_func(f);
        let wall = started.elapsed();
        ctx.analyzed_local.insert(f.index());
        let profile = FuncProfile {
            func: f.index(),
            name: prog.func(f).name.clone(),
            stmt_visits: visit.stmts,
            blocks: visit.blocks,
            summary_cells: visit.summary_cells,
            stores: ctx.stores.len() as u64 - stores_before,
            loads: ctx.loads.len() as u64 - loads_before,
            wall,
        };
        tracer.event(
            LANE_ALG1,
            "alg1.func",
            f.index() as u64,
            || format!("alg1.func:{}", profile.name),
            started,
            wall,
            || {
                vec![
                    ("stmt_visits", profile.stmt_visits),
                    ("blocks", profile.blocks),
                    ("summary_cells", profile.summary_cells),
                    ("stores", profile.stores),
                    ("loads", profile.loads),
                ]
            },
        );
        profiles.push(profile);
    }
    let mut pgtop: Vec<(usize, PtsSet)> = ctx.pgtop.into_iter().collect();
    pgtop.sort_unstable_by_key(|&(v, _)| v);
    let mut summaries: Vec<(usize, FuncSummary)> = ctx.summaries.into_iter().collect();
    summaries.sort_unstable_by_key(|&(f, _)| f);
    TaskOut {
        funcs: members.iter().map(|f| f.index()).collect(),
        terms: ctx.pool.into_log(),
        vfg: ctx.vfg.into_log(),
        pgtop,
        summaries,
        stores: ctx.stores,
        loads: ctx.loads,
        profiles,
    }
}

/// Merges one task's output into the shared state. Called in task order
/// — the single point that fixes the global numbering of everything the
/// workers produced.
fn commit_task(shared: &mut Shared, pool: &mut TermPool, out: TaskOut) {
    let remap = out.terms.commit(pool);
    out.vfg.commit(&mut shared.vfg, &remap);
    for (v, mut set) in out.pgtop {
        remap_guards(&remap, &mut set);
        // Tasks only touch their own functions' variables, so this
        // overwrite never clobbers a sibling's work.
        shared.pgtop[v] = set;
    }
    for mut s in out.stores {
        s.guard = remap.remap(s.guard);
        shared.stores.push(s);
    }
    for mut l in out.loads {
        l.guard = remap.remap(l.guard);
        shared.loads.push(l);
    }
    let mut table = shared.summaries.write();
    for (f, mut summary) in out.summaries {
        for (_, cells) in &mut summary.exit_mem {
            remap_guards(&remap, cells);
        }
        for pl in &mut summary.param_loads {
            pl.guard = remap.remap(pl.guard);
        }
        for (_, g, _) in &mut summary.returns {
            *g = remap.remap(*g);
        }
        table[f] = summary;
    }
    drop(table);
    for f in out.funcs {
        shared.analyzed[f] = true;
    }
    shared.func_profiles.extend(out.profiles);
}

fn remap_guards<T>(remap: &TermRemap, set: &mut [Guarded<T>]) {
    for e in set {
        e.guard = remap.remap(e.guard);
    }
}

struct TaskCtx<'e> {
    prog: &'e Program,
    cg: &'e CallGraph,
    pc: &'e PathConditions,
    def_site: &'e [Option<Label>],
    shared: &'e Shared,
    pool: ScratchPool<'e>,
    vfg: VfgScratch<'e>,
    /// Points-to overlay for variables this task defines; reads fall
    /// through to the committed sets.
    pgtop: HashMap<usize, PtsSet>,
    /// Summaries of this task's own functions (intra-SCC visibility
    /// before publication).
    summaries: HashMap<usize, FuncSummary>,
    analyzed_local: HashSet<usize>,
    stores: Vec<StoreSite>,
    loads: Vec<LoadSite>,
}

/// Work counters one `analyze_func` run produces (feeds [`FuncProfile`]).
#[derive(Clone, Copy, Debug, Default)]
struct FuncVisit {
    stmts: u64,
    blocks: u64,
    summary_cells: u64,
}

/// Flow-sensitive memory state: key-ordered so every iteration —
/// block-exit merges above all — visits cells in one canonical order
/// regardless of insertion history. (A hash map here made term-creation
/// order, and with it the whole pool, run-to-run nondeterministic.)
type Mem = BTreeMap<MemKey, CellSet>;

impl TaskCtx<'_> {
    /// The current points-to set of `v`: this task's overlay, else the
    /// committed state.
    fn pg(&self, v: VarId) -> PtsSet {
        match self.pgtop.get(&v.index()) {
            Some(set) => set.clone(),
            None => self.shared.pgtop[v.index()].clone(),
        }
    }

    /// Inserts into `v`'s points-to set, copying the committed set into
    /// the overlay on first write.
    fn pg_insert(&mut self, v: VarId, guard: TermId, value: Sym) {
        use std::collections::hash_map::Entry;
        let set = match self.pgtop.entry(v.index()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(self.shared.pgtop[v.index()].clone()),
        };
        insert_guarded(&mut self.pool, set, guard, value);
    }

    /// Whether `f`'s summary is ready: published in a lower level, or
    /// produced earlier within this task's SCC.
    fn is_analyzed(&self, f: FuncId) -> bool {
        self.analyzed_local.contains(&f.index()) || self.shared.analyzed[f.index()]
    }

    /// The summary of `f` as visible to this task.
    fn summary_of(&self, f: FuncId) -> FuncSummary {
        if let Some(s) = self.summaries.get(&f.index()) {
            return s.clone();
        }
        self.shared.summaries.read()[f.index()].clone()
    }

    fn def_node(&mut self, v: VarId) -> Option<NodeId> {
        let l = self.def_site[v.index()]?;
        Some(self.vfg.def_node(v, l))
    }

    fn analyze_func(&mut self, f: FuncId) -> FuncVisit {
        let mut visit = FuncVisit::default();
        let func = self.prog.func(f).clone();
        if func.blocks.iter().all(|b| b.stmts.is_empty()) {
            return visit;
        }
        // Seed parameter points-to symbolically.
        for (i, &p) in func.params.iter().enumerate() {
            let tt = self.pool.tt();
            self.pg_insert(p, tt, Sym::Param(i));
        }
        // Flow-sensitive walk in reverse post-order; block-entry memory
        // states merge predecessor exits.
        let rpo = func.reverse_post_order();
        let mut block_in: HashMap<u32, Mem> = HashMap::new();
        block_in.insert(func.entry.0, Mem::new());
        let mut exit_mem = Mem::new();
        let mut returns: Vec<(Label, TermId, Vec<VarId>)> = Vec::new();
        let mut param_loads: Vec<ParamLoad> = Vec::new();
        for blk in rpo {
            visit.blocks += 1;
            let mut mem = block_in.remove(&blk.0).unwrap_or_default();
            for &l in &func.block(blk).stmts {
                visit.stmts += 1;
                self.transfer(f, l, &mut mem, &mut returns, &mut param_loads);
            }
            match &func.block(blk).term {
                Terminator::Exit => {
                    merge_mem(&mut self.pool, &mut exit_mem, &mem);
                }
                term => {
                    for succ in term.successors() {
                        let entry = block_in.entry(succ.0).or_default();
                        merge_mem(&mut self.pool, entry, &mem);
                    }
                }
            }
        }
        visit.summary_cells = exit_mem.values().map(|c| c.len() as u64).sum::<u64>()
            + param_loads.len() as u64
            + returns.len() as u64;
        self.summaries.insert(
            f.index(),
            FuncSummary {
                exit_mem: {
                    let mut v: Vec<(MemKey, CellSet)> = exit_mem.into_iter().collect();
                    v.sort_by_key(|(k, _)| *k);
                    v
                },
                param_loads,
                returns,
            },
        );
        visit
    }

    #[allow(clippy::too_many_lines)]
    fn transfer(
        &mut self,
        f: FuncId,
        l: Label,
        mem: &mut Mem,
        returns: &mut Vec<(Label, TermId, Vec<VarId>)>,
        param_loads: &mut Vec<ParamLoad>,
    ) {
        let phi = self.pc.guard(l);
        match self.prog.inst(l).clone() {
            Inst::Alloc { dst, obj } => {
                self.pg_insert(dst, phi, Sym::Obj(obj));
                let on = self.vfg.obj_node(obj, l);
                let dn = self.vfg.def_node(dst, l);
                self.vfg.add_edge(on, dn, EdgeKind::Direct, phi);
            }
            Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
                self.flow_var(src, dst, l, phi);
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                self.flow_var(lhs, dst, l, phi);
                self.flow_var(rhs, dst, l, phi);
            }
            Inst::FuncAddr { dst, .. } => {
                self.vfg.def_node(dst, l);
            }
            Inst::AssignNull { dst } => {
                self.pg_insert(dst, phi, Sym::Null);
                self.vfg.def_node(dst, l);
            }
            Inst::TaintSource { dst } => {
                self.vfg.def_node(dst, l);
            }
            Inst::Load { dst, addr } => {
                self.loads.push(LoadSite {
                    label: l,
                    addr,
                    dst,
                    guard: phi,
                });
                let dn = self.vfg.def_node(dst, l);
                let addr_pts = self.pg(addr);
                for Guarded { guard: gamma, value: sym } in addr_pts {
                    let key = match sym {
                        Sym::Obj(o) => MemKey::Obj(o),
                        Sym::Param(i) => MemKey::ParamCell(i),
                        Sym::Null | Sym::DerefParam(_) => continue,
                    };
                    let base = self.pool.and2(phi, gamma);
                    if let Some(cells) = mem.get(&key).cloned() {
                        for Guarded { guard: delta, value: val } in cells {
                            let g = self.pool.and2(base, delta);
                            if g == self.pool.ff() {
                                continue;
                            }
                            if let Some(ptee) = val.pointee {
                                self.pg_insert(dst, g, ptee);
                            }
                            if let Some((sl, sv)) = val.origin {
                                let sn = self.vfg.def_node(sv, sl);
                                self.vfg.add_edge(sn, dn, EdgeKind::DataDep, g);
                            }
                        }
                    }
                    if let MemKey::ParamCell(i) = key {
                        // The cell's initial (caller-provided) contents.
                        self.pg_insert(dst, base, Sym::DerefParam(i));
                        param_loads.push(ParamLoad {
                            param: i,
                            dst,
                            label: l,
                            guard: base,
                        });
                    }
                }
            }
            Inst::Store { addr, src } => {
                self.stores.push(StoreSite {
                    label: l,
                    addr,
                    src,
                    guard: phi,
                });
                // Direct edge: the stored value's def flows into the
                // store occurrence node `src@ℓ` (the `a@ℓ3` of Fig. 2b).
                let store_node = self.vfg.def_node(src, l);
                if let Some(sn) = self.def_node(src) {
                    if sn != store_node {
                        self.vfg.add_edge(sn, store_node, EdgeKind::Direct, phi);
                    }
                }
                let addr_pts = self.pg(addr);
                let strong = addr_pts.len() == 1;
                let src_pts = self.pg(src);
                for Guarded { guard: gamma, value: sym } in addr_pts {
                    let key = match sym {
                        Sym::Obj(o) => MemKey::Obj(o),
                        Sym::Param(i) => MemKey::ParamCell(i),
                        Sym::Null | Sym::DerefParam(_) => continue,
                    };
                    let base = self.pool.and2(phi, gamma);
                    let mut new_entries: CellSet = Vec::new();
                    if src_pts.is_empty() {
                        insert_guarded(
                            &mut self.pool,
                            &mut new_entries,
                            base,
                            MemVal {
                                pointee: None,
                                origin: Some((l, src)),
                            },
                        );
                    } else {
                        for Guarded { guard: delta, value: s } in &src_pts {
                            let g = self.pool.and2(base, *delta);
                            insert_guarded(
                                &mut self.pool,
                                &mut new_entries,
                                g,
                                MemVal {
                                    pointee: Some(*s),
                                    origin: Some((l, src)),
                                },
                            );
                        }
                    }
                    let cell = mem.entry(key).or_default();
                    if strong {
                        // Alg. 1 line 16–17: singleton ⇒ strong update.
                        *cell = new_entries;
                    } else {
                        for e in new_entries {
                            insert_guarded(&mut self.pool, cell, e.guard, e.value);
                        }
                    }
                }
            }
            Inst::Call { dsts, callee: _, args } => {
                for &g in self.cg.targets(l) {
                    self.bind_args(g, &args, phi);
                    if self.is_analyzed(g) {
                        self.apply_summary(f, g, l, &dsts, &args, phi, mem, param_loads);
                    }
                }
            }
            Inst::Fork { entry: _, args, .. } => {
                // Bind arguments into the thread entry (value flows into
                // the child), but apply no summary: interference is
                // Alg. 2's job (Alg. 1 lines 23–24).
                for &g in self.cg.targets(l) {
                    self.bind_args(g, &args, phi);
                }
            }
            Inst::Free { ptr } | Inst::Deref { ptr } | Inst::TaintSink { src: ptr } => {
                let un = self.vfg.def_node(ptr, l);
                if let Some(dn) = self.def_node(ptr) {
                    if dn != un {
                        self.vfg.add_edge(dn, un, EdgeKind::Direct, phi);
                    }
                }
            }
            Inst::Return { vals } => {
                for &v in &vals {
                    self.def_node(v);
                }
                returns.push((l, phi, vals));
            }
            Inst::Join { .. }
            | Inst::Lock { .. }
            | Inst::Unlock { .. }
            | Inst::Wait { .. }
            | Inst::Notify { .. }
            | Inst::Nop => {}
        }
    }

    /// `dst = src` style flow: guarded points-to copy + direct edge.
    fn flow_var(&mut self, src: VarId, dst: VarId, l: Label, phi: TermId) {
        let entries = self.pg(src);
        for Guarded { guard, value } in entries {
            let g = self.pool.and2(guard, phi);
            self.pg_insert(dst, g, value);
        }
        let dn = self.vfg.def_node(dst, l);
        if let Some(sn) = self.def_node(src) {
            self.vfg.add_edge(sn, dn, EdgeKind::Direct, phi);
        }
    }

    /// Direct argument→parameter value-flow edges for a call or fork.
    fn bind_args(&mut self, callee: FuncId, args: &[VarId], phi: TermId) {
        let params = self.prog.func(callee).params.clone();
        for (i, &a) in args.iter().enumerate() {
            let Some(&p) = params.get(i) else { continue };
            let (Some(an), Some(pn)) = (self.def_node(a), self.def_node(p)) else {
                continue;
            };
            self.vfg.add_edge(an, pn, EdgeKind::Direct, phi);
        }
    }

    /// Applies `callee`'s procedural transfer function at a call site
    /// (Alg. 1 lines 21–22).
    #[allow(clippy::too_many_arguments)]
    fn apply_summary(
        &mut self,
        caller: FuncId,
        callee: FuncId,
        call_label: Label,
        dsts: &[VarId],
        args: &[VarId],
        phi: TermId,
        mem: &mut Mem,
        caller_param_loads: &mut Vec<ParamLoad>,
    ) {
        let summary = self.summary_of(callee);
        // 1. Returns: value flow + substituted points-to. The edge
        // leaves the returned variable's *definition* node so the flow
        // chain from its producers stays connected.
        for (rl, rguard, vals) in &summary.returns {
            for (k, &dst) in dsts.iter().enumerate() {
                let Some(&rv) = vals.get(k) else { continue };
                let g = self.pool.and2(phi, *rguard);
                let Some(rn) = self.def_node(rv) else { continue };
                let _ = rl;
                let dn = self.vfg.def_node(dst, call_label);
                self.vfg.add_edge(rn, dn, EdgeKind::Direct, g);
                let rpts = self.pg(rv);
                for Guarded { guard, value } in rpts {
                    let base = self.pool.and2(g, guard);
                    for (sg, s) in self.subst_sym(value, args, mem) {
                        let gg = self.pool.and2(base, sg);
                        if let Some(s) = s {
                            self.pg_insert(dst, gg, s);
                        }
                    }
                }
            }
        }
        // 2. Exit memory effects, rebased into the caller's state.
        for (key, cells) in &summary.exit_mem {
            let resolved_keys: Vec<(TermId, MemKey)> = match key {
                MemKey::Obj(o) => vec![(self.pool.tt(), MemKey::Obj(*o))],
                MemKey::ParamCell(i) => {
                    let Some(&arg) = args.get(*i) else { continue };
                    self.pg(arg)
                        .into_iter()
                        .filter_map(|e| match e.value {
                            Sym::Obj(o) => Some((e.guard, MemKey::Obj(o))),
                            Sym::Param(j) => Some((e.guard, MemKey::ParamCell(j))),
                            _ => None,
                        })
                        .collect()
                }
            };
            for (kg, rkey) in resolved_keys {
                for Guarded { guard: delta, value: val } in cells {
                    let base3 = self.pool.and2(phi, kg);
                    let base = self.pool.and2(base3, *delta);
                    let pointees: Vec<(TermId, Option<Sym>)> = match val.pointee {
                        None => vec![(self.pool.tt(), None)],
                        Some(s) => self.subst_sym(s, args, mem),
                    };
                    for (sg, ptee) in pointees {
                        let g = self.pool.and2(base, sg);
                        let cell = mem.entry(rkey).or_default();
                        insert_guarded(
                            &mut self.pool,
                            cell,
                            g,
                            MemVal {
                                pointee: ptee,
                                origin: val.origin,
                            },
                        );
                    }
                }
            }
        }
        // 3. Parameter-cell loads: connect the caller's store origins to
        //    the callee's load destinations.
        for pl in &summary.param_loads {
            let Some(&arg) = args.get(pl.param) else {
                continue;
            };
            let arg_pts = self.pg(arg);
            for Guarded { guard: ga, value: s } in arg_pts {
                let base2 = self.pool.and2(phi, ga);
                let base = self.pool.and2(base2, pl.guard);
                match s {
                    Sym::Obj(o) => {
                        let Some(cells) = mem.get(&MemKey::Obj(o)).cloned() else {
                            continue;
                        };
                        for Guarded { guard: delta, value: val } in cells {
                            let Some((sl, sv)) = val.origin else { continue };
                            let g = self.pool.and2(base, delta);
                            if g == self.pool.ff() {
                                continue;
                            }
                            let sn = self.vfg.def_node(sv, sl);
                            let dn = self.vfg.def_node(pl.dst, pl.label);
                            self.vfg.add_edge(sn, dn, EdgeKind::DataDep, g);
                        }
                    }
                    Sym::Param(j) => {
                        // Compose into the caller's own summary.
                        caller_param_loads.push(ParamLoad {
                            param: j,
                            dst: pl.dst,
                            label: pl.label,
                            guard: base,
                        });
                        let _ = caller;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Substitutes a callee-relative symbol into the caller's context.
    fn subst_sym(&mut self, s: Sym, args: &[VarId], mem: &Mem) -> Vec<(TermId, Option<Sym>)> {
        match s {
            Sym::Obj(_) | Sym::Null => vec![(self.pool.tt(), Some(s))],
            Sym::Param(i) => {
                let Some(&arg) = args.get(i) else {
                    return Vec::new();
                };
                self.pg(arg)
                    .into_iter()
                    .map(|e| (e.guard, Some(e.value)))
                    .collect()
            }
            Sym::DerefParam(i) => {
                let Some(&arg) = args.get(i) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for e in self.pg(arg) {
                    match e.value {
                        Sym::Obj(o) => {
                            if let Some(cells) = mem.get(&MemKey::Obj(o)) {
                                for c in cells {
                                    let g = self.pool.and2(e.guard, c.guard);
                                    out.push((g, c.value.pointee));
                                }
                            }
                        }
                        Sym::Param(j) => out.push((e.guard, Some(Sym::DerefParam(j)))),
                        _ => {}
                    }
                }
                out
            }
        }
    }
}

/// Merges `src` memory into `dst` (guarded union). Key-ordered
/// iteration keeps the term-creation order canonical.
fn merge_mem<B: TermBuild>(pool: &mut B, dst: &mut Mem, src: &Mem) {
    for (k, cells) in src {
        let d = dst.entry(*k).or_default();
        for c in cells {
            insert_guarded(pool, d, c.guard, c.value);
        }
    }
}
