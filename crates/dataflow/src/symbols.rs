//! Symbolic points-to values for the bottom-up analysis.
//!
//! Alg. 1 analyzes each function once, before its callers, so pointer
//! values that depend on the calling context stay *symbolic* in the
//! function's formal parameters (the paper's line-3 transformation that
//! "explicitly exposes the side-effects on the function's parameters").
//! Callers substitute actuals for the `Param`/`DerefParam` symbols when
//! applying the procedural transfer function.

use canary_ir::{Label, ObjId, VarId};
use canary_smt::TermId;

/// A symbolic pointer value.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sym {
    /// A concrete abstract object.
    Obj(ObjId),
    /// The null value (source for the null-dereference checker).
    Null,
    /// The value of the enclosing function's `i`-th formal parameter.
    Param(usize),
    /// The value initially stored in the cell the `i`-th formal
    /// parameter points to (one dereference deep; deeper chains are
    /// dropped, a soundiness cut shared with the paper's bounded
    /// summaries).
    DerefParam(usize),
}

/// A memory-cell key in the flow-sensitive state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum MemKey {
    /// The cell of a concrete object.
    Obj(ObjId),
    /// The cell the `i`-th formal parameter points to.
    ParamCell(usize),
}

/// A value held in a memory cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MemVal {
    /// The pointer value stored, if the analysis can name one
    /// (`None` for opaque data such as taint or integers — the flow
    /// still matters for the checkers).
    pub pointee: Option<Sym>,
    /// The store statement and stored variable that produced this value
    /// (`None` for unknown initial contents); this anchors the VFG edge
    /// from the store to any load observing the value.
    pub origin: Option<(Label, VarId)>,
}

/// A guarded entry in a points-to set or memory cell.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Guarded<T> {
    /// The condition under which this entry holds.
    pub guard: TermId,
    /// The entry.
    pub value: T,
}

impl<T> Guarded<T> {
    /// Creates a guarded entry.
    pub fn new(guard: TermId, value: T) -> Self {
        Guarded { guard, value }
    }
}

/// A guarded points-to set for one top-level variable.
pub type PtsSet = Vec<Guarded<Sym>>;

/// A guarded memory-cell content set.
pub type CellSet = Vec<Guarded<MemVal>>;

/// Inserts an entry, or-ing guards for duplicates of the same value.
///
/// Generic over [`canary_smt::TermBuild`] so dataflow tasks can merge
/// into per-worker scratch pools as well as the canonical pool.
pub fn insert_guarded<T: PartialEq + Copy, B: canary_smt::TermBuild>(
    pool: &mut B,
    set: &mut Vec<Guarded<T>>,
    guard: TermId,
    value: T,
) {
    if guard == pool.ff() {
        return;
    }
    if let Some(e) = set.iter_mut().find(|e| e.value == value) {
        e.guard = pool.or2(e.guard, guard);
    } else {
        set.push(Guarded::new(guard, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_smt::TermPool;

    #[test]
    fn insert_merges_duplicates_by_or() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let na = pool.not(a);
        let mut set: PtsSet = Vec::new();
        insert_guarded(&mut pool, &mut set, a, Sym::Obj(ObjId::new(0)));
        insert_guarded(&mut pool, &mut set, na, Sym::Obj(ObjId::new(0)));
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].guard, pool.tt());
    }

    #[test]
    fn insert_keeps_distinct_values() {
        let mut pool = TermPool::new();
        let g = pool.bool_atom(0);
        let mut set: PtsSet = Vec::new();
        insert_guarded(&mut pool, &mut set, g, Sym::Obj(ObjId::new(0)));
        insert_guarded(&mut pool, &mut set, g, Sym::Null);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn false_guard_is_dropped() {
        let mut pool = TermPool::new();
        let ff = pool.ff();
        let mut set: PtsSet = Vec::new();
        insert_guarded(&mut pool, &mut set, ff, Sym::Param(0));
        assert!(set.is_empty());
    }
}
