//! Per-block path conditions.
//!
//! Every statement `ℓ` carries a guard `φ` — the condition under which
//! control reaches it from its function's entry (the `ℓ, φ : S` pairs in
//! Fig. 6 and Alg. 1). Bounded CFGs are DAGs, so one topological pass
//! computes `cond(B) = ⋁_{P → B} cond(P) ∧ branch(P → B)` exactly.
//!
//! Condition atoms map 1:1 onto SMT Boolean atoms: `CondId(i)` becomes
//! `bool_atom(i)`, so branches in different threads that test the same
//! named `θ` stay correlated (the Fig. 2 refutation depends on it).

use canary_ir::{CondExpr, FuncId, Label, Program, Terminator};
use canary_smt::{TermId, TermPool};

/// Lowers a branch condition literal to a term.
pub fn cond_term(pool: &mut TermPool, c: CondExpr) -> TermId {
    match c {
        CondExpr::True => pool.tt(),
        CondExpr::False => pool.ff(),
        CondExpr::Atom { cond, negated } => {
            let atom = pool.bool_atom(cond.0);
            if negated {
                pool.not(atom)
            } else {
                atom
            }
        }
    }
}

/// Path conditions for every statement of a program, indexed by label.
#[derive(Debug)]
pub struct PathConditions {
    per_label: Vec<TermId>,
}

impl PathConditions {
    /// Computes all statement guards.
    pub fn compute(prog: &Program, pool: &mut TermPool) -> Self {
        let mut per_label = vec![pool.tt(); prog.stmt_count()];
        for f in 0..prog.funcs.len() {
            Self::compute_func(prog, FuncId::new(f as u32), pool, &mut per_label);
        }
        PathConditions { per_label }
    }

    fn compute_func(
        prog: &Program,
        f: FuncId,
        pool: &mut TermPool,
        per_label: &mut [TermId],
    ) {
        let func = prog.func(f);
        let mut block_cond = vec![pool.ff(); func.blocks.len()];
        block_cond[func.entry.index()] = pool.tt();
        for blk in func.reverse_post_order() {
            let cond = block_cond[blk.index()];
            for &l in &func.block(blk).stmts {
                per_label[l.index()] = cond;
            }
            match &func.block(blk).term {
                Terminator::Goto(next) => {
                    let merged = pool.or2(block_cond[next.index()], cond);
                    block_cond[next.index()] = merged;
                }
                Terminator::Branch {
                    cond: c,
                    then_blk,
                    else_blk,
                } => {
                    let ct = cond_term(pool, *c);
                    let taken = pool.and2(cond, ct);
                    let merged = pool.or2(block_cond[then_blk.index()], taken);
                    block_cond[then_blk.index()] = merged;
                    let nct = pool.not(ct);
                    let not_taken = pool.and2(cond, nct);
                    let merged = pool.or2(block_cond[else_blk.index()], not_taken);
                    block_cond[else_blk.index()] = merged;
                }
                Terminator::Exit => {}
            }
        }
    }

    /// The guard `φ` of the statement at `l`.
    #[inline]
    pub fn guard(&self, l: Label) -> TermId {
        self.per_label[l.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::parse;
    use canary_smt::{check, SolverOptions, SolverStats};

    fn sat(pool: &TermPool, t: TermId) -> bool {
        check(pool, t, &SolverOptions::default(), &SolverStats::default()).is_sat()
    }

    #[test]
    fn straightline_guards_are_true() {
        let prog = parse("fn main() { p = alloc o; free p; }").unwrap();
        let mut pool = TermPool::new();
        let pc = PathConditions::compute(&prog, &mut pool);
        for l in prog.labels() {
            assert_eq!(pc.guard(l), pool.tt());
        }
    }

    #[test]
    fn branch_arms_get_literal_guards() {
        let prog = parse("fn main() { p = alloc o; if (c) { free p; } else { use p; } }").unwrap();
        let mut pool = TermPool::new();
        let pc = PathConditions::compute(&prog, &mut pool);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        let gf = pc.guard(free);
        let gd = pc.guard(deref);
        // Guards of opposite arms contradict.
        let both = pool.and2(gf, gd);
        assert_eq!(both, pool.ff());
        assert!(sat(&pool, gf));
        assert!(sat(&pool, gd));
    }

    #[test]
    fn join_block_guard_recovers_true() {
        let prog = parse("fn main() { if (c) { skip; } else { skip; } p = alloc o; }").unwrap();
        let mut pool = TermPool::new();
        let pc = PathConditions::compute(&prog, &mut pool);
        // The statement after the diamond is unconditioned: c ∨ ¬c = true.
        let alloc = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), canary_ir::Inst::Alloc { .. }))
            .unwrap();
        assert_eq!(pc.guard(alloc), pool.tt());
    }

    #[test]
    fn nested_branches_conjoin() {
        let prog =
            parse("fn main() { p = alloc o; if (a) { if (b) { free p; } } }").unwrap();
        let mut pool = TermPool::new();
        let pc = PathConditions::compute(&prog, &mut pool);
        let g = pc.guard(prog.free_sites()[0]);
        let a = pool.bool_atom(prog.cond_by_name("a").unwrap().0);
        let b = pool.bool_atom(prog.cond_by_name("b").unwrap().0);
        let expected = pool.and2(a, b);
        assert_eq!(g, expected);
    }

    #[test]
    fn same_atom_across_functions_is_shared() {
        let prog = parse(
            "fn main() { p = alloc o; if (t1) { free p; } }
             fn w(q) { if (!t1) { use q; } }",
        )
        .unwrap();
        let mut pool = TermPool::new();
        let pc = PathConditions::compute(&prog, &mut pool);
        let gf = pc.guard(prog.free_sites()[0]);
        let gd = pc.guard(prog.deref_sites()[0]);
        let both = pool.and2(gf, gd);
        assert_eq!(both, pool.ff(), "θ ∧ ¬θ must fold to false");
    }

    #[test]
    fn false_branch_is_unreachable() {
        let prog = parse("fn main() { if (false) { p = alloc o; use p; } }").unwrap();
        let mut pool = TermPool::new();
        let pc = PathConditions::compute(&prog, &mut pool);
        let deref = prog.deref_sites()[0];
        assert_eq!(pc.guard(deref), pool.ff());
    }
}
