//! Deterministic work-sharded execution.
//!
//! The primitive under both parallel phases of the front-end (the
//! level-parallel Alg. 1 tasks here and the sharded interference rounds
//! in `canary-interference`): run `n` independent work items on a
//! bounded pool of scoped workers and hand the outputs back **in item
//! order**, so the caller's merge loop — and therefore everything
//! downstream — is unaffected by scheduling. Workers pull items off a
//! shared atomic counter (work stealing degenerates to round-robin for
//! uniform items and keeps long items from serializing behind a static
//! partition).
//!
//! With `threads <= 1` the items run inline on the caller's thread
//! through the very same closure, which is how the pipeline guarantees
//! byte-identical output across thread counts: the serial path is the
//! parallel path with one worker, not a separate algorithm.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Runs `run(0..n)` across at most `threads` workers, returning outputs
/// indexed by item. `run` must be pure up to its item index — it sees
/// only frozen shared state — which makes the result independent of
/// scheduling.
pub fn run_indexed<T, F>(n: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run(i);
                *slots[i].lock() = Some(out);
            });
        }
    })
    .expect("worker pool");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every work item ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_item_order() {
        let squares = run_indexed(17, 4, |i| i * i);
        assert_eq!(squares, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(9, 1, |i| format!("item-{i}"));
        let parallel = run_indexed(9, 8, |i| format!("item-{i}"));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single_item() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
