//! # canary-vfg
//!
//! The guarded value-flow graph (VFG) at the center of Canary's design
//! (§2, Fig. 2b). Nodes are `v@ℓ` definition/use points plus abstract
//! memory objects; edges record how values flow, each annotated with a
//! guard term — the condition under which the flow is realizable:
//!
//! * **direct** edges for copies/casts between top-level variables;
//! * **data-dependence** edges for indirect store→load flows within a
//!   thread (Alg. 1, Fig. 6);
//! * **interference** edges for store→load flows *across* threads
//!   (Alg. 2, Defn. 1) — the dashed "tunnels" that let values enter and
//!   leave a thread's scope during the on-demand search.
//!
//! The graph also carries byte-level size accounting so the Fig. 7b
//! memory comparison can be regenerated without heap instrumentation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;

use canary_ir::{Label, ObjId, Program, VarId};
use canary_smt::{TermBuild, TermId};

mod scratch;

pub use scratch::{VfgLog, VfgScratch};

/// A node handle in the VFG.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a VFG node stands for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// A top-level variable defined or used at a label (`v@ℓ`).
    Def {
        /// The variable.
        var: VarId,
        /// The program point.
        label: Label,
    },
    /// An abstract memory object (`o` in Fig. 2b), anchored at its
    /// allocation site.
    Object {
        /// The object.
        obj: ObjId,
        /// Its allocation site.
        label: Label,
    },
}

impl NodeKind {
    /// The program point of the node.
    pub fn label(&self) -> Label {
        match self {
            NodeKind::Def { label, .. } | NodeKind::Object { label, .. } => *label,
        }
    }
}

/// The dependence relation an edge captures.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Direct assignment flow (`p = q`, alloc→p, call binding).
    Direct,
    /// Intra-thread indirect flow from a store to a load (Fig. 6).
    DataDep,
    /// Inter-thread indirect flow from a store to a load (Defn. 1).
    Interference,
}

/// A guarded value-flow edge.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Kind of dependence.
    pub kind: EdgeKind,
    /// The guard `Φ_guard` under which the value flows.
    pub guard: TermId,
}

/// The guarded value-flow graph.
#[derive(Debug, Default)]
pub struct Vfg {
    nodes: Vec<NodeKind>,
    dedup: HashMap<NodeKind, NodeId>,
    edges: Vec<Edge>,
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    /// Deduplication of (from, to, kind) — re-adding strengthens nothing
    /// (the first guard wins; Alg. 2 only ever adds each edge once).
    edge_dedup: HashMap<(NodeId, NodeId, EdgeKind), u32>,
    /// Edge index → the escaped object whose `Pted` set licensed the
    /// edge (Alg. 2: the object the store and load addresses meet in).
    /// Populated for interference and line-9 refresh edges only; the
    /// report provenance layer reads it back via [`Vfg::license_of`].
    licenses: HashMap<u32, ObjId>,
}

impl Vfg {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node.
    pub fn node(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&n) = self.dedup.get(&kind) {
            return n;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.dedup.insert(kind, id);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Interns the `v@ℓ` node.
    pub fn def_node(&mut self, var: VarId, label: Label) -> NodeId {
        self.node(NodeKind::Def { var, label })
    }

    /// Interns the object node for `o`.
    pub fn obj_node(&mut self, obj: ObjId, label: Label) -> NodeId {
        self.node(NodeKind::Object { obj, label })
    }

    /// Looks up an existing node without creating it.
    pub fn find(&self, kind: NodeKind) -> Option<NodeId> {
        self.dedup.get(&kind).copied()
    }

    /// Whether an edge `(from, to, kind)` is already present.
    pub fn has_edge(&self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        self.edge_dedup.contains_key(&(from, to, kind))
    }

    /// Adds a guarded edge; returns `true` if it is new.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind, guard: TermId) -> bool {
        if self.edge_dedup.contains_key(&(from, to, kind)) {
            return false;
        }
        let idx = self.edges.len() as u32;
        self.edges.push(Edge {
            from,
            to,
            kind,
            guard,
        });
        self.succs[from.index()].push(idx);
        self.preds[to.index()].push(idx);
        self.edge_dedup.insert((from, to, kind), idx);
        true
    }

    /// [`add_edge`](Self::add_edge) that additionally records the
    /// escaped object licensing the edge (Defn. 1: the object both the
    /// store and the load address point to). Returns `true` if the edge
    /// is new; the first license wins, like the first guard.
    pub fn add_edge_licensed(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: EdgeKind,
        guard: TermId,
        license: ObjId,
    ) -> bool {
        if !self.add_edge(from, to, kind, guard) {
            return false;
        }
        let idx = self.edge_dedup[&(from, to, kind)];
        self.licenses.insert(idx, license);
        true
    }

    /// The escaped object that licensed an edge, when one was recorded
    /// at insertion (interference and refreshed data-dependence edges).
    pub fn license_of(&self, from: NodeId, to: NodeId, kind: EdgeKind) -> Option<ObjId> {
        let idx = self.edge_dedup.get(&(from, to, kind))?;
        self.licenses.get(idx).copied()
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()]
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.succs[n.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.preds[n.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// All nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of interference edges (the Alg. 2 output of interest).
    pub fn interference_edge_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Interference)
            .count()
    }

    /// Forward-reachable nodes from `start` (following any edge kind),
    /// including `start`.
    pub fn reachable_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut work = vec![start];
        seen[start.index()] = true;
        let mut out = Vec::new();
        while let Some(n) = work.pop() {
            out.push(n);
            for e in self.out_edges(n) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    work.push(e.to);
                }
            }
        }
        out
    }

    /// Forward reachability that also aggregates the conjunction of edge
    /// guards along *some* path (first-discovery path), as the escape
    /// analysis of Alg. 2 (lines 19–23) records pointed-to-by guards.
    ///
    /// Returns `(node, aggregated guard)` pairs; `start` carries `base`.
    ///
    /// Generic over [`TermBuild`] so interference workers can aggregate
    /// guards into thread-local [`canary_smt::ScratchPool`]s while the
    /// canonical pool stays frozen.
    pub fn reachable_with_guards<B: TermBuild>(
        &self,
        pool: &mut B,
        start: NodeId,
        base: TermId,
    ) -> Vec<(NodeId, TermId)> {
        let mut guard_of: HashMap<NodeId, TermId> = HashMap::new();
        guard_of.insert(start, base);
        let mut work = vec![start];
        let mut out = Vec::new();
        while let Some(n) = work.pop() {
            let g = guard_of[&n];
            out.push((n, g));
            for e in self.out_edges(n) {
                if let std::collections::hash_map::Entry::Vacant(slot) = guard_of.entry(e.to) {
                    slot.insert(pool.and2(g, e.guard));
                    work.push(e.to);
                }
            }
        }
        out
    }

    /// Objects whose nodes reach `n` (reverse reachability) — the
    /// points-to set of `n` as read off the graph, which is how the
    /// escape analysis and the checkers resolve pointer identity.
    pub fn objects_reaching(&self, n: NodeId) -> Vec<ObjId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut work = vec![n];
        seen[n.index()] = true;
        let mut out = Vec::new();
        while let Some(x) = work.pop() {
            if let NodeKind::Object { obj, .. } = self.kind(x) {
                out.push(obj);
            }
            for e in self.in_edges(x) {
                if !seen[e.from.index()] {
                    seen[e.from.index()] = true;
                    work.push(e.from);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Approximate resident size in bytes, for the Fig. 7b memory
    /// comparison (node + edge + adjacency storage).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * (size_of::<NodeKind>() + size_of::<(NodeKind, NodeId)>())
            + self.edges.len() * (size_of::<Edge>() + 2 * size_of::<u32>())
            + self.edge_dedup.len() * size_of::<((NodeId, NodeId, EdgeKind), u32)>()
            + self.licenses.len() * size_of::<(u32, ObjId)>()
    }

    /// Renders a node for diagnostics/bug reports.
    pub fn render_node(&self, prog: &Program, n: NodeId) -> String {
        match self.kind(n) {
            NodeKind::Def { var, label } => {
                format!("{}@{}", prog.var_name(var), label)
            }
            NodeKind::Object { obj, label } => {
                format!("{}@{}", prog.obj_name(obj), label)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_smt::TermPool;

    fn def(v: u32, l: u32) -> NodeKind {
        NodeKind::Def {
            var: VarId::new(v),
            label: Label::new(l),
        }
    }

    #[test]
    fn nodes_dedup() {
        let mut g = Vfg::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(0, 0));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.find(def(0, 0)), Some(a));
        assert_eq!(g.find(def(1, 0)), None);
    }

    #[test]
    fn edges_dedup_by_kind() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        assert!(g.add_edge(a, b, EdgeKind::Direct, pool.tt()));
        assert!(!g.add_edge(a, b, EdgeKind::Direct, pool.tt()));
        assert!(g.add_edge(a, b, EdgeKind::Interference, pool.tt()));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.interference_edge_count(), 1);
    }

    #[test]
    fn adjacency_is_consistent() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let c = g.node(def(2, 2));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        g.add_edge(b, c, EdgeKind::DataDep, pool.tt());
        assert_eq!(g.out_edges(a).count(), 1);
        assert_eq!(g.in_edges(c).count(), 1);
        assert_eq!(g.out_edges(c).count(), 0);
    }

    #[test]
    fn reachability_follows_edges() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let c = g.node(def(2, 2));
        let d = g.node(def(3, 3));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        g.add_edge(b, c, EdgeKind::Direct, pool.tt());
        g.add_edge(d, a, EdgeKind::Direct, pool.tt());
        let mut r = g.reachable_from(a);
        r.sort();
        assert_eq!(r, vec![a, b, c]);
    }

    #[test]
    fn guard_aggregation_conjoins_along_path() {
        let mut g = Vfg::new();
        let mut pool = TermPool::new();
        let t1 = pool.bool_atom(0);
        let t2 = pool.bool_atom(1);
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let c = g.node(def(2, 2));
        g.add_edge(a, b, EdgeKind::Direct, t1);
        g.add_edge(b, c, EdgeKind::Direct, t2);
        let tt = pool.tt();
        let reach = g.reachable_with_guards(&mut pool, a, tt);
        let gc = reach.iter().find(|(n, _)| *n == c).unwrap().1;
        let expect = pool.and2(t1, t2);
        assert_eq!(gc, expect);
    }

    #[test]
    fn edge_licenses_are_recorded_first_wins() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let o = ObjId::new(3);
        let o2 = ObjId::new(4);
        assert!(g.add_edge_licensed(a, b, EdgeKind::Interference, pool.tt(), o));
        // Re-adding neither duplicates the edge nor rewrites the license.
        assert!(!g.add_edge_licensed(a, b, EdgeKind::Interference, pool.tt(), o2));
        assert_eq!(g.license_of(a, b, EdgeKind::Interference), Some(o));
        // Plain edges carry no license.
        g.add_edge(b, a, EdgeKind::Direct, pool.tt());
        assert_eq!(g.license_of(b, a, EdgeKind::Direct), None);
        assert_eq!(g.license_of(a, b, EdgeKind::Direct), None);
    }

    #[test]
    fn approx_bytes_grows_with_graph() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let base = g.approx_bytes();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        assert!(g.approx_bytes() > base);
    }
}
