//! Per-worker VFG overlays for the parallel analysis front-end.
//!
//! Mirrors [`canary_smt::ScratchPool`]: dataflow tasks build their VFG
//! fragment against a frozen base graph, ship it back as an owned
//! [`VfgLog`], and the coordinator replays logs in task order. Replay
//! order plus the first-guard-wins edge rule make the merged graph —
//! node numbering included — independent of worker scheduling.
//!
//! Tasks only *produce* graph structure (intern nodes, append edges);
//! they never read adjacency, so an overlay needs no merged view of
//! edges, just enough node state to dedup and to name endpoints.

use std::collections::{HashMap, HashSet};

use canary_ir::{Label, ObjId, VarId};
use canary_smt::TermRemap;

use crate::{Edge, EdgeKind, NodeId, NodeKind, Vfg};

/// A write-only VFG overlay over a frozen base graph.
///
/// Node lookups fall through to the base; new nodes get provisional ids
/// starting at `base.node_count()`. Edges are logged with provisional
/// endpoint ids and scratch-relative guard terms; both are remapped at
/// commit.
#[derive(Debug)]
pub struct VfgScratch<'a> {
    base: &'a Vfg,
    base_nodes: usize,
    nodes: Vec<NodeKind>,
    dedup: HashMap<NodeKind, NodeId>,
    edges: Vec<Edge>,
    edge_seen: HashSet<(NodeId, NodeId, EdgeKind)>,
}

impl<'a> VfgScratch<'a> {
    /// Creates an overlay over `base`, which must stay frozen while the
    /// overlay is alive (the borrow enforces this).
    pub fn new(base: &'a Vfg) -> Self {
        VfgScratch {
            base,
            base_nodes: base.node_count(),
            nodes: Vec::new(),
            dedup: HashMap::new(),
            edges: Vec::new(),
            edge_seen: HashSet::new(),
        }
    }

    /// Interns a node, reusing the base's id when it already exists.
    pub fn node(&mut self, kind: NodeKind) -> NodeId {
        if let Some(n) = self.base.find(kind) {
            return n;
        }
        if let Some(&n) = self.dedup.get(&kind) {
            return n;
        }
        let id = NodeId((self.base_nodes + self.nodes.len()) as u32);
        self.nodes.push(kind);
        self.dedup.insert(kind, id);
        id
    }

    /// Interns the `v@ℓ` node.
    pub fn def_node(&mut self, var: VarId, label: Label) -> NodeId {
        self.node(NodeKind::Def { var, label })
    }

    /// Interns the object node for `o`.
    pub fn obj_node(&mut self, obj: ObjId, label: Label) -> NodeId {
        self.node(NodeKind::Object { obj, label })
    }

    /// Looks up a node in the base or the overlay without creating it.
    pub fn find(&self, kind: NodeKind) -> Option<NodeId> {
        self.base.find(kind).or_else(|| self.dedup.get(&kind).copied())
    }

    /// Logs a guarded edge; returns `true` if it is new relative to the
    /// base graph and this overlay (first guard wins, as in
    /// [`Vfg::add_edge`]).
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: EdgeKind,
        guard: canary_smt::TermId,
    ) -> bool {
        let key = (from, to, kind);
        // Base-id endpoints may duplicate a base edge; provisional ids
        // cannot (the base has no such node yet).
        if from.index() < self.base_nodes
            && to.index() < self.base_nodes
            && self.base.has_edge(from, to, kind)
        {
            return false;
        }
        if !self.edge_seen.insert(key) {
            return false;
        }
        self.edges.push(Edge {
            from,
            to,
            kind,
            guard,
        });
        true
    }

    /// Number of locally created nodes.
    pub fn local_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Detaches the fragment, dropping the base borrow.
    pub fn into_log(self) -> VfgLog {
        VfgLog {
            base_nodes: self.base_nodes,
            nodes: self.nodes,
            edges: self.edges,
        }
    }
}

/// An owned VFG fragment: locally created nodes in creation order and
/// logged edges, both relative to a base of `base_nodes` nodes.
#[derive(Debug)]
pub struct VfgLog {
    base_nodes: usize,
    nodes: Vec<NodeKind>,
    edges: Vec<Edge>,
}

impl VfgLog {
    /// Whether the fragment holds any nodes or edges.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Replays the fragment into `vfg` (the graph this log's scratch
    /// was created over, possibly grown by earlier commits — base ids
    /// are stable because the graph is append-only). Guards are
    /// translated through `terms`, the remap from the matching
    /// [`canary_smt::ScratchLog::commit`].
    ///
    /// Node interning is idempotent, so sibling tasks that created the
    /// same node (e.g. the parameter definition of a shared callee)
    /// collapse onto one id; the commit order fixes which id that is.
    /// Returns the number of edges actually added.
    pub fn commit(self, vfg: &mut Vfg, terms: &TermRemap) -> usize {
        let mut node_map: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        for kind in self.nodes {
            node_map.push(vfg.node(kind));
        }
        let r = |n: NodeId| -> NodeId {
            if n.index() < self.base_nodes {
                n
            } else {
                node_map[n.index() - self.base_nodes]
            }
        };
        let mut added = 0;
        for e in self.edges {
            if vfg.add_edge(r(e.from), r(e.to), e.kind, terms.remap(e.guard)) {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_smt::{TermBuild, TermPool};

    fn def(v: u32, l: u32) -> NodeKind {
        NodeKind::Def {
            var: VarId::new(v),
            label: Label::new(l),
        }
    }

    #[test]
    fn scratch_reuses_base_nodes_and_numbers_local_ones() {
        let mut g = Vfg::new();
        let a = g.node(def(0, 0));
        let mut s = VfgScratch::new(&g);
        assert_eq!(s.node(def(0, 0)), a);
        let b = s.node(def(1, 1));
        assert_eq!(b.index(), g.node_count());
        assert_eq!(s.node(def(1, 1)), b);
        assert_eq!(s.local_nodes(), 1);
    }

    #[test]
    fn commit_merges_fragments_in_task_order() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));

        let mut s1 = VfgScratch::new(&g);
        let b1 = s1.node(def(1, 1));
        s1.add_edge(a, b1, EdgeKind::Direct, pool.tt());

        let mut s2 = VfgScratch::new(&g);
        let b2 = s2.node(def(1, 1)); // same node as task 1's b
        let c = s2.node(def(2, 2));
        s2.add_edge(b2, c, EdgeKind::DataDep, pool.tt());

        let (l1, l2) = (s1.into_log(), s2.into_log());
        let id = canary_smt::TermRemap::identity(pool.len());
        l1.commit(&mut g, &id);
        l2.commit(&mut g, &id);

        // Shared node collapsed; edges connect through it.
        assert_eq!(g.node_count(), 3);
        let b = g.find(def(1, 1)).unwrap();
        assert_eq!(g.out_edges(a).count(), 1);
        assert_eq!(g.out_edges(b).count(), 1);
        let mut r = g.reachable_from(a);
        r.sort();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn edge_dedup_is_first_wins_across_base_and_overlay() {
        let mut g = Vfg::new();
        let mut pool = TermPool::new();
        let t = pool.bool_atom(0);
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());

        let mut s = VfgScratch::new(&g);
        // Duplicates the base edge: rejected at log time.
        assert!(!s.add_edge(a, b, EdgeKind::Direct, t));
        // New kind: accepted once.
        assert!(s.add_edge(a, b, EdgeKind::Interference, t));
        assert!(!s.add_edge(a, b, EdgeKind::Interference, pool.tt()));

        let log = s.into_log();
        let id = canary_smt::TermRemap::identity(pool.len());
        assert_eq!(log.commit(&mut g, &id), 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn commit_remaps_scratch_guards() {
        let mut pool = TermPool::new();
        let mut g = Vfg::new();
        let a = g.node(def(0, 0));

        let mut terms = canary_smt::ScratchPool::new(&pool);
        let mut s = VfgScratch::new(&g);
        let b = s.node(def(1, 1));
        let guard = TermBuild::bool_atom(&mut terms, 5);
        s.add_edge(a, b, EdgeKind::Direct, guard);

        let (tlog, vlog) = (terms.into_log(), s.into_log());
        let remap = tlog.commit(&mut pool);
        vlog.commit(&mut g, &remap);

        let expect = pool.bool_atom(5);
        assert_eq!(g.edges()[0].guard, expect);
    }
}
