//! # canary-store
//!
//! A bounded-memory spill store for cold analysis artifacts (function
//! summaries, VFG slices): entries are written once to an append-only
//! temporary file and a byte-budgeted LRU resident set keeps the hot
//! ones in memory. The paper analyzes 8.9 MLoC subjects (§7); at that
//! scale per-function summaries dominate the front-end's memory and the
//! cold majority can live on disk without slowing the checkers, which
//! only consult the VFG.
//!
//! Determinism contract: every gauge ([`SpillGauges`]) is a pure
//! function of the `put`/`get` call sequence and the configured byte
//! budget — eviction is driven by encoded sizes, never by OS memory
//! accounting — so runs with identical inputs report identical gauges
//! regardless of thread count or machine.
//!
//! The backing file lives in the system temp directory and is removed
//! when the store is dropped.
//!
//! # Examples
//!
//! ```
//! use canary_store::SpillStore;
//!
//! let mut store = SpillStore::with_budget(16).unwrap(); // 16-byte resident set
//! store.put(0, vec![1; 12]).unwrap();
//! store.put(1, vec![2; 12]).unwrap(); // evicts entry 0 from memory
//! assert_eq!(store.get(0).unwrap().unwrap(), vec![1; 12]); // reloaded from disk
//! assert_eq!(store.gauges().evictions, 2);
//! assert_eq!(store.gauges().reloads, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counter distinguishing stores created by the same process.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Deterministic spill accounting, exported as `canary_spill_*` gauges.
///
/// All fields are pure functions of the call sequence and budget; none
/// consult OS memory accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillGauges {
    /// Total bytes appended to the backing file (monotone).
    pub bytes_written: u64,
    /// Distinct entries the store holds (on disk; a superset of the
    /// resident set).
    pub entries: u64,
    /// Resident entries dropped to stay within the byte budget.
    pub evictions: u64,
    /// `get` calls served by reading the backing file because the
    /// entry had been evicted.
    pub reloads: u64,
    /// Bytes currently held by the resident set (≤ `budget_bytes`
    /// whenever the budget can hold at least one entry).
    pub resident_bytes: u64,
    /// The configured resident-set byte budget.
    pub budget_bytes: u64,
}

/// An append-only on-disk store with a byte-budgeted LRU resident set.
///
/// Keys are dense `u32` ids (function ids in practice). `put` always
/// persists to disk and admits the entry to the resident set, evicting
/// least-recently-used entries until the set fits the budget; `get`
/// serves residents without IO and reloads evicted entries from disk.
#[derive(Debug)]
pub struct SpillStore {
    file: File,
    path: PathBuf,
    /// id → (offset, len) in the backing file; rewritten entries keep
    /// only the newest location (the file is append-only).
    index: HashMap<u32, (u64, u32)>,
    resident: HashMap<u32, Vec<u8>>,
    /// LRU order, oldest first. Touching an id moves it to the back;
    /// ids are unique in the queue.
    recency: VecDeque<u32>,
    write_offset: u64,
    gauges: SpillGauges,
}

impl SpillStore {
    /// Creates a store whose resident set is capped at `budget_bytes`.
    ///
    /// A budget of 0 keeps nothing resident: every `get` reloads from
    /// disk.
    ///
    /// # Errors
    ///
    /// Propagates the IO error if the backing file cannot be created in
    /// the system temp directory.
    pub fn with_budget(budget_bytes: u64) -> io::Result<Self> {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "canary-spill-{}-{}.bin",
            std::process::id(),
            seq
        ));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        Ok(SpillStore {
            file,
            path,
            index: HashMap::new(),
            resident: HashMap::new(),
            recency: VecDeque::new(),
            write_offset: 0,
            gauges: SpillGauges {
                budget_bytes,
                ..SpillGauges::default()
            },
        })
    }

    /// Persists `bytes` under `id` and admits the entry to the resident
    /// set (evicting older entries if the budget demands it). Re-putting
    /// an id supersedes its previous contents.
    ///
    /// # Errors
    ///
    /// Propagates backing-file write errors.
    pub fn put(&mut self, id: u32, bytes: Vec<u8>) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.write_offset))?;
        self.file.write_all(&bytes)?;
        let len = bytes.len() as u32;
        if self.index.insert(id, (self.write_offset, len)).is_none() {
            self.gauges.entries += 1;
        }
        self.write_offset += u64::from(len);
        self.gauges.bytes_written += u64::from(len);
        self.admit(id, bytes);
        Ok(())
    }

    /// Fetches the entry stored under `id`, reloading it from disk (and
    /// re-admitting it to the resident set) if it was evicted. Returns
    /// `None` for ids never stored.
    ///
    /// # Errors
    ///
    /// Propagates backing-file read errors.
    pub fn get(&mut self, id: u32) -> io::Result<Option<Vec<u8>>> {
        if let Some(bytes) = self.resident.get(&id) {
            let out = bytes.clone();
            self.touch(id);
            return Ok(Some(out));
        }
        let Some(&(off, len)) = self.index.get(&id) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; len as usize];
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut buf)?;
        self.gauges.reloads += 1;
        self.admit(id, buf.clone());
        Ok(Some(buf))
    }

    /// Whether `id` has ever been stored.
    pub fn contains(&self, id: u32) -> bool {
        self.index.contains_key(&id)
    }

    /// Number of distinct entries (resident or spilled).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Current deterministic accounting.
    pub fn gauges(&self) -> SpillGauges {
        self.gauges
    }

    /// Inserts into the resident set and evicts LRU entries until the
    /// set fits the budget. The incoming entry itself is evicted last,
    /// so an over-budget entry passes through without pinning memory.
    fn admit(&mut self, id: u32, bytes: Vec<u8>) {
        let len = bytes.len() as u64;
        if let Some(old) = self.resident.insert(id, bytes) {
            self.gauges.resident_bytes -= old.len() as u64;
        }
        self.gauges.resident_bytes += len;
        self.touch(id);
        while self.gauges.resident_bytes > self.gauges.budget_bytes {
            let Some(victim) = self.recency.pop_front() else {
                break;
            };
            if let Some(old) = self.resident.remove(&victim) {
                self.gauges.resident_bytes -= old.len() as u64;
                self.gauges.evictions += 1;
            }
        }
    }

    /// Moves `id` to the most-recently-used end of the queue.
    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.recency.iter().position(|&x| x == id) {
            self.recency.remove(pos);
        }
        self.recency.push_back(id);
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_resident() {
        let mut s = SpillStore::with_budget(1 << 20).unwrap();
        s.put(3, vec![9, 8, 7]).unwrap();
        assert_eq!(s.get(3).unwrap().unwrap(), vec![9, 8, 7]);
        assert_eq!(s.gauges().reloads, 0, "resident hit must not touch disk");
        assert_eq!(s.gauges().entries, 1);
        assert_eq!(s.gauges().bytes_written, 3);
    }

    #[test]
    fn missing_id_is_none() {
        let mut s = SpillStore::with_budget(64).unwrap();
        assert_eq!(s.get(42).unwrap(), None);
        assert!(!s.contains(42));
        assert!(s.is_empty());
    }

    #[test]
    fn eviction_is_lru_and_reload_restores() {
        let mut s = SpillStore::with_budget(8).unwrap();
        s.put(0, vec![0; 4]).unwrap();
        s.put(1, vec![1; 4]).unwrap();
        assert_eq!(s.gauges().evictions, 0);
        assert_eq!(s.gauges().resident_bytes, 8);
        // Touch 0 so 1 becomes the LRU victim.
        s.get(0).unwrap().unwrap();
        s.put(2, vec![2; 4]).unwrap();
        assert_eq!(s.gauges().evictions, 1);
        // 1 was evicted: fetching it reloads from disk and in turn
        // evicts the now-oldest resident (0).
        assert_eq!(s.get(1).unwrap().unwrap(), vec![1; 4]);
        assert_eq!(s.gauges().reloads, 1);
        assert_eq!(s.gauges().evictions, 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.gauges().resident_bytes, 8);
    }

    #[test]
    fn zero_budget_keeps_nothing_resident() {
        let mut s = SpillStore::with_budget(0).unwrap();
        s.put(7, vec![1, 2]).unwrap();
        assert_eq!(s.gauges().resident_bytes, 0);
        assert_eq!(s.get(7).unwrap().unwrap(), vec![1, 2]);
        assert_eq!(s.gauges().reloads, 1);
        assert_eq!(s.get(7).unwrap().unwrap(), vec![1, 2]);
        assert_eq!(s.gauges().reloads, 2);
    }

    #[test]
    fn overwrite_supersedes_and_counts_once() {
        let mut s = SpillStore::with_budget(1 << 10).unwrap();
        s.put(5, vec![1; 10]).unwrap();
        s.put(5, vec![2; 6]).unwrap();
        assert_eq!(s.gauges().entries, 1);
        assert_eq!(s.gauges().bytes_written, 16);
        assert_eq!(s.gauges().resident_bytes, 6);
        assert_eq!(s.get(5).unwrap().unwrap(), vec![2; 6]);
        // Evict and reload: disk must also serve the newest version.
        let mut s = SpillStore::with_budget(0).unwrap();
        s.put(5, vec![1; 10]).unwrap();
        s.put(5, vec![2; 6]).unwrap();
        assert_eq!(s.get(5).unwrap().unwrap(), vec![2; 6]);
    }

    #[test]
    fn backing_file_removed_on_drop() {
        let path;
        {
            let mut s = SpillStore::with_budget(8).unwrap();
            s.put(0, vec![1; 32]).unwrap();
            path = s.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn gauges_deterministic_for_same_sequence() {
        let run = || {
            let mut s = SpillStore::with_budget(24).unwrap();
            for id in 0..8u32 {
                s.put(id, vec![id as u8; 8]).unwrap();
            }
            for id in (0..8u32).rev() {
                s.get(id).unwrap().unwrap();
            }
            s.gauges()
        };
        assert_eq!(run(), run());
    }
}
