//! Property-based tests for the interprocedural program order: on
//! randomly generated structured concurrent programs, `happens_before`
//! must behave like a strict partial order that agrees with block
//! structure and fork/join semantics.

use proptest::prelude::*;

use canary_ir::{
    CallGraph, CondExpr, Inst, Label, MhpAnalysis, OrderGraph, Program, ProgramBuilder,
    ThreadStructure,
};

/// A random structured body: a sequence of statements, branches and
/// bounded loops, with optional fork/join of one worker.
#[derive(Clone, Debug)]
enum Piece {
    Stmt,
    Branch(Vec<Piece>, Vec<Piece>),
    Loop(Vec<Piece>),
    /// Call one of a pool of shared helper functions — the shape that
    /// once broke antisymmetry (ascend followed by an illegal
    /// re-descend into the completed call).
    CallHelper(u8),
}

fn piece_strategy() -> impl Strategy<Value = Vec<Piece>> {
    let leaf = prop_oneof![Just(Piece::Stmt), (0u8..3).prop_map(Piece::CallHelper)];
    let piece = leaf.prop_recursive(3, 12, 3, |inner| {
        let seq = prop::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            Just(Piece::Stmt),
            (0u8..3).prop_map(Piece::CallHelper),
            (seq.clone(), seq.clone()).prop_map(|(a, b)| Piece::Branch(a, b)),
            seq.prop_map(Piece::Loop),
        ]
    });
    prop::collection::vec(piece, 1..5)
}

fn emit(f: &mut canary_ir::FuncBody<'_>, pieces: &[Piece], depth: &mut u32) {
    for p in pieces {
        match p {
            Piece::Stmt => {
                f.nop();
            }
            Piece::Branch(a, b) => {
                *depth += 1;
                let c = f.cond(&format!("c{depth}"));
                let (tb, eb, jb) = f.begin_branch(CondExpr::atom(c));
                f.switch_to(tb);
                emit(f, a, depth);
                f.seal_goto(jb);
                f.switch_to(eb);
                emit(f, b, depth);
                f.seal_goto(jb);
                f.switch_to(jb);
            }
            Piece::Loop(body) => {
                *depth += 1;
                let c = f.cond(&format!("l{depth}"));
                let mut d2 = *depth * 100;
                f.while_unrolled(CondExpr::atom(c), 2, |f| {
                    d2 += 1;
                    emit(f, body, &mut d2);
                });
            }
            Piece::CallHelper(k) => {
                f.call(&[], &format!("helper_{k}"), &[]);
            }
        }
    }
}

fn build_program(main_pieces: &[Piece], worker_pieces: &[Piece], with_join: bool) -> Program {
    let mut b = ProgramBuilder::new();
    // A small shared helper pool: callable from main, the worker, and
    // helper_2 calls helper_0 so ascend/descend chains compose.
    for k in 0..3 {
        b.func(&format!("helper_{k}"), &[]);
    }
    let worker = b.func("worker", &["x"]);
    let main = b.func("main", &[]);
    for k in 0..3 {
        let h = b.program().func_by_name(&format!("helper_{k}")).unwrap();
        let mut f = b.body(h);
        f.nop();
        if k == 2 {
            f.call(&[], "helper_0", &[]);
        }
        f.nop();
    }
    {
        let mut f = b.body(worker);
        let mut depth = 1000;
        emit(&mut f, worker_pieces, &mut depth);
        f.nop();
    }
    {
        let mut f = b.body(main);
        let p = f.alloc("p", "o");
        let mut depth = 0;
        emit(&mut f, main_pieces, &mut depth);
        f.fork("t", "worker", &[p]);
        let mut depth2 = 500;
        emit(&mut f, main_pieces, &mut depth2);
        if with_join {
            f.join("t");
            f.nop();
        }
    }
    b.set_entry(main);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn happens_before_is_irreflexive_and_po_is_deterministic(
        main_pieces in piece_strategy(),
        worker_pieces in piece_strategy(),
        with_join in any::<bool>(),
    ) {
        // With shared, re-invoked helpers the merged-label relation is
        // neither transitive nor antisymmetric (a label stands for all
        // its dynamic instances — the documented soundiness that clone-
        // based context sensitivity removes). What must always hold:
        // irreflexivity, and `program_order` resolving every pair to at
        // most one direction, deterministically.
        let prog = build_program(&main_pieces, &worker_pieces, with_join);
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let labels: Vec<Label> = prog.labels().collect();
        let step = (labels.len() / 16).max(1);
        let sample: Vec<Label> = labels.iter().copied().step_by(step).collect();
        for &a in &sample {
            prop_assert!(!og.happens_before(a, a), "irreflexive at {a}");
            for &b in &sample {
                let d1 = og.program_order(a, b);
                let d2 = og.program_order(a, b);
                prop_assert_eq!(d1, d2, "determinism at {},{}", a, b);
                if let (Some(x), Some(y)) =
                    (og.program_order(a, b), og.program_order(b, a))
                {
                    prop_assert_eq!(x, !y, "consistent orientation {},{}", a, b);
                }
            }
        }
    }

    #[test]
    fn happens_before_is_transitive_after_context_cloning(
        main_pieces in piece_strategy(),
        worker_pieces in piece_strategy(),
        with_join in any::<bool>(),
    ) {
        // Clone-based context sensitivity gives every (cloned) function
        // a single call site, eliminating the context mixing — the
        // relation becomes a strict partial order on live code.
        let prog = build_program(&main_pieces, &worker_pieces, with_join);
        let cloned = canary_ir::clone_contexts(
            &prog,
            &canary_ir::CloneOptions { depth: 8, max_growth: 64 },
        );
        cloned.validate().unwrap();
        let cg = CallGraph::build(&cloned);
        let ts = ThreadStructure::compute(&cloned, &cg);
        let og = OrderGraph::build(&cloned, &cg);
        // Restrict to labels of functions some thread actually executes.
        let live: Vec<Label> = cloned
            .labels()
            .filter(|&l| !ts.threads_of(&cloned, l).is_empty())
            .collect();
        let step = (live.len() / 12).max(1);
        let sample: Vec<Label> = live.iter().copied().step_by(step).collect();
        for &a in &sample {
            for &b in &sample {
                let ab = og.happens_before(a, b);
                prop_assert!(!(ab && og.happens_before(b, a)), "antisymmetry");
                if !ab {
                    continue;
                }
                for &c in &sample {
                    if og.happens_before(b, c) {
                        prop_assert!(
                            og.happens_before(a, c),
                            "transitivity {a}<{b}<{c} (cloned)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_order_and_fork_join_agree(
        main_pieces in piece_strategy(),
        worker_pieces in piece_strategy(),
        with_join in any::<bool>(),
    ) {
        let prog = build_program(&main_pieces, &worker_pieces, with_join);
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        // Consecutive statements of any block are ordered.
        for func in &prog.funcs {
            for block in &func.blocks {
                for w in block.stmts.windows(2) {
                    prop_assert!(og.happens_before(w[0], w[1]));
                }
            }
        }
        // Fork precedes every worker statement; join follows them.
        let fork = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Fork { .. }))
            .unwrap();
        let worker_f = prog.func_by_name("worker").unwrap();
        for wl in prog.func(worker_f).labels() {
            prop_assert!(og.happens_before(fork, wl), "fork < {wl}");
            if with_join {
                let join = prog
                    .labels()
                    .find(|&l| matches!(prog.inst(l), Inst::Join { .. }))
                    .unwrap();
                prop_assert!(og.happens_before(wl, join), "{wl} < join");
            }
        }
    }

    #[test]
    fn mhp_is_symmetric_and_excludes_ordered_pairs(
        main_pieces in piece_strategy(),
        worker_pieces in piece_strategy(),
        with_join in any::<bool>(),
    ) {
        let prog = build_program(&main_pieces, &worker_pieces, with_join);
        let cg = CallGraph::build(&prog);
        let ts = ThreadStructure::compute(&prog, &cg);
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let labels: Vec<Label> = prog.labels().collect();
        let step = (labels.len() / 10).max(1);
        let sample: Vec<Label> = labels.iter().copied().step_by(step).collect();
        for &a in &sample {
            for &b in &sample {
                let ab = mhp.may_happen_in_parallel(a, b);
                prop_assert_eq!(ab, mhp.may_happen_in_parallel(b, a), "symmetry");
                if ab {
                    prop_assert!(
                        !mhp.order_graph().happens_before(a, b)
                            && !mhp.order_graph().happens_before(b, a),
                        "parallel pairs are unordered"
                    );
                }
            }
        }
    }
}
