//! Exhaustive coverage of the program validator: every
//! [`ValidationError`] variant is constructible and renders a useful
//! message.

use canary_ir::{
    parse, BasicBlock, BlockId, CondExpr, FuncId, Inst, Label, Program, ProgramBuilder,
    Terminator, ValidationError, VarId,
};

fn valid_base() -> Program {
    parse("fn main() { p = alloc o; free p; }").unwrap()
}

#[test]
fn valid_program_passes() {
    valid_base().validate().unwrap();
}

#[test]
fn no_entry() {
    let mut p = valid_base();
    p.entry = None;
    assert_eq!(p.validate(), Err(ValidationError::NoEntry));
    assert!(p.validate().unwrap_err().to_string().contains("entry"));
}

#[test]
fn dangling_entry_function() {
    let mut p = valid_base();
    p.entry = Some(FuncId::new(99));
    assert!(matches!(
        p.validate(),
        Err(ValidationError::DanglingFunc(_))
    ));
}

#[test]
fn dangling_label_in_block() {
    let mut p = valid_base();
    p.funcs[0].blocks[0].stmts.push(Label::new(999));
    assert!(matches!(
        p.validate(),
        Err(ValidationError::DanglingLabel(_))
    ));
}

#[test]
fn duplicate_label_across_blocks() {
    let mut p = valid_base();
    let l = p.funcs[0].blocks[0].stmts[0];
    p.funcs[0].blocks.push(BasicBlock {
        stmts: vec![l],
        term: Terminator::Exit,
    });
    // The statement's recorded block no longer matches its second home.
    let err = p.validate().unwrap_err();
    assert!(
        matches!(
            err,
            ValidationError::MisplacedStmt(_) | ValidationError::DuplicateLabel(_)
        ),
        "{err}"
    );
}

#[test]
fn orphan_statement() {
    let mut p = valid_base();
    p.funcs[0].blocks[0].stmts.pop();
    assert!(matches!(p.validate(), Err(ValidationError::OrphanStmt(_))));
}

#[test]
fn dangling_block_target() {
    let mut p = valid_base();
    p.funcs[0].blocks[0].term = Terminator::Goto(BlockId::new(42));
    assert!(matches!(
        p.validate(),
        Err(ValidationError::DanglingBlock(..))
    ));
}

#[test]
fn dangling_variable() {
    let mut p = valid_base();
    p.stmts[1].inst = Inst::Free {
        ptr: VarId::new(999),
    };
    assert!(matches!(
        p.validate(),
        Err(ValidationError::DanglingVar(..))
    ));
}

#[test]
fn multiple_definitions() {
    // Two allocs into the same variable.
    let mut b = ProgramBuilder::new();
    let main = b.func("main", &[]);
    {
        let mut f = b.body(main);
        let p = f.alloc("p", "o1");
        let q = f.alloc("q", "o2");
        f.copy_into(p, q);
    }
    b.set_entry(main);
    let prog = b.finish();
    assert!(matches!(
        prog.validate(),
        Err(ValidationError::MultipleDefs(..))
    ));
}

#[test]
fn cyclic_cfg_rejected() {
    let mut p = valid_base();
    p.funcs[0].blocks[0].term = Terminator::Goto(BlockId::new(0));
    assert!(matches!(p.validate(), Err(ValidationError::CyclicCfg(_))));
    let msg = p.validate().unwrap_err().to_string();
    assert!(msg.contains("unroll"), "{msg}");
}

#[test]
fn branch_to_same_block_both_arms_is_fine() {
    let mut b = ProgramBuilder::new();
    let main = b.func("main", &[]);
    let c = b.cond("c");
    {
        let mut f = b.body(main);
        f.nop();
        let (tb, eb, jb) = f.begin_branch(CondExpr::atom(c));
        f.switch_to(tb);
        f.seal_goto(jb);
        f.switch_to(eb);
        f.seal_goto(jb);
        f.switch_to(jb);
        f.nop();
    }
    b.set_entry(main);
    b.finish().validate().unwrap();
}

#[test]
fn every_error_renders_nonempty() {
    use ValidationError as E;
    let samples = [
        E::NoEntry,
        E::DanglingFunc(FuncId::new(1)),
        E::DanglingLabel(Label::new(2)),
        E::MisplacedStmt(Label::new(3)),
        E::DuplicateLabel(Label::new(4)),
        E::OrphanStmt(Label::new(5)),
        E::DanglingBlock(FuncId::new(6), BlockId::new(7)),
        E::DanglingVar(Label::new(8), VarId::new(9)),
        E::DanglingObj(Label::new(10), canary_ir::ObjId::new(11)),
        E::DanglingThread(Label::new(12), canary_ir::ThreadId::new(13)),
        E::MultipleDefs(VarId::new(14), Label::new(15), Label::new(16)),
        E::CyclicCfg(FuncId::new(17)),
    ];
    for e in samples {
        assert!(!e.to_string().is_empty(), "{e:?}");
    }
}
