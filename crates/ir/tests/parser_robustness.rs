//! Parser robustness: arbitrary input must never panic — either a
//! program or a positioned [`ParseError`] comes back — and valid
//! programs produced by the generator side of the house always re-lex.

use proptest::prelude::*;

use canary_ir::{parse, parse_with, ParseOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_ascii_never_panics(src in "[ -~\\n]{0,200}") {
        // Result is irrelevant; absence of panics is the property.
        let _ = parse(&src);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("fn".to_string()),
            Just("main".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just(";".to_string()),
            Just("=".to_string()),
            Just("*".to_string()),
            Just("alloc".to_string()),
            Just("free".to_string()),
            Just("use".to_string()),
            Just("fork".to_string()),
            Just("join".to_string()),
            Just("if".to_string()),
            Just("else".to_string()),
            Just("while".to_string()),
            Just("return".to_string()),
            Just("call".to_string()),
            Just("x".to_string()),
            Just("o".to_string()),
            Just("!".to_string()),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }

    #[test]
    fn unroll_depths_never_panic(depth in 0usize..6) {
        let src = "fn main() { p = alloc o; while (c) { use p; while (d) { skip; } } }";
        let prog = parse_with(src, &ParseOptions { loop_unroll: depth });
        if depth == 0 {
            // Zero unrolling elides loop bodies entirely.
            prop_assert_eq!(prog.unwrap().deref_sites().len(), 0);
        } else {
            let p = prog.unwrap();
            p.validate().unwrap();
            prop_assert_eq!(p.deref_sites().len(), depth);
        }
    }

    #[test]
    fn deeply_nested_branches_parse(depth in 1usize..12) {
        let mut src = String::from("fn main() { p = alloc o; ");
        for i in 0..depth {
            src.push_str(&format!("if (c{i}) {{ "));
        }
        src.push_str("use p; ");
        for _ in 0..depth {
            src.push_str("} ");
        }
        src.push('}');
        let prog = parse(&src).unwrap();
        prog.validate().unwrap();
        prop_assert_eq!(prog.deref_sites().len(), 1);
    }
}

#[test]
fn pathological_brace_nesting_errors_cleanly() {
    let src = "fn main() ".to_string() + &"{".repeat(500);
    assert!(parse(&src).is_err());
}

#[test]
fn non_ascii_identifier_is_an_error_not_a_panic() {
    assert!(parse("fn main() { ☃ = alloc o; }").is_err());
}
