//! Programs are plain serde data structures: a serialize/deserialize
//! round trip must be the identity, so analyses can be cached and
//! workloads shipped as JSON.

use canary_ir::{parse, Program};

fn roundtrip(prog: &Program) -> Program {
    let json = serde_json::to_string(prog).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn simple_program_roundtrips() {
    let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
    assert_eq!(roundtrip(&prog), prog);
}

#[test]
fn concurrent_program_roundtrips() {
    let prog = parse(
        r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) { c = *x; use c; }
            join t;
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) { *y = b; free b; }
            return;
        }
        "#,
    )
    .unwrap();
    let back = roundtrip(&prog);
    assert_eq!(back, prog);
    back.validate().unwrap();
}

#[test]
fn all_statement_kinds_roundtrip() {
    let prog = parse(
        r#"
        fn main() {
            m = alloc mu;
            fp = fnptr aux;
            lock m; unlock m; wait m; notify m;
            s = taint; sink s;
            n = null;
            a = alloc o1; b = a;
            c = a + b; d = !c; e = a == b; g = -d; h = a > b;
            r = call aux();
            while (w) { skip; }
            use a;
            free a;
            return r;
        }
        fn aux() { q = alloc oq; return q; }
        "#,
    )
    .unwrap();
    assert_eq!(roundtrip(&prog), prog);
}

#[test]
fn generated_workload_roundtrips() {
    // Roundtrip stability over a nontrivial generated program.
    let prog = parse(
        "fn main() { p = alloc o; fork t w(p); free p; } fn w(q) { use q; }",
    )
    .unwrap();
    let json1 = serde_json::to_string(&prog).unwrap();
    let back: Program = serde_json::from_str(&json1).unwrap();
    let json2 = serde_json::to_string(&back).unwrap();
    assert_eq!(json1, json2, "serialization is stable");
}
