//! Small-step navigation helpers over a bounded program's CFGs.
//!
//! The static analyses walk the IR declaratively; the concrete
//! schedule-replay oracle (`canary-oracle`) instead *executes* it, one
//! labeled instruction at a time. This module provides the shared
//! notion of an execution position — a [`Cursor`] into one function's
//! block structure — and the [`StepPoint`] sum describing what the
//! cursor faces next: a labeled instruction or a block terminator.
//!
//! Bounded programs have acyclic CFGs (§3.1), so any cursor advanced
//! repeatedly reaches `Exit` in finitely many steps; the interpreter
//! relies on that for termination without step counting.

use crate::ids::{BlockId, FuncId, Label};
use crate::inst::{Inst, Terminator};
use crate::program::Program;

/// An execution position inside one function: the next thing to execute
/// is `blocks[block].stmts[stmt]`, or the block terminator once `stmt`
/// runs past the end.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cursor {
    /// The function being executed.
    pub func: FuncId,
    /// The current basic block.
    pub block: BlockId,
    /// Index of the next statement within the block.
    pub stmt: usize,
}

/// What a [`Cursor`] is about to execute.
#[derive(Copy, Clone, Debug)]
pub enum StepPoint<'p> {
    /// A labeled instruction.
    Inst(Label, &'p Inst),
    /// The current block's terminator (all statements consumed).
    Term(&'p Terminator),
}

impl Cursor {
    /// A cursor at the entry of `f`.
    pub fn entry(prog: &Program, f: FuncId) -> Cursor {
        Cursor {
            func: f,
            block: prog.func(f).entry,
            stmt: 0,
        }
    }

    /// The instruction or terminator the cursor faces.
    pub fn point<'p>(&self, prog: &'p Program) -> StepPoint<'p> {
        let blk = prog.func(self.func).block(self.block);
        match blk.stmts.get(self.stmt) {
            Some(&l) => StepPoint::Inst(l, prog.inst(l)),
            None => StepPoint::Term(&blk.term),
        }
    }

    /// Advances past the current statement (no effect on block choice).
    pub fn advance(&mut self) {
        self.stmt += 1;
    }

    /// Jumps to the start of another block of the same function.
    pub fn jump(&mut self, blk: BlockId) {
        self.block = blk;
        self.stmt = 0;
    }
}

/// Whether `target` is executable from the start of block `from` in
/// `func` — i.e. some intra-procedural CFG path from `from` contains
/// the statement labeled `target`.
///
/// The replay oracle uses this to steer branches whose atom the SMT
/// model left unconstrained: when the thread's next scheduled label
/// lives in only one arm, that arm must be taken.
pub fn block_reaches(prog: &Program, func: FuncId, from: BlockId, target: Label) -> bool {
    if prog.func_of(target) != func {
        return false;
    }
    let f = prog.func(func);
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(b) = stack.pop() {
        let blk = f.block(b);
        if blk.stmts.contains(&target) {
            return true;
        }
        for succ in blk.term.successors() {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                stack.push(succ);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::CondExpr;

    fn branchy() -> (Program, Label, Label) {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &[]);
        let c = b.cond("c");
        let mut then_l = None;
        let mut else_l = None;
        {
            let mut f = b.body(main);
            let p = f.alloc("p", "o");
            f.if_else(
                CondExpr::atom(c),
                |f| then_l = Some(f.free(p)),
                |f| else_l = Some(f.deref(p)),
            );
            f.nop();
        }
        b.set_entry(main);
        (b.finish(), then_l.unwrap(), else_l.unwrap())
    }

    #[test]
    fn cursor_walks_straight_line() {
        let prog = crate::parse("fn main() { p = alloc o; free p; }").unwrap();
        let main = prog.entry.unwrap();
        let mut cur = Cursor::entry(&prog, main);
        let StepPoint::Inst(l0, _) = cur.point(&prog) else {
            panic!("expected inst");
        };
        assert_eq!(l0, Label::new(0));
        cur.advance();
        let StepPoint::Inst(l1, _) = cur.point(&prog) else {
            panic!("expected inst");
        };
        assert_eq!(l1, Label::new(1));
        cur.advance();
        assert!(matches!(cur.point(&prog), StepPoint::Term(Terminator::Exit)));
    }

    #[test]
    fn cursor_jump_enters_branch_arm() {
        let (prog, then_l, _) = branchy();
        let main = prog.entry.unwrap();
        let mut cur = Cursor::entry(&prog, main);
        cur.advance(); // past the alloc
        let StepPoint::Term(Terminator::Branch { then_blk, .. }) = cur.point(&prog) else {
            panic!("expected branch");
        };
        let tb = *then_blk;
        cur.jump(tb);
        let StepPoint::Inst(l, _) = cur.point(&prog) else {
            panic!("expected inst");
        };
        assert_eq!(l, then_l);
    }

    #[test]
    fn block_reaches_distinguishes_arms() {
        let (prog, then_l, else_l) = branchy();
        let main = prog.entry.unwrap();
        let f = prog.func(main);
        let Terminator::Branch {
            then_blk, else_blk, ..
        } = f.block(f.entry).term
        else {
            panic!("expected branch");
        };
        assert!(block_reaches(&prog, main, then_blk, then_l));
        assert!(!block_reaches(&prog, main, then_blk, else_l));
        assert!(block_reaches(&prog, main, else_blk, else_l));
        // Both arms reach the join and anything after it.
        assert!(block_reaches(&prog, main, f.entry, then_l));
    }

    #[test]
    fn block_reaches_rejects_other_functions() {
        let prog = crate::parse(
            "fn main() { fork t w(); } fn w() { p = alloc o; free p; }",
        )
        .unwrap();
        let main = prog.entry.unwrap();
        let free = prog.free_sites()[0];
        assert!(!block_reaches(&prog, main, prog.func(main).entry, free));
    }
}
