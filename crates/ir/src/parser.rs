//! A textual front end for the Fig. 3 language.
//!
//! The concrete syntax mirrors the paper's examples one statement per
//! line; `while` loops are unrolled at parse time (twice by default,
//! matching §6), so parsed programs are always bounded.
//!
//! ```text
//! fn main(a) {
//!     x = alloc o1;          // ℓ2: x points to fresh object o1
//!     *x = a;                // ℓ3: store
//!     fork t thread1(x);     // ℓ4: create thread t
//!     if (theta1) {
//!         c = *x;            // ℓ6: load
//!         use c;             // ℓ7: dereference sink
//!     }
//! }
//! fn thread1(y) {
//!     b = alloc o2;
//!     if (!theta1) {
//!         *y = b;
//!         free b;            // use-after-free source
//!     }
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! let src = "fn main() { p = alloc o; free p; use p; }";
//! let prog = canary_ir::parse(src)?;
//! assert_eq!(prog.stmt_count(), 3);
//! # Ok::<(), canary_ir::ParseError>(())
//! ```

use std::fmt;

use crate::builder::{FuncBody, ProgramBuilder};
use crate::ids::FuncId;
use crate::inst::{BinOp, CondExpr, UnOp};
use crate::program::Program;

/// Options controlling parsing of bounded programs.
#[derive(Clone, Debug)]
pub struct ParseOptions {
    /// How many times `while` loops are unrolled (§6 uses 2).
    pub loop_unroll: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { loop_unroll: 2 }
    }
}

/// Parses a program with default options.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    parse_with(src, &ParseOptions::default())
}

/// Parses a program with explicit options.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_with(src: &str, opts: &ParseOptions) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        opts: opts.clone(),
        def_counts: std::collections::HashMap::new(),
        current: std::collections::HashMap::new(),
    }
    .parse_program()
}

/// A syntax error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Eq,     // =
    Star,   // *
    Bang,   // !
    Plus,
    Minus,
    Amp,
    Pipe,
    Gt,
    EqEq,
    BangEq,
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(SpannedTok { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(SpannedTok { tok: Tok::RParen, line });
                i += 1;
            }
            '{' => {
                out.push(SpannedTok { tok: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(SpannedTok { tok: Tok::RBrace, line });
                i += 1;
            }
            ';' => {
                out.push(SpannedTok { tok: Tok::Semi, line });
                i += 1;
            }
            ',' => {
                out.push(SpannedTok { tok: Tok::Comma, line });
                i += 1;
            }
            '*' => {
                out.push(SpannedTok { tok: Tok::Star, line });
                i += 1;
            }
            '+' => {
                out.push(SpannedTok { tok: Tok::Plus, line });
                i += 1;
            }
            '-' => {
                out.push(SpannedTok { tok: Tok::Minus, line });
                i += 1;
            }
            '&' => {
                out.push(SpannedTok { tok: Tok::Amp, line });
                i += 1;
            }
            '|' => {
                out.push(SpannedTok { tok: Tok::Pipe, line });
                i += 1;
            }
            '>' => {
                out.push(SpannedTok { tok: Tok::Gt, line });
                i += 1;
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedTok { tok: Tok::EqEq, line });
                    i += 2;
                } else {
                    out.push(SpannedTok { tok: Tok::Eq, line });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedTok { tok: Tok::BangEq, line });
                    i += 2;
                } else {
                    out.push(SpannedTok { tok: Tok::Bang, line });
                    i += 1;
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '%' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '%' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
    opts: ParseOptions,
    /// Per-function SSA renaming: how many times each raw name has been
    /// defined so far. Re-definitions (e.g. the same source text parsed
    /// twice by loop unrolling) get fresh versioned names `x#2`, `x#3`, …
    def_counts: std::collections::HashMap<String, u32>,
    /// Raw name → currently visible versioned name.
    current: std::collections::HashMap<String, String>,
}

impl Parser {
    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |t| t.line)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => {
                let found = other.cloned();
                self.err(format!("expected {want:?}, found {found:?}"))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut b = ProgramBuilder::new();
        // Pass 1: declare all functions so forward references resolve.
        let mut decls: Vec<(String, Vec<String>, usize)> = Vec::new();
        let save = self.pos;
        while self.peek().is_some() {
            let kw = self.expect_ident()?;
            if kw != "fn" {
                return self.err("expected `fn`");
            }
            let name = self.expect_ident()?;
            self.expect(&Tok::LParen)?;
            let mut params = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    params.push(self.expect_ident()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::LBrace)?;
            let body_start = self.pos;
            self.skip_braced_body()?;
            decls.push((name, params, body_start));
        }
        self.pos = save;
        let mut ids: Vec<FuncId> = Vec::new();
        for (name, params, _) in &decls {
            let ps: Vec<&str> = params.iter().map(String::as_str).collect();
            ids.push(b.func(name, &ps));
        }
        // Pass 2: parse each body.
        for (idx, (_, params, body_start)) in decls.iter().enumerate() {
            self.pos = *body_start;
            self.def_counts.clear();
            self.current.clear();
            for p in params {
                self.def_counts.insert(p.clone(), 1);
                self.current.insert(p.clone(), p.clone());
            }
            let mut body = b.body(ids[idx]);
            self.parse_block_into(&mut body)?;
        }
        if let Some(main) = b.program().func_by_name("main") {
            b.set_entry(main);
        } else if let Some(first) = ids.first() {
            b.set_entry(*first);
        } else {
            return self.err("empty program");
        }
        Ok(b.finish())
    }

    /// Skips tokens up to and including the matching `}` of an already
    /// consumed `{`.
    fn skip_braced_body(&mut self) -> Result<(), ParseError> {
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some(Tok::LBrace) => depth += 1,
                Some(Tok::RBrace) => depth -= 1,
                Some(_) => {}
                None => return self.err("unbalanced braces"),
            }
        }
        Ok(())
    }

    /// Parses statements until the closing `}` (consumed).
    fn parse_block_into(&mut self, f: &mut FuncBody<'_>) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => self.parse_stmt(f)?,
                None => return self.err("unexpected end of input in block"),
            }
        }
    }

    fn parse_cond(&mut self, f: &mut FuncBody<'_>) -> Result<CondExpr, ParseError> {
        self.expect(&Tok::LParen)?;
        let negated = if self.peek() == Some(&Tok::Bang) {
            self.bump();
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        let cond = match name.as_str() {
            "true" => {
                if negated {
                    CondExpr::False
                } else {
                    CondExpr::True
                }
            }
            "false" => {
                if negated {
                    CondExpr::True
                } else {
                    CondExpr::False
                }
            }
            _ => {
                let c = f.cond(&name);
                if negated {
                    CondExpr::not_atom(c)
                } else {
                    CondExpr::atom(c)
                }
            }
        };
        self.expect(&Tok::RParen)?;
        Ok(cond)
    }

    fn parse_stmt(&mut self, f: &mut FuncBody<'_>) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Star) => {
                // *x = y;
                self.bump();
                let addr = self.expect_ident()?;
                self.expect(&Tok::Eq)?;
                let src = self.expect_ident()?;
                self.expect(&Tok::Semi)?;
                let a = f.var(&self.use_name(&addr));
                let s = f.var(&self.use_name(&src));
                f.store(a, s);
                Ok(())
            }
            Some(Tok::Ident(kw)) => {
                let kw = kw.clone();
                match kw.as_str() {
                    "if" => {
                        self.bump();
                        let cond = self.parse_cond(f)?;
                        self.expect(&Tok::LBrace)?;
                        let then_start = self.pos;
                        self.skip_braced_body()?;
                        let after_then = self.pos;
                        let (else_start, after_else) = if matches!(self.peek(), Some(Tok::Ident(k)) if k == "else")
                        {
                            self.bump();
                            self.expect(&Tok::LBrace)?;
                            let s = self.pos;
                            self.skip_braced_body()?;
                            (Some(s), self.pos)
                        } else {
                            (None, after_then)
                        };
                        let (then_blk, else_blk, join_blk) = f.begin_branch(cond);
                        f.switch_to(then_blk);
                        self.pos = then_start;
                        self.parse_block_into(f)?;
                        f.seal_goto(join_blk);
                        f.switch_to(else_blk);
                        if let Some(s) = else_start {
                            self.pos = s;
                            self.parse_block_into(f)?;
                        }
                        f.seal_goto(join_blk);
                        f.switch_to(join_blk);
                        self.pos = after_else;
                        Ok(())
                    }
                    "while" => {
                        self.bump();
                        let cond = self.parse_cond(f)?;
                        self.expect(&Tok::LBrace)?;
                        let body_start = self.pos;
                        self.skip_braced_body()?;
                        let after_body = self.pos;
                        self.unroll_while(f, cond, body_start, self.opts.loop_unroll)?;
                        self.pos = after_body;
                        Ok(())
                    }
                    "fork" => {
                        self.bump();
                        let tname = self.expect_ident()?;
                        let entry = self.expect_ident()?;
                        let args = self.parse_arg_list(f)?;
                        self.expect(&Tok::Semi)?;
                        let entry = self.resolve_callee_name(f, &entry);
                        f.fork(&tname, &entry, &args);
                        Ok(())
                    }
                    "join" => {
                        self.bump();
                        let tname = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        f.join(&tname);
                        Ok(())
                    }
                    "free" => {
                        self.bump();
                        let v = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        let v = f.var(&self.use_name(&v));
                        f.free(v);
                        Ok(())
                    }
                    "use" | "deref" => {
                        self.bump();
                        // allow `use *c;` as well as `use c;`
                        if self.peek() == Some(&Tok::Star) {
                            self.bump();
                        }
                        let v = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        let v = f.var(&self.use_name(&v));
                        f.deref(v);
                        Ok(())
                    }
                    "sink" => {
                        self.bump();
                        let v = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        let v = f.var(&self.use_name(&v));
                        f.taint_sink(v);
                        Ok(())
                    }
                    "lock" | "unlock" | "wait" | "notify" => {
                        self.bump();
                        let v = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        let v = f.var(&self.use_name(&v));
                        match kw.as_str() {
                            "lock" => f.lock(v),
                            "unlock" => f.unlock(v),
                            "wait" => f.wait(v),
                            _ => f.notify(v),
                        };
                        Ok(())
                    }
                    "return" => {
                        self.bump();
                        let mut vals = Vec::new();
                        while let Some(Tok::Ident(_)) = self.peek() {
                            let v = self.expect_ident()?;
                            vals.push(f.var(&self.use_name(&v)));
                            if self.peek() == Some(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.expect(&Tok::Semi)?;
                        f.ret(&vals);
                        Ok(())
                    }
                    "skip" => {
                        self.bump();
                        self.expect(&Tok::Semi)?;
                        f.nop();
                        Ok(())
                    }
                    "call" => {
                        self.bump();
                        let callee = self.expect_ident()?;
                        let args = self.parse_arg_list(f)?;
                        self.expect(&Tok::Semi)?;
                        let callee = self.resolve_callee_name(f, &callee);
                        f.call(&[], &callee, &args);
                        Ok(())
                    }
                    _ => self.parse_assignment(f),
                }
            }
            other => {
                let found = other.cloned();
                self.err(format!("expected statement, found {found:?}"))
            }
        }
    }

    /// Unrolls `while (cond) { body }` as `unroll` nested `if (cond)`
    /// copies of the body (§6: each loop is unrolled twice by default).
    fn unroll_while(
        &mut self,
        f: &mut FuncBody<'_>,
        cond: CondExpr,
        body_start: usize,
        unroll: usize,
    ) -> Result<(), ParseError> {
        if unroll == 0 {
            return Ok(());
        }
        let (then_blk, else_blk, join_blk) = f.begin_branch(cond);
        f.switch_to(then_blk);
        self.pos = body_start;
        self.parse_block_into(f)?;
        self.unroll_while(f, cond, body_start, unroll - 1)?;
        f.seal_goto(join_blk);
        f.switch_to(else_blk);
        f.seal_goto(join_blk);
        f.switch_to(join_blk);
        Ok(())
    }

    fn parse_arg_list(&mut self, f: &mut FuncBody<'_>) -> Result<Vec<crate::ids::VarId>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let a = self.expect_ident()?;
                args.push(f.var(&self.use_name(&a)));
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    /// `x = <rhs>;` where rhs is one of: `alloc o`, `*y`, `null`,
    /// `taint`, `call f(..)`, `!y`, `-y`, `y op z`, `y`.
    fn parse_assignment(&mut self, f: &mut FuncBody<'_>) -> Result<(), ParseError> {
        let dst = self.expect_ident()?;
        self.expect(&Tok::Eq)?;
        match self.peek() {
            Some(Tok::Star) => {
                self.bump();
                let addr = self.expect_ident()?;
                self.expect(&Tok::Semi)?;
                let a = f.var(&self.use_name(&addr));
                let dst = self.def_name(&dst);
                f.load(&dst, a);
                Ok(())
            }
            Some(Tok::Bang) => {
                self.bump();
                let src = self.expect_ident()?;
                self.expect(&Tok::Semi)?;
                let s = f.var(&self.use_name(&src));
                let dst = self.def_name(&dst);
                f.un(&dst, UnOp::Not, s);
                Ok(())
            }
            Some(Tok::Minus) => {
                self.bump();
                let src = self.expect_ident()?;
                self.expect(&Tok::Semi)?;
                let s = f.var(&self.use_name(&src));
                let dst = self.def_name(&dst);
                f.un(&dst, UnOp::Neg, s);
                Ok(())
            }
            Some(Tok::Ident(kw)) => {
                let kw = kw.clone();
                match kw.as_str() {
                    "alloc" => {
                        self.bump();
                        let obj = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        let dst = self.def_name(&dst);
                        f.alloc(&dst, &obj);
                        Ok(())
                    }
                    "fnptr" => {
                        self.bump();
                        let fname = self.expect_ident()?;
                        self.expect(&Tok::Semi)?;
                        let Some(fid) = f.program().func_by_name(&fname) else {
                            return self.err(format!("unknown function `{fname}` in fnptr"));
                        };
                        let dst = self.def_name(&dst);
                        f.fn_addr(&dst, fid);
                        Ok(())
                    }
                    "null" => {
                        self.bump();
                        self.expect(&Tok::Semi)?;
                        let dst = self.def_name(&dst);
                        f.null(&dst);
                        Ok(())
                    }
                    "taint" => {
                        self.bump();
                        if self.peek() == Some(&Tok::LParen) {
                            self.bump();
                            self.expect(&Tok::RParen)?;
                        }
                        self.expect(&Tok::Semi)?;
                        let dst = self.def_name(&dst);
                        f.taint_source(&dst);
                        Ok(())
                    }
                    "call" => {
                        self.bump();
                        let callee = self.expect_ident()?;
                        let args = self.parse_arg_list(f)?;
                        self.expect(&Tok::Semi)?;
                        let callee = self.resolve_callee_name(f, &callee);
                        let dst = self.def_name(&dst);
                        f.call(&[&dst], &callee, &args);
                        Ok(())
                    }
                    _ => {
                        // copy or binop
                        let lhs_name = self.expect_ident()?;
                        let op = match self.peek() {
                            Some(Tok::Plus) => Some(BinOp::Add),
                            Some(Tok::Minus) => Some(BinOp::Sub),
                            Some(Tok::Amp) => Some(BinOp::And),
                            Some(Tok::Pipe) => Some(BinOp::Or),
                            Some(Tok::Gt) => Some(BinOp::Gt),
                            Some(Tok::EqEq) => Some(BinOp::Eq),
                            Some(Tok::BangEq) => Some(BinOp::Ne),
                            _ => None,
                        };
                        if let Some(op) = op {
                            self.bump();
                            let rhs_name = self.expect_ident()?;
                            self.expect(&Tok::Semi)?;
                            let l = f.var(&self.use_name(&lhs_name));
                            let r = f.var(&self.use_name(&rhs_name));
                            let dst = self.def_name(&dst);
                            f.bin(&dst, op, l, r);
                        } else {
                            self.expect(&Tok::Semi)?;
                            let s = f.var(&self.use_name(&lhs_name));
                            let dst = self.def_name(&dst);
                            f.copy(&dst, s);
                        }
                        Ok(())
                    }
                }
            }
            other => {
                let found = other.cloned();
                self.err(format!("expected rvalue, found {found:?}"))
            }
        }
    }
}

impl Parser {
    /// Registers a definition of `raw`, returning the versioned SSA name
    /// (`x` for the first definition, `x#2`, `x#3`, … for re-definitions,
    /// which arise when loop unrolling parses the same body twice).
    ///
    /// Versioning keeps parsed programs in partial SSA without full phi
    /// construction; at join points the textually last version stays
    /// visible, a soundiness choice in the spirit of §6.
    fn def_name(&mut self, raw: &str) -> String {
        let count = self.def_counts.entry(raw.to_string()).or_insert(0);
        *count += 1;
        let versioned = if *count == 1 {
            raw.to_string()
        } else {
            format!("{raw}#{count}")
        };
        self.current.insert(raw.to_string(), versioned.clone());
        versioned
    }

    /// Resolves a use of `raw` to its currently visible versioned name.
    fn use_name(&self, raw: &str) -> String {
        self.current
            .get(raw)
            .cloned()
            .unwrap_or_else(|| raw.to_string())
    }

    /// Resolves a callee name: function names pass through unchanged;
    /// anything else is treated as a function-pointer variable and
    /// resolved through the SSA renaming map.
    fn resolve_callee_name(&self, f: &FuncBody<'_>, name: &str) -> String {
        if f.program().func_by_name(name).is_some() {
            name.to_string()
        } else {
            self.use_name(name)
        }
    }

    #[allow(dead_code)]
    fn lookahead_is_eq(&self) -> bool {
        self.peek2() == Some(&Tok::Eq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Callee, Inst};

    #[test]
    fn parses_fig2_program() {
        let src = r#"
            fn main(a) {
                x = alloc o1;
                *x = a;
                fork t thread1(x);
                if (theta1) {
                    c = *x;
                    use c;
                }
            }
            fn thread1(y) {
                b = alloc o2;
                if (!theta1) {
                    *y = b;
                    free b;
                }
            }
        "#;
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        assert_eq!(prog.funcs.len(), 2);
        assert_eq!(prog.threads.len(), 2);
        assert_eq!(prog.free_sites().len(), 1);
        assert_eq!(prog.deref_sites().len(), 1);
        // `theta1` is one shared atom referenced by both functions.
        assert_eq!(prog.conds.len(), 1);
    }

    #[test]
    fn forward_function_references_resolve() {
        let src = r#"
            fn main() {
                p = alloc o;
                call helper(p);
            }
            fn helper(q) {
                use q;
            }
        "#;
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let helper = prog.func_by_name("helper").unwrap();
        let call = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Call { .. }))
            .unwrap();
        assert!(
            matches!(prog.inst(call), Inst::Call { callee: Callee::Direct(f), .. } if *f == helper)
        );
    }

    #[test]
    fn while_unrolls_to_nested_ifs() {
        let src = r#"
            fn main() {
                p = alloc o;
                while (c) {
                    use p;
                }
            }
        "#;
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        assert_eq!(prog.deref_sites().len(), 2);
        assert!(prog.funcs.iter().all(super::super::Function::is_acyclic));
    }

    #[test]
    fn while_unroll_factor_respected() {
        let src = "fn main() { p = alloc o; while (c) { use p; } }";
        let prog = parse_with(
            src,
            &ParseOptions { loop_unroll: 4 },
        )
        .unwrap();
        assert_eq!(prog.deref_sites().len(), 4);
    }

    #[test]
    fn if_else_both_arms_parse() {
        let src = r#"
            fn main() {
                p = alloc o;
                if (c) { free p; } else { use p; }
                skip;
            }
        "#;
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        assert_eq!(prog.free_sites().len(), 1);
        assert_eq!(prog.deref_sites().len(), 1);
    }

    #[test]
    fn binop_and_unop_parse() {
        let src = r#"
            fn main() {
                a = alloc o1;
                b = a;
                c = a + b;
                d = !c;
                e = a == b;
            }
        "#;
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let kinds: Vec<_> = prog.labels().map(|l| prog.inst(l).clone()).collect();
        assert!(matches!(kinds[2], Inst::Bin { op: BinOp::Add, .. }));
        assert!(matches!(kinds[3], Inst::Un { op: UnOp::Not, .. }));
        assert!(matches!(kinds[4], Inst::Bin { op: BinOp::Eq, .. }));
    }

    #[test]
    fn taint_and_sync_statements_parse() {
        let src = r#"
            fn main() {
                m = alloc mu;
                lock m;
                s = taint;
                sink s;
                unlock m;
                wait m;
                notify m;
            }
        "#;
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let has = |pred: fn(&Inst) -> bool| prog.labels().any(|l| pred(prog.inst(l)));
        assert!(has(|i| matches!(i, Inst::Lock { .. })));
        assert!(has(|i| matches!(i, Inst::Unlock { .. })));
        assert!(has(|i| matches!(i, Inst::TaintSource { .. })));
        assert!(has(|i| matches!(i, Inst::TaintSink { .. })));
        assert!(has(|i| matches!(i, Inst::Wait { .. })));
        assert!(has(|i| matches!(i, Inst::Notify { .. })));
    }

    #[test]
    fn error_reports_line_number() {
        let src = "fn main() {\n  p = alloc o;\n  bogus bogus bogus\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// header\nfn main() { // trailing\n p = alloc o; // mid\n }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.stmt_count(), 1);
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse("fn main() { p = alloc o }").is_err());
    }

    #[test]
    fn unbalanced_brace_is_an_error() {
        assert!(parse("fn main() { if (c) { free p; }").is_err());
    }

    #[test]
    fn entry_defaults_to_main() {
        let src = "fn other() { skip; } fn main() { skip; }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.entry, prog.func_by_name("main"));
    }
}
