//! Thread structure: which functions (and hence statements) each static
//! thread executes, and the fork-tree parent relation.
//!
//! A thread's function set is the closure of its (resolved) entry
//! function over *call* edges only; functions reached through a fork
//! site belong to the forked thread, not to the forking one. A function
//! called from several threads belongs to all of them — the analyses
//! treat its statements as executable by every member thread, the usual
//! thread-modular over-approximation.

use crate::callgraph::CallGraph;
use crate::ids::{FuncId, Label, ThreadId, MAIN_THREAD};
use crate::program::Program;

/// Computed thread structure over a bounded program.
#[derive(Debug)]
pub struct ThreadStructure {
    /// Resolved entry functions per thread.
    pub entries: Vec<Vec<FuncId>>,
    /// Functions each thread may execute (call-edge closure of entries).
    pub funcs: Vec<Vec<FuncId>>,
    /// `threads_of_func[f]` — threads that may execute `f`.
    pub threads_of_func: Vec<Vec<ThreadId>>,
    /// Fork-tree parent of each thread (main is its own parent).
    pub parent: Vec<ThreadId>,
}

impl ThreadStructure {
    /// Computes the thread structure from the program and its call graph.
    pub fn compute(prog: &Program, cg: &CallGraph) -> Self {
        let n_threads = prog.threads.len();
        let n_funcs = prog.funcs.len();

        // Resolve entries: main runs the program entry; forked threads
        // run the resolved targets of their fork site.
        let mut entries: Vec<Vec<FuncId>> = vec![Vec::new(); n_threads];
        if let Some(main_entry) = prog.entry {
            entries[MAIN_THREAD.index()].push(main_entry);
        }
        for (ti, info) in prog.threads.iter().enumerate().skip(1) {
            if let Some(fork) = info.fork_site {
                entries[ti] = cg.fork_targets.get(&fork).cloned().unwrap_or_default();
            }
        }

        // Call-edge-only closure per thread.
        let mut funcs: Vec<Vec<FuncId>> = vec![Vec::new(); n_threads];
        for t in 0..n_threads {
            let mut seen = vec![false; n_funcs];
            let mut work: Vec<usize> = entries[t].iter().map(|f| f.index()).collect();
            for &f in &work {
                seen[f] = true;
            }
            while let Some(f) = work.pop() {
                for g in &cg.calls[f] {
                    if !seen[g.index()] {
                        seen[g.index()] = true;
                        work.push(g.index());
                    }
                }
            }
            funcs[t] = (0..n_funcs)
                .filter(|&i| seen[i])
                .map(|i| FuncId::new(i as u32))
                .collect();
        }

        let mut threads_of_func: Vec<Vec<ThreadId>> = vec![Vec::new(); n_funcs];
        for (t, fs) in funcs.iter().enumerate() {
            for f in fs {
                threads_of_func[f.index()].push(ThreadId::new(t as u32));
            }
        }

        // Parent: the thread whose function set contains the fork site's
        // function. Iterate because a forked thread can itself fork.
        let mut parent: Vec<ThreadId> = vec![MAIN_THREAD; n_threads];
        for (ti, info) in prog.threads.iter().enumerate().skip(1) {
            if let Some(fork) = info.fork_site {
                let f = prog.func_of(fork);
                // Prefer the lowest thread id executing the forking
                // function (deterministic when a function is shared).
                if let Some(&t) = threads_of_func[f.index()].first() {
                    parent[ti] = t;
                }
            }
        }

        ThreadStructure {
            entries,
            funcs,
            threads_of_func,
            parent,
        }
    }

    /// Threads that may execute the statement at `l`.
    pub fn threads_of(&self, prog: &Program, l: Label) -> &[ThreadId] {
        &self.threads_of_func[prog.func_of(l).index()]
    }

    /// Whether two labels may run in *distinct* threads — a necessary
    /// condition for interference dependence (Defn. 1).
    pub fn may_be_in_distinct_threads(&self, prog: &Program, l1: Label, l2: Label) -> bool {
        let t1 = self.threads_of(prog, l1);
        let t2 = self.threads_of(prog, l2);
        t1.iter().any(|a| t2.iter().any(|b| a != b))
    }

    /// The chain of ancestors of `t` up to (and including) main.
    pub fn ancestors(&self, t: ThreadId) -> Vec<ThreadId> {
        let mut chain = vec![t];
        let mut cur = t;
        while self.parent[cur.index()] != cur {
            cur = self.parent[cur.index()];
            chain.push(cur);
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn setup(src: &str) -> (Program, CallGraph, ThreadStructure) {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let ts = ThreadStructure::compute(&prog, &cg);
        (prog, cg, ts)
    }

    #[test]
    fn fork_partitions_functions_between_threads() {
        let (prog, _cg, ts) = setup(
            "fn main() { p = alloc o; fork t w(p); free p; }
             fn w(x) { use x; }",
        );
        let main_f = prog.func_by_name("main").unwrap();
        let w = prog.func_by_name("w").unwrap();
        let t = prog.thread_by_name("t").unwrap();
        assert_eq!(ts.threads_of_func[main_f.index()], vec![MAIN_THREAD]);
        assert_eq!(ts.threads_of_func[w.index()], vec![t]);
        assert_eq!(ts.parent[t.index()], MAIN_THREAD);
    }

    #[test]
    fn helper_called_from_both_threads_belongs_to_both() {
        let (prog, _cg, ts) = setup(
            "fn main() { p = alloc o; call h(p); fork t w(p); }
             fn w(x) { call h(x); }
             fn h(y) { use y; }",
        );
        let h = prog.func_by_name("h").unwrap();
        assert_eq!(ts.threads_of_func[h.index()].len(), 2);
        let free_site = prog.deref_sites()[0];
        assert!(ts.may_be_in_distinct_threads(&prog, free_site, free_site));
    }

    #[test]
    fn nested_fork_has_correct_parent() {
        let (prog, _cg, ts) = setup(
            "fn main() { p = alloc o; fork t1 w1(p); }
             fn w1(x) { fork t2 w2(x); }
             fn w2(y) { use y; }",
        );
        let t1 = prog.thread_by_name("t1").unwrap();
        let t2 = prog.thread_by_name("t2").unwrap();
        assert_eq!(ts.parent[t2.index()], t1);
        assert_eq!(ts.ancestors(t2), vec![t2, t1, MAIN_THREAD]);
    }

    #[test]
    fn same_function_same_thread_not_distinct() {
        let (prog, _cg, ts) = setup("fn main() { p = alloc o; free p; use p; }");
        let f = prog.free_sites()[0];
        let d = prog.deref_sites()[0];
        assert!(!ts.may_be_in_distinct_threads(&prog, f, d));
    }
}
