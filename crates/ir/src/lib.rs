//! # canary-ir
//!
//! The bounded concurrent-program intermediate representation underlying
//! the Canary reproduction (PLDI 2021, "Canary: Practical Static
//! Detection of Inter-thread Value-Flow Bugs").
//!
//! This crate provides:
//!
//! * the partial-SSA language of Fig. 3 ([`Inst`], [`Function`],
//!   [`Program`]) over the abstract domains of Fig. 4 ([`VarId`],
//!   [`ObjId`], [`Label`], [`ThreadId`]);
//! * a textual front end ([`parse`]) and a programmatic
//!   [`ProgramBuilder`], both of which produce *bounded* programs —
//!   loops unrolled, CFGs acyclic (§3.1);
//! * the thread call graph with Steensgaard-style function-pointer
//!   resolution ([`callgraph`], §6);
//! * thread structure and membership ([`threads`]);
//! * the interprocedural statement order graph ([`order`]) used both for
//!   may-happen-in-parallel pruning ([`mhp`], §6) and for the partial
//!   order constraints `Φ_po` of §5.1.
//!
//! # Examples
//!
//! ```
//! let prog = canary_ir::parse(
//!     "fn main() { p = alloc o; fork t w(p); free p; join t; }
//!      fn w(q) { use q; }",
//! )?;
//! prog.validate()?;
//! assert_eq!(prog.threads.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod callgraph;
pub mod clone;
pub mod func;
pub mod ids;
pub mod inst;
pub mod mhp;
pub mod order;
pub mod parser;
pub mod printer;
pub mod program;
pub mod step;
pub mod threads;

pub use builder::{FuncBody, ProgramBuilder};
pub use callgraph::{CallGraph, Steensgaard};
pub use clone::{clone_contexts, CloneOptions};
pub use func::{BasicBlock, Function};
pub use ids::{BlockId, CondId, FuncId, Label, ObjId, ThreadId, VarId, MAIN_THREAD};
pub use inst::{BinOp, Callee, CondExpr, Inst, Terminator, UnOp};
pub use mhp::MhpAnalysis;
pub use order::OrderGraph;
pub use parser::{parse, parse_with, ParseError, ParseOptions};
pub use printer::{print_program, render_inst};
pub use program::{ObjInfo, Program, Stmt, ThreadInfo, ValidationError, VarInfo};
pub use step::{block_reaches, Cursor, StepPoint};
pub use threads::ThreadStructure;
