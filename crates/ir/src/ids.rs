//! Newtype identifiers for the abstract domains of Fig. 4 in the paper:
//! threads `t ∈ T`, labels `ℓ ∈ L`, objects `o ∈ O` and top-level
//! variables `v ∈ V`, plus functions, basic blocks and branch-condition
//! atoms which the formalization leaves implicit.
//!
//! All identifiers are dense `u32` indices into per-[`Program`] tables,
//! which keeps every analysis able to use flat `Vec`-indexed side tables
//! instead of hash maps on hot paths.
//!
//! [`Program`]: crate::Program

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// A top-level (SSA) variable `v ∈ V`.
    ///
    /// Top-level variables are directly accessed, never via loads or
    /// stores, and are in SSA form within a function (partial SSA, after
    /// the LLVM convention the paper follows).
    VarId,
    "v"
);

define_id!(
    /// An address-taken abstract memory object `o ∈ O`.
    ///
    /// Objects are identified by their allocation site. They are accessed
    /// only indirectly, through [`Inst::Load`] and [`Inst::Store`], and are
    /// the only values that may be shared between threads (§3.1).
    ///
    /// [`Inst::Load`]: crate::Inst::Load
    /// [`Inst::Store`]: crate::Inst::Store
    ObjId,
    "o"
);

define_id!(
    /// A program label `ℓ ∈ L`: the position of one statement in the
    /// program-wide statement table. Labels are globally unique and densely
    /// numbered, so they double as SMT event indices for the strict
    /// partial-order atoms `O_ℓ1 < O_ℓ2`.
    Label,
    "l"
);

define_id!(
    /// A function in the program.
    FuncId,
    "f"
);

define_id!(
    /// A basic block within a function's control-flow graph.
    BlockId,
    "b"
);

define_id!(
    /// A static thread identifier `t ∈ T`.
    ///
    /// Per §3.1, a thread corresponds to a context-sensitive fork site;
    /// the bounding of loops and recursion makes the set of threads finite.
    /// Thread 0 is always the main thread.
    ThreadId,
    "t"
);

define_id!(
    /// A named, opaque branch-condition atom (the `θ` of Fig. 2).
    ///
    /// The paper treats path conditions symbolically; two branches that
    /// test the same atom (possibly negated) are correlated, which is what
    /// allows the Fig. 2 false positive to be refuted.
    CondId,
    "c"
);

/// The main thread: the root of the thread call graph.
pub const MAIN_THREAD: ThreadId = ThreadId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let v = VarId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(u32::from(v), 7);
        assert_eq!(VarId::from(7u32), v);
    }

    #[test]
    fn id_display_uses_domain_prefix() {
        assert_eq!(VarId::new(3).to_string(), "v3");
        assert_eq!(ObjId::new(0).to_string(), "o0");
        assert_eq!(Label::new(12).to_string(), "l12");
        assert_eq!(ThreadId::new(1).to_string(), "t1");
        assert_eq!(CondId::new(2).to_string(), "c2");
        assert_eq!(format!("{:?}", BlockId::new(4)), "b4");
        assert_eq!(format!("{:?}", FuncId::new(5)), "f5");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(Label::new(1) < Label::new(2));
        assert!(VarId::new(0) < VarId::new(10));
    }

    #[test]
    fn main_thread_is_zero() {
        assert_eq!(MAIN_THREAD.index(), 0);
    }
}
