//! A programmatic builder for [`Program`]s.
//!
//! The builder interns variables per function, objects / condition atoms /
//! threads per program, and offers structured `if`/`else` so client code
//! (tests, examples, the workload generator) never manipulates raw block
//! ids. The textual front end in [`crate::parser`] lowers onto this API.
//!
//! # Examples
//!
//! Building the Fig. 2 program of the paper:
//!
//! ```
//! use canary_ir::{CondExpr, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.func("main", &["a"]);
//! let thread1 = b.func("thread1", &["y"]);
//! let theta = b.cond("theta1");
//! {
//!     let mut f = b.body(main);
//!     let a = f.var("a");
//!     let x = f.alloc("x", "o1");
//!     f.store(x, a);
//!     f.fork("t", "thread1", &[x]);
//!     f.if_then(CondExpr::atom(theta), |f| {
//!         let c = f.load("c", x);
//!         f.deref(c);
//!     });
//! }
//! {
//!     let mut f = b.body(thread1);
//!     let y = f.var("y");
//!     let bv = f.alloc("b", "o2");
//!     f.if_then(CondExpr::not_atom(theta), |f| {
//!         f.store(y, bv);
//!         f.free(bv);
//!     });
//! }
//! b.set_entry(main);
//! let prog = b.finish();
//! prog.validate()?;
//! # Ok::<(), canary_ir::ValidationError>(())
//! ```

use std::collections::HashMap;

use crate::ids::{BlockId, CondId, FuncId, Label, ObjId, ThreadId, VarId, MAIN_THREAD};
use crate::inst::{BinOp, Callee, CondExpr, Inst, Terminator, UnOp};
use crate::program::{ObjInfo, Program, Stmt, ThreadInfo, VarInfo};
use crate::{BasicBlock, Function};

/// Builds a [`Program`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
    var_names: HashMap<(FuncId, String), VarId>,
    obj_names: HashMap<String, ObjId>,
    cond_names: HashMap<String, CondId>,
    thread_names: HashMap<String, ThreadId>,
    aux_counter: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            prog: Program::new(),
            var_names: HashMap::new(),
            obj_names: HashMap::new(),
            cond_names: HashMap::new(),
            thread_names: HashMap::new(),
            aux_counter: 0,
        }
    }

    /// Declares a function with named parameters and returns its id.
    /// The function body starts as a single empty entry block.
    pub fn func(&mut self, name: &str, params: &[&str]) -> FuncId {
        let id = FuncId::new(self.prog.funcs.len() as u32);
        let mut func = Function {
            id,
            name: name.to_string(),
            params: Vec::new(),
            blocks: vec![BasicBlock::new()],
            entry: BlockId::new(0),
        };
        self.prog.funcs.push(func.clone());
        for p in params {
            let v = self.intern_var(id, p);
            func.params.push(v);
        }
        self.prog.funcs[id.index()].params = func.params;
        id
    }

    /// Positions a statement cursor at the end of `f`'s entry block.
    pub fn body(&mut self, f: FuncId) -> FuncBody<'_> {
        let cur = self.prog.funcs[f.index()].entry;
        FuncBody {
            b: self,
            func: f,
            cur,
        }
    }

    /// Declares (or returns) the condition atom with the given name.
    pub fn cond(&mut self, name: &str) -> CondId {
        if let Some(&c) = self.cond_names.get(name) {
            return c;
        }
        let c = CondId::new(self.prog.conds.len() as u32);
        self.prog.conds.push(name.to_string());
        self.cond_names.insert(name.to_string(), c);
        c
    }

    /// Sets the program entry function.
    pub fn set_entry(&mut self, f: FuncId) {
        self.prog.entry = Some(f);
        self.prog.threads[MAIN_THREAD.index()].entry = Some(Callee::Direct(f));
    }

    /// Finishes the build and returns the program.
    pub fn finish(self) -> Program {
        self.prog
    }

    /// Direct access to the program under construction.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    fn intern_var(&mut self, func: FuncId, name: &str) -> VarId {
        if let Some(&v) = self.var_names.get(&(func, name.to_string())) {
            return v;
        }
        let v = VarId::new(self.prog.vars.len() as u32);
        self.prog.vars.push(VarInfo {
            name: name.to_string(),
            func: Some(func),
        });
        self.var_names.insert((func, name.to_string()), v);
        v
    }

    fn intern_obj(&mut self, name: &str) -> ObjId {
        if let Some(&o) = self.obj_names.get(name) {
            return o;
        }
        let o = ObjId::new(self.prog.objs.len() as u32);
        self.prog.objs.push(ObjInfo {
            name: name.to_string(),
            alloc_site: None,
        });
        self.obj_names.insert(name.to_string(), o);
        o
    }

    fn intern_thread(&mut self, name: &str) -> ThreadId {
        if let Some(&t) = self.thread_names.get(name) {
            return t;
        }
        let t = ThreadId::new(self.prog.threads.len() as u32);
        self.prog.threads.push(ThreadInfo {
            name: name.to_string(),
            fork_site: None,
            join_site: None,
            parent: MAIN_THREAD,
            entry: None,
        });
        self.thread_names.insert(name.to_string(), t);
        t
    }

    /// A fresh auxiliary variable name, for lowering passes that must
    /// introduce temporaries (§3.1 nested-dereference elimination).
    pub fn fresh_aux(&mut self) -> String {
        self.aux_counter += 1;
        format!("%aux{}", self.aux_counter)
    }
}

/// A statement cursor into one function of a [`ProgramBuilder`].
#[derive(Debug)]
pub struct FuncBody<'a> {
    b: &'a mut ProgramBuilder,
    func: FuncId,
    cur: BlockId,
}

impl FuncBody<'_> {
    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// Read access to the program under construction (for name lookups).
    pub fn program(&self) -> &Program {
        &self.b.prog
    }

    /// Interns (or looks up) a variable in this function's scope.
    pub fn var(&mut self, name: &str) -> VarId {
        self.b.intern_var(self.func, name)
    }

    /// Declares (or returns) a condition atom. Atoms are program-global so
    /// branches in different threads can test the same `θ`.
    pub fn cond(&mut self, name: &str) -> CondId {
        self.b.cond(name)
    }

    fn push(&mut self, inst: Inst) -> Label {
        let l = Label::new(self.b.prog.stmts.len() as u32);
        self.b.prog.stmts.push(Stmt {
            inst,
            func: self.func,
            block: self.cur,
        });
        self.b.prog.funcs[self.func.index()].blocks[self.cur.index()]
            .stmts
            .push(l);
        l
    }

    /// The label of the most recently emitted instruction. Useful when a
    /// caller needs the label of a statement whose emitter returns a
    /// [`VarId`] (loads, stores, null/taint assignments).
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been emitted yet.
    pub fn last_label(&self) -> Label {
        assert!(
            !self.b.prog.stmts.is_empty(),
            "last_label before any instruction"
        );
        Label::new(self.b.prog.stmts.len() as u32 - 1)
    }

    fn new_block(&mut self) -> BlockId {
        let f = &mut self.b.prog.funcs[self.func.index()];
        let id = BlockId::new(f.blocks.len() as u32);
        f.blocks.push(BasicBlock::new());
        id
    }

    fn set_term(&mut self, blk: BlockId, term: Terminator) {
        self.b.prog.funcs[self.func.index()].blocks[blk.index()].term = term;
    }

    /// `dst = alloc_obj`.
    pub fn alloc(&mut self, dst: &str, obj: &str) -> VarId {
        let d = self.var(dst);
        let o = self.b.intern_obj(obj);
        let l = self.push(Inst::Alloc { dst: d, obj: o });
        if self.b.prog.objs[o.index()].alloc_site.is_none() {
            self.b.prog.objs[o.index()].alloc_site = Some(l);
        }
        d
    }

    /// `dst = &func` — function-pointer creation.
    pub fn fn_addr(&mut self, dst: &str, func: FuncId) -> VarId {
        let d = self.var(dst);
        self.push(Inst::FuncAddr { dst: d, func });
        d
    }

    /// `dst = src` with a fresh destination name.
    pub fn copy(&mut self, dst: &str, src: VarId) -> VarId {
        let d = self.var(dst);
        self.push(Inst::Copy { dst: d, src });
        d
    }

    /// `dst = src` onto an existing variable (no SSA freshness check;
    /// validation will reject double definitions).
    pub fn copy_into(&mut self, dst: VarId, src: VarId) {
        self.push(Inst::Copy { dst, src });
    }

    /// `dst = *addr`.
    pub fn load(&mut self, dst: &str, addr: VarId) -> VarId {
        let d = self.var(dst);
        self.push(Inst::Load { dst: d, addr });
        d
    }

    /// `*addr = src`.
    pub fn store(&mut self, addr: VarId, src: VarId) {
        self.push(Inst::Store { addr, src });
    }

    /// `dst = lhs op rhs`.
    pub fn bin(&mut self, dst: &str, op: BinOp, lhs: VarId, rhs: VarId) -> VarId {
        let d = self.var(dst);
        self.push(Inst::Bin {
            dst: d,
            op,
            lhs,
            rhs,
        });
        d
    }

    /// `dst = op src`.
    pub fn un(&mut self, dst: &str, op: UnOp, src: VarId) -> VarId {
        let d = self.var(dst);
        self.push(Inst::Un { dst: d, op, src });
        d
    }

    /// `(dsts) = call name(args)` by function name (resolved at finish
    /// time by name; unknown names become indirect via a fresh variable).
    pub fn call(&mut self, dsts: &[&str], callee: &str, args: &[VarId]) -> Vec<VarId> {
        let ds: Vec<VarId> = dsts.iter().map(|d| self.b.intern_var(self.func, d)).collect();
        let callee = match self.b.prog.func_by_name(callee) {
            Some(f) => Callee::Direct(f),
            None => Callee::Indirect(self.b.intern_var(self.func, callee)),
        };
        self.push(Inst::Call {
            dsts: ds.clone(),
            callee,
            args: args.to_vec(),
        });
        ds
    }

    /// `(dsts) = call f(args)` with a known function id.
    pub fn call_direct(&mut self, dsts: &[&str], callee: FuncId, args: &[VarId]) -> Vec<VarId> {
        let ds: Vec<VarId> = dsts.iter().map(|d| self.b.intern_var(self.func, d)).collect();
        self.push(Inst::Call {
            dsts: ds.clone(),
            callee: Callee::Direct(callee),
            args: args.to_vec(),
        });
        ds
    }

    /// `fork(thread, entry, args)` by entry-function name. Returns the
    /// static thread id.
    pub fn fork(&mut self, thread: &str, entry: &str, args: &[VarId]) -> ThreadId {
        let callee = match self.b.prog.func_by_name(entry) {
            Some(f) => Callee::Direct(f),
            None => Callee::Indirect(self.b.intern_var(self.func, entry)),
        };
        self.fork_callee(thread, callee, args)
    }

    /// `fork(thread, entry, args)` through a function-pointer variable.
    pub fn fork_indirect(&mut self, thread: &str, fp: VarId, args: &[VarId]) -> ThreadId {
        self.fork_callee(thread, Callee::Indirect(fp), args)
    }

    fn fork_callee(&mut self, thread: &str, entry: Callee, args: &[VarId]) -> ThreadId {
        let t = self.b.intern_thread(thread);
        let l = self.push(Inst::Fork {
            thread: t,
            entry: entry.clone(),
            args: args.to_vec(),
        });
        let info = &mut self.b.prog.threads[t.index()];
        info.fork_site = Some(l);
        info.entry = Some(entry);
        t
    }

    /// `join(thread)` by thread name.
    pub fn join(&mut self, thread: &str) -> ThreadId {
        let t = self.b.intern_thread(thread);
        let l = self.push(Inst::Join { thread: t });
        self.b.prog.threads[t.index()].join_site = Some(l);
        t
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: VarId) -> Label {
        self.push(Inst::Free { ptr })
    }

    /// `use(*ptr)` — a dereference sink.
    pub fn deref(&mut self, ptr: VarId) -> Label {
        self.push(Inst::Deref { ptr })
    }

    /// `dst = null`.
    pub fn null(&mut self, dst: &str) -> VarId {
        let d = self.var(dst);
        self.push(Inst::AssignNull { dst: d });
        d
    }

    /// `dst = taint_source()`.
    pub fn taint_source(&mut self, dst: &str) -> VarId {
        let d = self.var(dst);
        self.push(Inst::TaintSource { dst: d });
        d
    }

    /// `leak_sink(src)`.
    pub fn taint_sink(&mut self, src: VarId) -> Label {
        self.push(Inst::TaintSink { src })
    }

    /// `lock(m)`.
    pub fn lock(&mut self, mutex: VarId) -> Label {
        self.push(Inst::Lock { mutex })
    }

    /// `unlock(m)`.
    pub fn unlock(&mut self, mutex: VarId) -> Label {
        self.push(Inst::Unlock { mutex })
    }

    /// `wait(cv)`.
    pub fn wait(&mut self, cv: VarId) -> Label {
        self.push(Inst::Wait { cv })
    }

    /// `notify(cv)`.
    pub fn notify(&mut self, cv: VarId) -> Label {
        self.push(Inst::Notify { cv })
    }

    /// `return (vals)`.
    pub fn ret(&mut self, vals: &[VarId]) -> Label {
        self.push(Inst::Return {
            vals: vals.to_vec(),
        })
    }

    /// A no-op statement.
    pub fn nop(&mut self) -> Label {
        self.push(Inst::Nop)
    }

    /// Begins an unstructured two-way branch, returning
    /// `(then, else, join)` block ids. The cursor is left unchanged; use
    /// [`FuncBody::switch_to`] and [`FuncBody::seal_goto`] to fill the
    /// arms. This is the low-level API the parser lowers onto; prefer
    /// [`FuncBody::if_else`] in ordinary client code.
    pub fn begin_branch(&mut self, cond: CondExpr) -> (BlockId, BlockId, BlockId) {
        let then_blk = self.new_block();
        let else_blk = self.new_block();
        let join_blk = self.new_block();
        self.set_term(
            self.cur,
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            },
        );
        (then_blk, else_blk, join_blk)
    }

    /// Moves the cursor to an existing block.
    pub fn switch_to(&mut self, blk: BlockId) {
        self.cur = blk;
    }

    /// Terminates the current block with `goto target` and moves the
    /// cursor to `target`.
    pub fn seal_goto(&mut self, target: BlockId) {
        self.set_term(self.cur, Terminator::Goto(target));
        self.cur = target;
    }

    /// The block the cursor currently appends to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Structured two-way branch: `if (cond) { then } else { els }`.
    ///
    /// After this call the cursor sits in the join block.
    pub fn if_else(
        &mut self,
        cond: CondExpr,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let (then_blk, else_blk, join_blk) = self.begin_branch(cond);
        self.switch_to(then_blk);
        then_f(self);
        self.seal_goto(join_blk);
        self.switch_to(else_blk);
        else_f(self);
        self.seal_goto(join_blk);
        self.switch_to(join_blk);
    }

    /// Structured one-armed branch: `if (cond) { then }`.
    pub fn if_then(&mut self, cond: CondExpr, then_f: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// A bounded loop: `while (cond) { body }`, unrolled `unroll` times
    /// (the paper unrolls each loop twice, §6).
    pub fn while_unrolled(
        &mut self,
        cond: CondExpr,
        unroll: usize,
        mut body: impl FnMut(&mut Self),
    ) {
        if unroll == 0 {
            return;
        }
        self.if_then(cond, |f| {
            body(f);
            f.while_unrolled(cond, unroll - 1, body);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Terminator;

    #[test]
    fn if_else_builds_diamond() {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &[]);
        let c = b.cond("c1");
        {
            let mut f = b.body(main);
            let p = f.alloc("p", "o1");
            f.if_else(
                CondExpr::atom(c),
                |f| {
                    f.free(p);
                },
                |f| {
                    f.deref(p);
                },
            );
            f.nop();
        }
        b.set_entry(main);
        let prog = b.finish();
        prog.validate().unwrap();
        let func = prog.func(main);
        assert_eq!(func.blocks.len(), 4);
        assert!(matches!(
            func.blocks[0].term,
            Terminator::Branch { .. }
        ));
        // The nop lands in the join block.
        assert_eq!(func.blocks[3].stmts.len(), 1);
    }

    #[test]
    fn while_unrolled_twice_nests_two_ifs() {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &[]);
        let c = b.cond("c");
        {
            let mut f = b.body(main);
            let p = f.alloc("p", "o");
            let mut iter = 0;
            f.while_unrolled(CondExpr::atom(c), 2, |f| {
                iter += 1;
                f.deref(p);
            });
        }
        b.set_entry(main);
        let prog = b.finish();
        prog.validate().unwrap();
        // alloc + two deref copies.
        assert_eq!(prog.deref_sites().len(), 2);
    }

    #[test]
    fn fork_records_thread_metadata() {
        let mut b = ProgramBuilder::new();
        let worker = b.func("worker", &["x"]);
        let main = b.func("main", &[]);
        {
            let mut f = b.body(worker);
            let x = f.var("x");
            f.deref(x);
        }
        {
            let mut f = b.body(main);
            let p = f.alloc("p", "o");
            f.fork("t1", "worker", &[p]);
            f.join("t1");
        }
        b.set_entry(main);
        let prog = b.finish();
        prog.validate().unwrap();
        let t1 = prog.thread_by_name("t1").unwrap();
        let info = &prog.threads[t1.index()];
        assert!(info.fork_site.is_some());
        assert!(info.join_site.is_some());
        assert_eq!(info.entry, Some(Callee::Direct(worker)));
    }

    #[test]
    fn unknown_callee_becomes_indirect() {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &[]);
        {
            let mut f = b.body(main);
            let p = f.alloc("fp", "o");
            let _ = p;
            f.call(&[], "fp", &[]);
        }
        b.set_entry(main);
        let prog = b.finish();
        let l = prog.labels().nth(1).unwrap();
        assert!(matches!(
            prog.inst(l),
            Inst::Call {
                callee: Callee::Indirect(_),
                ..
            }
        ));
    }

    #[test]
    fn doc_example_fig2_builds() {
        // Mirrors the module-level doc example.
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &["a"]);
        let thread1 = b.func("thread1", &["y"]);
        let theta = b.cond("theta1");
        {
            let mut f = b.body(main);
            let a = f.var("a");
            let x = f.alloc("x", "o1");
            f.store(x, a);
            f.fork("t", "thread1", &[x]);
            f.if_then(CondExpr::atom(theta), |f| {
                let c = f.load("c", x);
                f.deref(c);
            });
        }
        {
            let mut f = b.body(thread1);
            let y = f.var("y");
            let bv = f.alloc("b", "o2");
            f.if_then(CondExpr::not_atom(theta), |f| {
                f.store(y, bv);
                f.free(bv);
            });
        }
        b.set_entry(main);
        let prog = b.finish();
        prog.validate().unwrap();
        assert_eq!(prog.threads.len(), 2);
        assert_eq!(prog.free_sites().len(), 1);
        assert_eq!(prog.deref_sites().len(), 1);
    }
}
