//! A pretty-printer for [`Program`]s.
//!
//! The output is a human-readable structured dump (one statement per
//! line with its label and block structure); it is intended for golden
//! tests and bug-report rendering rather than byte-exact round-tripping,
//! since parsing desugars `while` loops and SSA-renames re-definitions.

use std::fmt::Write as _;

use crate::ids::{BlockId, FuncId, Label};
use crate::inst::{Callee, Inst, Terminator};
use crate::program::Program;

/// Renders the whole program.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for f in &prog.funcs {
        print_func(prog, f.id, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one function into `out`.
pub fn print_func(prog: &Program, f: FuncId, out: &mut String) {
    let func = prog.func(f);
    let params: Vec<&str> = func
        .params
        .iter()
        .map(|&p| prog.var_name(p))
        .collect();
    let _ = writeln!(out, "fn {}({}) {{", func.name, params.join(", "));
    for (bi, block) in func.blocks.iter().enumerate() {
        let _ = writeln!(out, "  {}:", BlockId::new(bi as u32));
        for &l in &block.stmts {
            let _ = writeln!(out, "    {l}: {}", render_inst(prog, l));
        }
        match &block.term {
            Terminator::Goto(b) => {
                let _ = writeln!(out, "    goto {b}");
            }
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = match cond {
                    crate::inst::CondExpr::True => "true".to_string(),
                    crate::inst::CondExpr::False => "false".to_string(),
                    crate::inst::CondExpr::Atom { cond, negated } => {
                        let name = prog.cond_name(*cond);
                        if *negated {
                            format!("!{name}")
                        } else {
                            name.to_string()
                        }
                    }
                };
                let _ = writeln!(out, "    if ({c}) goto {then_blk} else {else_blk}");
            }
            Terminator::Exit => {
                let _ = writeln!(out, "    exit");
            }
        }
    }
    let _ = writeln!(out, "}}");
}

/// Renders a single instruction with program-level names.
pub fn render_inst(prog: &Program, l: Label) -> String {
    let v = |id: crate::ids::VarId| prog.var_name(id).to_string();
    match prog.inst(l) {
        Inst::Alloc { dst, obj } => format!("{} = alloc {}", v(*dst), prog.obj_name(*obj)),
        Inst::Copy { dst, src } => format!("{} = {}", v(*dst), v(*src)),
        Inst::FuncAddr { dst, func } => {
            format!("{} = fnptr {}", v(*dst), prog.func(*func).name)
        }
        Inst::Load { dst, addr } => format!("{} = *{}", v(*dst), v(*addr)),
        Inst::Store { addr, src } => format!("*{} = {}", v(*addr), v(*src)),
        Inst::Bin { dst, op, lhs, rhs } => {
            format!("{} = {} {op} {}", v(*dst), v(*lhs), v(*rhs))
        }
        Inst::Un { dst, op, src } => format!("{} = {op}{}", v(*dst), v(*src)),
        Inst::Call { dsts, callee, args } => {
            let ds: Vec<String> = dsts.iter().map(|&d| v(d)).collect();
            let as_: Vec<String> = args.iter().map(|&a| v(a)).collect();
            let callee = render_callee(prog, callee);
            if ds.is_empty() {
                format!("call {callee}({})", as_.join(", "))
            } else {
                format!("{} = call {callee}({})", ds.join(", "), as_.join(", "))
            }
        }
        Inst::Fork {
            thread,
            entry,
            args,
        } => {
            let as_: Vec<String> = args.iter().map(|&a| v(a)).collect();
            format!(
                "fork {} {}({})",
                prog.threads[thread.index()].name,
                render_callee(prog, entry),
                as_.join(", ")
            )
        }
        Inst::Join { thread } => format!("join {}", prog.threads[thread.index()].name),
        Inst::Free { ptr } => format!("free {}", v(*ptr)),
        Inst::Deref { ptr } => format!("use {}", v(*ptr)),
        Inst::AssignNull { dst } => format!("{} = null", v(*dst)),
        Inst::TaintSource { dst } => format!("{} = taint", v(*dst)),
        Inst::TaintSink { src } => format!("sink {}", v(*src)),
        Inst::Lock { mutex } => format!("lock {}", v(*mutex)),
        Inst::Unlock { mutex } => format!("unlock {}", v(*mutex)),
        Inst::Wait { cv } => format!("wait {}", v(*cv)),
        Inst::Notify { cv } => format!("notify {}", v(*cv)),
        Inst::Return { vals } => {
            let vs: Vec<String> = vals.iter().map(|&x| v(x)).collect();
            format!("return {}", vs.join(", "))
        }
        Inst::Nop => "skip".to_string(),
    }
}

fn render_callee(prog: &Program, c: &Callee) -> String {
    match c {
        Callee::Direct(f) => prog.func(*f).name.clone(),
        Callee::Indirect(v) => format!("*{}", prog.var_name(*v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn printed_program_mentions_every_statement_form() {
        let src = r#"
            fn main(a) {
                x = alloc o1;
                *x = a;
                fork t w(x);
                c = *x;
                use c;
                join t;
                free c;
                n = null;
                s = taint;
                sink s;
                lock x;
                unlock x;
                return;
            }
            fn w(y) {
                skip;
            }
        "#;
        let prog = parse(src).unwrap();
        let text = print_program(&prog);
        for needle in [
            "x = alloc o1",
            "*x = a",
            "fork t w(x)",
            "c = *x",
            "use c",
            "join t",
            "free c",
            "n = null",
            "s = taint",
            "sink s",
            "lock x",
            "unlock x",
            "return",
            "skip",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn printed_branches_name_conditions() {
        let prog = parse("fn main() { if (!t1) { skip; } }").unwrap();
        let text = print_program(&prog);
        assert!(text.contains("if (!t1)"), "{text}");
    }

    #[test]
    fn reparse_of_simple_straightline_print_is_stable() {
        // The printer is not a strict inverse of the parser, but a
        // straight-line body survives print→inspect unchanged.
        let prog = parse("fn main() { p = alloc o; q = p; free q; }").unwrap();
        let text = print_program(&prog);
        assert!(text.contains("p = alloc o"));
        assert!(text.contains("q = p"));
        assert!(text.contains("free q"));
    }
}
