//! May-happen-in-parallel analysis (§6, "Performance").
//!
//! The paper prunes interference candidates with an MHP analysis: a load
//! and a store that can never execute concurrently cannot share an
//! interference dependence (Defn. 1). We decide MHP from two ingredients
//! already computed for the rest of the pipeline:
//!
//! * thread membership ([`ThreadStructure`]) — the pair must be able to
//!   run in *distinct* threads;
//! * the interprocedural happens-before of [`OrderGraph`] — fork/join
//!   synchronization orders a parent's prefix before the child and the
//!   child before the parent's post-join suffix; any such order excludes
//!   parallelism.

use crate::callgraph::CallGraph;
use crate::ids::Label;
use crate::order::OrderGraph;
use crate::program::Program;
use crate::threads::ThreadStructure;

/// Decides may-happen-in-parallel queries over a bounded program.
#[derive(Debug)]
pub struct MhpAnalysis<'p> {
    prog: &'p Program,
    ts: &'p ThreadStructure,
    og: OrderGraph<'p>,
}

impl<'p> MhpAnalysis<'p> {
    /// Builds the analysis from the shared program facts.
    pub fn new(prog: &'p Program, cg: &'p CallGraph, ts: &'p ThreadStructure) -> Self {
        MhpAnalysis {
            prog,
            ts,
            og: OrderGraph::build(prog, cg),
        }
    }

    /// Access to the underlying order graph (shared with `Φ_po`
    /// generation so both use one definition of program order).
    pub fn order_graph(&self) -> &OrderGraph<'p> {
        &self.og
    }

    /// Whether the statements at `l1` and `l2` may execute concurrently
    /// in distinct threads.
    pub fn may_happen_in_parallel(&self, l1: Label, l2: Label) -> bool {
        if !self.ts.may_be_in_distinct_threads(self.prog, l1, l2) {
            return false;
        }
        !self.og.happens_before(l1, l2) && !self.og.happens_before(l2, l1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn setup(src: &str) -> (Program, CallGraph, ThreadStructure) {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let ts = ThreadStructure::compute(&prog, &cg);
        (prog, cg, ts)
    }

    #[test]
    fn parallel_window_between_fork_and_join() {
        let (prog, cg, ts) = setup(
            "fn main() { p = alloc o; fork t w(p); free p; join t; use p; }
             fn w(x) { x2 = x; }",
        );
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let free = prog.free_sites()[0]; // between fork and join
        let deref = prog.deref_sites()[0]; // after join
        let child = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), crate::inst::Inst::Copy { .. }))
            .unwrap();
        assert!(mhp.may_happen_in_parallel(free, child));
        assert!(!mhp.may_happen_in_parallel(deref, child));
        // Same-thread statements never count as parallel.
        assert!(!mhp.may_happen_in_parallel(free, deref));
    }

    #[test]
    fn statements_before_fork_not_parallel_with_child() {
        let (prog, cg, ts) = setup(
            "fn main() { p = alloc o; free p; fork t w(p); }
             fn w(x) { use x; }",
        );
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert!(!mhp.may_happen_in_parallel(free, deref));
    }

    #[test]
    fn sibling_threads_are_parallel() {
        let (prog, cg, ts) = setup(
            "fn main() { p = alloc o; fork t1 w1(p); fork t2 w2(p); }
             fn w1(x) { free x; }
             fn w2(y) { use y; }",
        );
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert!(mhp.may_happen_in_parallel(free, deref));
    }

    #[test]
    fn joined_sibling_not_parallel_with_later_fork() {
        let (prog, cg, ts) = setup(
            "fn main() { p = alloc o; fork t1 w1(p); join t1; fork t2 w2(p); }
             fn w1(x) { free x; }
             fn w2(y) { use y; }",
        );
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert!(!mhp.may_happen_in_parallel(free, deref));
    }

    #[test]
    fn shared_helper_is_parallel_with_itself_across_threads() {
        let (prog, cg, ts) = setup(
            "fn main() { p = alloc o; fork t w(p); call h(p); }
             fn w(x) { call h(x); }
             fn h(y) { use y; }",
        );
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let deref = prog.deref_sites()[0];
        assert!(mhp.may_happen_in_parallel(deref, deref));
    }
}
