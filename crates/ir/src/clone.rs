//! Clone-based context sensitivity (§5.1, §7.2).
//!
//! The paper maintains "intra-thread context-sensitivity … using the
//! clone-based function summary" with "the number of nested levels of
//! calling context … set to six". This module realizes that design as
//! an IR-to-IR transform: a function invoked from several call or fork
//! sites is duplicated so that each site targets its own copy, applied
//! top-down and repeated up to the configured depth. After cloning,
//! label-keyed analyses (VFG nodes, program order, `Pted`) are
//! automatically context-sensitive — no analysis code changes.
//!
//! Cloned fork sites become *distinct static threads*, which is exactly
//! the paper's §3.1 definition ("a thread id t ∈ T … corresponds to a
//! context-sensitive fork site").
//!
//! A global size cap bounds the worst-case exponential duplication; when
//! the cap is hit remaining sites keep sharing, which is the same
//! soundiness class as the paper's depth cut.

use std::collections::HashMap;

use crate::ids::{BlockId, FuncId, Label, ThreadId, VarId};
use crate::inst::{Callee, Inst};
use crate::program::{Program, Stmt, ThreadInfo};
use crate::Function;

/// Options for the cloning transform.
#[derive(Clone, Debug)]
pub struct CloneOptions {
    /// Nested context levels (the paper's §7.2 uses 6). Zero disables
    /// the transform.
    pub depth: usize,
    /// Stop cloning when the program grows beyond
    /// `max_growth × original statements`.
    pub max_growth: usize,
}

impl Default for CloneOptions {
    fn default() -> Self {
        CloneOptions {
            depth: 6,
            max_growth: 8,
        }
    }
}

/// Applies clone-based context sensitivity, returning the transformed
/// program. The result revalidates under the same invariants.
pub fn clone_contexts(prog: &Program, opts: &CloneOptions) -> Program {
    let mut cur = prog.clone();
    if opts.depth == 0 {
        return cur;
    }
    let budget = prog.stmt_count().saturating_mul(opts.max_growth);
    for _ in 0..opts.depth {
        let (next, changed) = clone_round(&cur, budget);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

/// One top-down cloning round: every direct call/fork site whose callee
/// is shared with another site gets a private copy (first site keeps
/// the original).
fn clone_round(prog: &Program, budget: usize) -> (Program, bool) {
    // Count direct references per callee.
    let mut refs: HashMap<FuncId, Vec<Label>> = HashMap::new();
    for l in prog.labels() {
        match prog.inst(l) {
            Inst::Call {
                callee: Callee::Direct(g),
                ..
            }
            | Inst::Fork {
                entry: Callee::Direct(g),
                ..
            } => refs.entry(*g).or_default().push(l),
            _ => {}
        }
    }
    let entry = prog.entry.expect("validated program has an entry");
    // Sites that need a clone: every reference but the first, for
    // callees with more than one reference (never clone the entry).
    let mut to_clone: Vec<(Label, FuncId)> = Vec::new();
    for (g, sites) in &refs {
        if *g == entry || sites.len() < 2 {
            continue;
        }
        let mut sorted = sites.clone();
        sorted.sort();
        for &site in &sorted[1..] {
            to_clone.push((site, *g));
        }
    }
    if to_clone.is_empty() {
        return (prog.clone(), false);
    }
    to_clone.sort();

    let mut out = Rebuilder::new(prog);
    let mut growth = prog.stmt_count();
    let mut clone_of_site: HashMap<Label, FuncId> = HashMap::new();
    for (site, g) in to_clone {
        let size = prog.func(g).stmt_count();
        if growth + size > budget {
            break;
        }
        growth += size;
        let fresh = out.clone_function(g);
        clone_of_site.insert(site, fresh);
    }
    if clone_of_site.is_empty() {
        return (prog.clone(), false);
    }
    out.retarget_sites(&clone_of_site);
    (out.finish(), true)
}

/// Builds the transformed program: original content first (ids
/// preserved), clones appended with remapped labels/vars/blocks.
struct Rebuilder {
    prog: Program,
}

impl Rebuilder {
    fn new(orig: &Program) -> Self {
        Rebuilder { prog: orig.clone() }
    }

    /// Appends a fresh copy of `g`; returns its id.
    fn clone_function(&mut self, g: FuncId) -> FuncId {
        let src = self.prog.func(g).clone();
        let new_id = FuncId::new(self.prog.funcs.len() as u32);
        let n_existing = self
            .prog
            .funcs
            .iter()
            .filter(|f| f.name.starts_with(&format!("{}#", src.name)) || f.name == src.name)
            .count();
        let new_name = format!("{}#{}", src.name, n_existing);

        // Fresh variables for everything the function touches.
        let mut var_map: HashMap<VarId, VarId> = HashMap::new();
        let mut map_var = |prog: &mut Program, v: VarId| -> VarId {
            *var_map.entry(v).or_insert_with(|| {
                let nv = VarId::new(prog.vars.len() as u32);
                let mut info = prog.vars[v.index()].clone();
                info.func = Some(new_id);
                prog.vars.push(info);
                nv
            })
        };

        let params: Vec<VarId> = src
            .params
            .iter()
            .map(|&p| map_var(&mut self.prog, p))
            .collect();

        let mut blocks = Vec::with_capacity(src.blocks.len());
        for (bi, block) in src.blocks.iter().enumerate() {
            let mut stmts = Vec::with_capacity(block.stmts.len());
            for &l in &block.stmts {
                let inst = self.remap_inst(self.prog.inst(l).clone(), &mut map_var);
                let nl = Label::new(self.prog.stmts.len() as u32);
                self.prog.stmts.push(Stmt {
                    inst,
                    func: new_id,
                    block: BlockId::new(bi as u32),
                });
                stmts.push(nl);
            }
            blocks.push(crate::BasicBlock {
                stmts,
                term: block.term.clone(),
            });
        }
        self.prog.funcs.push(Function {
            id: new_id,
            name: new_name,
            params,
            blocks,
            entry: src.entry,
        });
        new_id
    }

    /// Remaps an instruction's variables into the clone's namespace;
    /// fork sites inside the clone become fresh static threads.
    fn remap_inst(
        &mut self,
        inst: Inst,
        map_var: &mut impl FnMut(&mut Program, VarId) -> VarId,
    ) -> Inst {
        let mut mv = |v: VarId, prog: &mut Program| map_var(prog, v);
        match inst {
            Inst::Alloc { dst, obj } => Inst::Alloc {
                dst: mv(dst, &mut self.prog),
                // Context-insensitive heap: clones share the abstract
                // object (a sound, standard choice).
                obj,
            },
            Inst::FuncAddr { dst, func } => Inst::FuncAddr {
                dst: mv(dst, &mut self.prog),
                func,
            },
            Inst::Copy { dst, src } => Inst::Copy {
                dst: mv(dst, &mut self.prog),
                src: mv(src, &mut self.prog),
            },
            Inst::Load { dst, addr } => Inst::Load {
                dst: mv(dst, &mut self.prog),
                addr: mv(addr, &mut self.prog),
            },
            Inst::Store { addr, src } => Inst::Store {
                addr: mv(addr, &mut self.prog),
                src: mv(src, &mut self.prog),
            },
            Inst::Bin { dst, op, lhs, rhs } => Inst::Bin {
                dst: mv(dst, &mut self.prog),
                op,
                lhs: mv(lhs, &mut self.prog),
                rhs: mv(rhs, &mut self.prog),
            },
            Inst::Un { dst, op, src } => Inst::Un {
                dst: mv(dst, &mut self.prog),
                op,
                src: mv(src, &mut self.prog),
            },
            Inst::Call { dsts, callee, args } => Inst::Call {
                dsts: dsts.into_iter().map(|d| mv(d, &mut self.prog)).collect(),
                callee: match callee {
                    Callee::Direct(f) => Callee::Direct(f),
                    Callee::Indirect(v) => Callee::Indirect(mv(v, &mut self.prog)),
                },
                args: args.into_iter().map(|a| mv(a, &mut self.prog)).collect(),
            },
            Inst::Fork {
                thread,
                entry,
                args,
            } => {
                // A cloned fork site is a distinct static thread.
                let tid = ThreadId::new(self.prog.threads.len() as u32);
                let orig = self.prog.threads[thread.index()].clone();
                self.prog.threads.push(ThreadInfo {
                    name: format!("{}#{}", orig.name, tid.0),
                    fork_site: None, // patched when the stmt is placed
                    join_site: None,
                    parent: orig.parent,
                    entry: orig.entry,
                });
                Inst::Fork {
                    thread: tid,
                    entry: match entry {
                        Callee::Direct(f) => Callee::Direct(f),
                        Callee::Indirect(v) => Callee::Indirect(mv(v, &mut self.prog)),
                    },
                    args: args.into_iter().map(|a| mv(a, &mut self.prog)).collect(),
                }
            }
            Inst::Join { thread } => Inst::Join { thread },
            Inst::Free { ptr } => Inst::Free {
                ptr: mv(ptr, &mut self.prog),
            },
            Inst::Deref { ptr } => Inst::Deref {
                ptr: mv(ptr, &mut self.prog),
            },
            Inst::AssignNull { dst } => Inst::AssignNull {
                dst: mv(dst, &mut self.prog),
            },
            Inst::TaintSource { dst } => Inst::TaintSource {
                dst: mv(dst, &mut self.prog),
            },
            Inst::TaintSink { src } => Inst::TaintSink {
                src: mv(src, &mut self.prog),
            },
            Inst::Lock { mutex } => Inst::Lock {
                mutex: mv(mutex, &mut self.prog),
            },
            Inst::Unlock { mutex } => Inst::Unlock {
                mutex: mv(mutex, &mut self.prog),
            },
            Inst::Wait { cv } => Inst::Wait {
                cv: mv(cv, &mut self.prog),
            },
            Inst::Notify { cv } => Inst::Notify {
                cv: mv(cv, &mut self.prog),
            },
            Inst::Return { vals } => Inst::Return {
                vals: vals.into_iter().map(|v| mv(v, &mut self.prog)).collect(),
            },
            Inst::Nop => Inst::Nop,
        }
    }

    /// Redirects each recorded site to its private clone.
    fn retarget_sites(&mut self, clone_of_site: &HashMap<Label, FuncId>) {
        for (&site, &fresh) in clone_of_site {
            match &mut self.prog.stmts[site.index()].inst {
                Inst::Call { callee, .. } => *callee = Callee::Direct(fresh),
                Inst::Fork { entry, .. } => *entry = Callee::Direct(fresh),
                other => unreachable!("recorded site is a call or fork, found {other:?}"),
            }
        }
    }

    /// Repairs thread metadata (fork/join sites) and returns the program.
    fn finish(mut self) -> Program {
        for info in &mut self.prog.threads {
            info.fork_site = None;
            info.join_site = None;
        }
        for l in 0..self.prog.stmts.len() as u32 {
            let l = Label::new(l);
            match self.prog.inst(l).clone() {
                Inst::Fork { thread, entry, .. } => {
                    let info = &mut self.prog.threads[thread.index()];
                    info.fork_site = Some(l);
                    info.entry = Some(entry);
                }
                Inst::Join { thread } => {
                    self.prog.threads[thread.index()].join_site = Some(l);
                }
                _ => {}
            }
        }
        self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn shared_callee_is_split_per_site() {
        let prog = parse(
            "fn h(p) { v = *p; return v; }
             fn main() { a = alloc ca; b = alloc cb; x = call h(a); y = call h(b); }",
        )
        .unwrap();
        let cloned = clone_contexts(&prog, &CloneOptions::default());
        cloned.validate().unwrap();
        assert_eq!(cloned.funcs.len(), 3, "h plus one clone");
        assert!(cloned.func_by_name("h#1").is_some());
        // Both call sites now target distinct functions.
        let targets: Vec<FuncId> = cloned
            .labels()
            .filter_map(|l| match cloned.inst(l) {
                Inst::Call {
                    callee: Callee::Direct(f),
                    ..
                } => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(targets.len(), 2);
        assert_ne!(targets[0], targets[1]);
    }

    #[test]
    fn single_site_callee_untouched() {
        let prog = parse(
            "fn h() { skip; }
             fn main() { call h(); }",
        )
        .unwrap();
        let cloned = clone_contexts(&prog, &CloneOptions::default());
        assert_eq!(cloned.funcs.len(), 2);
        assert_eq!(cloned.stmt_count(), prog.stmt_count());
    }

    #[test]
    fn depth_limits_transitive_cloning() {
        // chain: main calls m twice; m calls inner twice ⇒ depth 1
        // splits m (and the copied sites recursively need depth 2+).
        let prog = parse(
            "fn inner() { skip; }
             fn m() { call inner(); call inner(); }
             fn main() { call m(); call m(); }",
        )
        .unwrap();
        let d1 = clone_contexts(
            &prog,
            &CloneOptions {
                depth: 1,
                max_growth: 64,
            },
        );
        let d3 = clone_contexts(
            &prog,
            &CloneOptions {
                depth: 3,
                max_growth: 64,
            },
        );
        d1.validate().unwrap();
        d3.validate().unwrap();
        assert!(d3.funcs.len() > d1.funcs.len());
        // Full depth: 1 main + 2 m's + 4 inner's = 7.
        assert_eq!(d3.funcs.len(), 7);
    }

    #[test]
    fn cloned_fork_sites_become_new_threads() {
        let prog = parse(
            "fn spawner(c) { fork t w(c); }
             fn w(x) { use x; }
             fn main() { a = alloc ca; b = alloc cb; call spawner(a); call spawner(b); }",
        )
        .unwrap();
        assert_eq!(prog.threads.len(), 2); // main + t
        let cloned = clone_contexts(&prog, &CloneOptions::default());
        cloned.validate().unwrap();
        // spawner duplicated; its fork clone is a third static thread.
        assert_eq!(cloned.threads.len(), 3, "{:?}", cloned.threads);
        for info in cloned.threads.iter().skip(1) {
            assert!(info.fork_site.is_some());
        }
    }

    #[test]
    fn growth_cap_stops_cloning() {
        let prog = parse(
            "fn h() { a1 = alloc o1; a2 = alloc o2; a3 = alloc o3; a4 = alloc o4; }
             fn main() { call h(); call h(); call h(); call h(); }",
        )
        .unwrap();
        let capped = clone_contexts(
            &prog,
            &CloneOptions {
                depth: 6,
                max_growth: 1,
            },
        );
        capped.validate().unwrap();
        // Budget = original size: no clone fits, the program is unchanged.
        assert_eq!(capped.funcs.len(), prog.funcs.len());
    }

    #[test]
    fn zero_depth_is_identity() {
        let prog = parse(
            "fn h() { skip; }
             fn main() { call h(); call h(); }",
        )
        .unwrap();
        let same = clone_contexts(
            &prog,
            &CloneOptions {
                depth: 0,
                max_growth: 8,
            },
        );
        assert_eq!(same, prog);
    }
}
