//! The whole-program container: statement table, functions, variable /
//! object / condition-atom interning, and static thread descriptors.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, CondId, FuncId, Label, ObjId, ThreadId, VarId, MAIN_THREAD};
use crate::inst::{Callee, Inst};
use crate::Function;

/// Per-statement bookkeeping: the instruction plus its CFG position.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stmt {
    /// The instruction at this label.
    pub inst: Inst,
    /// Enclosing function.
    pub func: FuncId,
    /// Enclosing basic block.
    pub block: BlockId,
}

/// Metadata for a top-level variable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarInfo {
    /// Source-level name (unique within its function).
    pub name: String,
    /// Owning function, or `None` for program-level auxiliaries.
    pub func: Option<FuncId>,
}

/// Metadata for an abstract memory object.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjInfo {
    /// Source-level name of the allocation site.
    pub name: String,
    /// The `alloc` statement that creates this object, when known.
    pub alloc_site: Option<Label>,
}

/// A static thread descriptor.
///
/// Per §3.1 a thread corresponds to a fork site of the bounded program;
/// the main thread has no fork site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadInfo {
    /// Source-level thread name (`t` in `fork(t, f)`).
    pub name: String,
    /// The fork statement creating this thread (`None` for main).
    pub fork_site: Option<Label>,
    /// The join statement for this thread, if any.
    pub join_site: Option<Label>,
    /// The parent thread executing the fork.
    pub parent: ThreadId,
    /// The entry function as written (possibly an indirect callee that
    /// the thread call-graph construction later resolves).
    pub entry: Option<Callee>,
}

/// A bounded concurrent program (§3.1): finite threads, unrolled loops,
/// partial-SSA statements.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Statement table indexed by [`Label`].
    pub stmts: Vec<Stmt>,
    /// Function table indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Variable table indexed by [`VarId`].
    pub vars: Vec<VarInfo>,
    /// Object table indexed by [`ObjId`].
    pub objs: Vec<ObjInfo>,
    /// Condition-atom names indexed by [`CondId`].
    pub conds: Vec<String>,
    /// Thread table indexed by [`ThreadId`]; entry 0 is main.
    pub threads: Vec<ThreadInfo>,
    /// The program entry function (runs as the main thread).
    pub entry: Option<FuncId>,
}

impl Eq for Program {}

impl Program {
    /// An empty program with only the main-thread descriptor.
    pub fn new() -> Self {
        Program {
            stmts: Vec::new(),
            funcs: Vec::new(),
            vars: Vec::new(),
            objs: Vec::new(),
            conds: Vec::new(),
            threads: vec![ThreadInfo {
                name: "main".into(),
                fork_site: None,
                join_site: None,
                parent: MAIN_THREAD,
                entry: None,
            }],
            entry: None,
        }
    }

    /// The statement at `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn stmt(&self, l: Label) -> &Stmt {
        &self.stmts[l.index()]
    }

    /// The instruction at `l`.
    #[inline]
    pub fn inst(&self, l: Label) -> &Inst {
        &self.stmts[l.index()].inst
    }

    /// The function containing `l`.
    #[inline]
    pub fn func_of(&self, l: Label) -> FuncId {
        self.stmts[l.index()].func
    }

    /// The function with the given id.
    #[inline]
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Looks up a variable by name within a function (searching the
    /// function's scope, then program-level auxiliaries).
    pub fn var_by_name(&self, func: FuncId, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name && (v.func == Some(func) || v.func.is_none()))
            .map(|i| VarId::new(i as u32))
    }

    /// Looks up an object by name.
    pub fn obj_by_name(&self, name: &str) -> Option<ObjId> {
        self.objs
            .iter()
            .position(|o| o.name == name)
            .map(|i| ObjId::new(i as u32))
    }

    /// Looks up a condition atom by name.
    pub fn cond_by_name(&self, name: &str) -> Option<CondId> {
        self.conds
            .iter()
            .position(|c| c == name)
            .map(|i| CondId::new(i as u32))
    }

    /// Looks up a thread by name.
    pub fn thread_by_name(&self, name: &str) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|t| t.name == name)
            .map(|i| ThreadId::new(i as u32))
    }

    /// Display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Display name of an object.
    pub fn obj_name(&self, o: ObjId) -> &str {
        &self.objs[o.index()].name
    }

    /// Display name of a condition atom.
    pub fn cond_name(&self, c: CondId) -> &str {
        &self.conds[c.index()]
    }

    /// Number of statements in the program.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Iterates over all labels.
    pub fn labels(&self) -> impl Iterator<Item = Label> {
        (0..self.stmts.len() as u32).map(Label::new)
    }

    /// All `free` statements (use-after-free / double-free sources).
    pub fn free_sites(&self) -> Vec<Label> {
        self.labels()
            .filter(|&l| matches!(self.inst(l), Inst::Free { .. }))
            .collect()
    }

    /// All dereference statements (use-after-free / null-deref sinks).
    pub fn deref_sites(&self) -> Vec<Label> {
        self.labels()
            .filter(|&l| matches!(self.inst(l), Inst::Deref { .. }))
            .collect()
    }

    /// Validates structural invariants of a bounded program.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: dangling ids, a statement owned
    /// by the wrong block, double definitions of an SSA variable, a cyclic
    /// CFG (loops must be unrolled, §3.1), or a join of an unknown thread.
    pub fn validate(&self) -> Result<(), ValidationError> {
        use ValidationError as E;
        let entry = self.entry.ok_or(E::NoEntry)?;
        if entry.index() >= self.funcs.len() {
            return Err(E::DanglingFunc(entry));
        }
        // Labels must appear in exactly the block that owns them.
        let mut seen = vec![false; self.stmts.len()];
        for func in &self.funcs {
            // Check terminator targets before the cycle test: the DFS
            // inside `is_acyclic` indexes successor blocks directly.
            for block in &func.blocks {
                for succ in block.term.successors() {
                    if succ.index() >= func.blocks.len() {
                        return Err(E::DanglingBlock(func.id, succ));
                    }
                }
            }
            if !func.is_acyclic() {
                return Err(E::CyclicCfg(func.id));
            }
            for (bi, block) in func.blocks.iter().enumerate() {
                for &l in &block.stmts {
                    let stmt = self.stmts.get(l.index()).ok_or(E::DanglingLabel(l))?;
                    if stmt.func != func.id || stmt.block != BlockId::new(bi as u32) {
                        return Err(E::MisplacedStmt(l));
                    }
                    if seen[l.index()] {
                        return Err(E::DuplicateLabel(l));
                    }
                    seen[l.index()] = true;
                }
            }
        }
        for (i, ok) in seen.iter().enumerate() {
            if !ok {
                return Err(E::OrphanStmt(Label::new(i as u32)));
            }
        }
        // SSA: every top-level variable has at most one defining statement.
        let mut defs: HashMap<VarId, Label> = HashMap::new();
        for l in self.labels() {
            if let Some(d) = self.inst(l).def() {
                if d.index() >= self.vars.len() {
                    return Err(E::DanglingVar(l, d));
                }
                if let Some(&prev) = defs.get(&d) {
                    return Err(E::MultipleDefs(d, prev, l));
                }
                defs.insert(d, l);
            }
            for u in self.inst(l).uses() {
                if u.index() >= self.vars.len() {
                    return Err(E::DanglingVar(l, u));
                }
            }
        }
        // Thread references must resolve.
        for l in self.labels() {
            match self.inst(l) {
                Inst::Fork { thread, .. } | Inst::Join { thread }
                    if thread.index() >= self.threads.len() => {
                        return Err(E::DanglingThread(l, *thread));
                    }
                Inst::Alloc { obj, .. }
                    if obj.index() >= self.objs.len() => {
                        return Err(E::DanglingObj(l, *obj));
                    }
                _ => {}
            }
        }
        Ok(())
    }
}

/// A structural invariant violation reported by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The program has no entry function.
    NoEntry,
    /// The entry function id is out of range.
    DanglingFunc(FuncId),
    /// A block lists a label that is out of range.
    DanglingLabel(Label),
    /// A statement's recorded position disagrees with the block listing it.
    MisplacedStmt(Label),
    /// A label appears in two blocks.
    DuplicateLabel(Label),
    /// A statement is in the table but in no block.
    OrphanStmt(Label),
    /// A terminator targets a block that does not exist.
    DanglingBlock(FuncId, BlockId),
    /// A variable id is out of range.
    DanglingVar(Label, VarId),
    /// An object id is out of range.
    DanglingObj(Label, ObjId),
    /// A thread id is out of range.
    DanglingThread(Label, ThreadId),
    /// An SSA variable is defined twice.
    MultipleDefs(VarId, Label, Label),
    /// A function's CFG contains a cycle (loops must be unrolled, §3.1).
    CyclicCfg(FuncId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoEntry => write!(f, "program has no entry function"),
            ValidationError::DanglingFunc(id) => write!(f, "dangling function id {id}"),
            ValidationError::DanglingLabel(l) => write!(f, "dangling label {l}"),
            ValidationError::MisplacedStmt(l) => {
                write!(f, "statement {l} listed by a block that does not own it")
            }
            ValidationError::DuplicateLabel(l) => write!(f, "label {l} appears in two blocks"),
            ValidationError::OrphanStmt(l) => write!(f, "statement {l} belongs to no block"),
            ValidationError::DanglingBlock(func, b) => {
                write!(f, "function {func} branches to missing block {b}")
            }
            ValidationError::DanglingVar(l, v) => {
                write!(f, "statement {l} references missing variable {v}")
            }
            ValidationError::DanglingObj(l, o) => {
                write!(f, "statement {l} references missing object {o}")
            }
            ValidationError::DanglingThread(l, t) => {
                write!(f, "statement {l} references missing thread {t}")
            }
            ValidationError::MultipleDefs(v, l1, l2) => {
                write!(f, "ssa variable {v} defined at both {l1} and {l2}")
            }
            ValidationError::CyclicCfg(func) => {
                write!(f, "function {func} has a cyclic cfg; unroll loops first")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn empty_program_fails_validation() {
        let p = Program::new();
        assert_eq!(p.validate(), Err(ValidationError::NoEntry));
    }

    #[test]
    fn builder_program_validates() {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &[]);
        {
            let mut f = b.body(main);
            let p = f.alloc("p", "o1");
            f.free(p);
        }
        b.set_entry(main);
        let prog = b.finish();
        prog.validate().expect("valid program");
        assert_eq!(prog.free_sites().len(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &["a"]);
        {
            let mut f = b.body(main);
            let p = f.alloc("p", "obj");
            f.free(p);
        }
        b.set_entry(main);
        let prog = b.finish();
        assert_eq!(prog.func_by_name("main"), Some(main));
        assert!(prog.var_by_name(main, "p").is_some());
        assert!(prog.var_by_name(main, "a").is_some());
        assert!(prog.obj_by_name("obj").is_some());
        assert!(prog.obj_by_name("nope").is_none());
    }

    #[test]
    fn double_def_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.func("main", &["a"]);
        {
            let mut f = b.body(main);
            let a = f.var("a");
            let p = f.alloc("p", "o");
            // Force a second definition of p via a raw copy.
            f.copy_into(p, a);
        }
        b.set_entry(main);
        let prog = b.finish();
        assert!(matches!(
            prog.validate(),
            Err(ValidationError::MultipleDefs(..))
        ));
    }
}
