//! The interprocedural statement order graph.
//!
//! [`OrderGraph::happens_before`] decides the program order `<P` of
//! Defn. 2(2): control flow within a thread plus fork/join
//! synchronization across threads. Because bounded programs have acyclic
//! CFGs and call graphs, may-reachability coincides with
//! ordered-whenever-co-executed, which is exactly the relation the
//! partial-order constraints `Φ_po` of §5.1 need.
//!
//! Queries are answered on demand with a worklist over `(label)` items:
//!
//! * **intra** — labels after `l` in its function (block-DAG reach);
//! * **descend** — a call or fork site after `l` orders `l` before every
//!   statement of every function transitively reachable from the callee;
//! * **ascend** — on return, execution continues after each call site of
//!   the current function; for a thread entry, after the thread's join
//!   site.

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use crate::callgraph::CallGraph;
use crate::ids::{FuncId, Label};
use crate::inst::Inst;
use crate::program::Program;

/// Per-function label-level reachability over the block DAG.
#[derive(Debug)]
struct IntraReach {
    /// Labels of the function in a stable order.
    labels: Vec<Label>,
    /// Dense block-level reachability: `block_reach[a]` contains `b` iff
    /// block `b` is reachable from block `a` in one or more steps.
    block_reach: Vec<Vec<bool>>,
}

impl IntraReach {
    fn compute(prog: &Program, f: FuncId) -> Self {
        let func = prog.func(f);
        let n = func.blocks.len();
        let mut block_reach = vec![vec![false; n]; n];
        // DFS from each block (functions are small; O(B²) is fine).
        #[allow(clippy::needless_range_loop)]
        for start in 0..n {
            let mut work = vec![start];
            while let Some(b) = work.pop() {
                for succ in func.blocks[b].term.successors() {
                    let s = succ.index();
                    if !block_reach[start][s] {
                        block_reach[start][s] = true;
                        work.push(s);
                    }
                }
            }
        }
        IntraReach {
            labels: func.labels().collect(),
            block_reach,
        }
    }

    /// Whether `l2` strictly follows `l1` on some control-flow path.
    fn reaches(&self, prog: &Program, l1: Label, l2: Label) -> bool {
        if l1 == l2 {
            return false;
        }
        let s1 = prog.stmt(l1);
        let s2 = prog.stmt(l2);
        if s1.block == s2.block {
            let blk = &prog.func(s1.func).blocks[s1.block.index()].stmts;
            let p1 = blk.iter().position(|&l| l == l1);
            let p2 = blk.iter().position(|&l| l == l2);
            return p1 < p2;
        }
        self.block_reach[s1.block.index()][s2.block.index()]
    }

    /// All labels strictly after `l` in this function.
    fn after(&self, prog: &Program, l: Label) -> Vec<Label> {
        self.labels
            .iter()
            .copied()
            .filter(|&m| self.reaches(prog, l, m))
            .collect()
    }
}

/// Interprocedural happens-before over the bounded program.
#[derive(Debug)]
pub struct OrderGraph<'p> {
    prog: &'p Program,
    cg: &'p CallGraph,
    intra: Vec<IntraReach>,
    /// `join_of_entry[f]` — join sites whose thread has `f` among its
    /// entry functions.
    join_of_entry: Vec<Vec<Label>>,
    /// Function-level may-follow closure: `func_follow[f]` contains `g`
    /// iff some happens-before chain starting in `f` can reach a label
    /// of `g` (call/fork descent, return-to-caller, entry-to-join).
    /// A necessary condition used to reject most queries in O(1).
    func_follow: Vec<Vec<bool>>,
    /// Memoized query results; queries repeat heavily during Alg. 2's
    /// edge construction and `Φ_po` generation. A mutex (not `RefCell`)
    /// so the graph is `Sync` and the sharded interference rounds can
    /// query it from worker threads; results are pure, so racing
    /// fills are idempotent and scheduling cannot affect answers.
    cache: Mutex<HashMap<(Label, Label), bool>>,
}

impl<'p> OrderGraph<'p> {
    /// Builds the order graph for a program and its call graph.
    pub fn build(prog: &'p Program, cg: &'p CallGraph) -> Self {
        let intra = (0..prog.funcs.len())
            .map(|i| IntraReach::compute(prog, FuncId::new(i as u32)))
            .collect();
        let mut join_of_entry: Vec<Vec<Label>> = vec![Vec::new(); prog.funcs.len()];
        for info in prog.threads.iter() {
            let (Some(fork), Some(join)) = (info.fork_site, info.join_site) else {
                continue;
            };
            for &entry in cg.fork_targets.get(&fork).map_or(&[][..], Vec::as_slice) {
                join_of_entry[entry.index()].push(join);
            }
        }
        // Function-level follow graph: call/fork descent, return to
        // callers, thread entry to the join's function.
        let n = prog.funcs.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for l in prog.labels() {
            match prog.inst(l) {
                Inst::Call { .. } | Inst::Fork { .. } => {
                    let f = prog.func_of(l).index();
                    for &g in cg.targets(l) {
                        adj[f].push(g.index());
                    }
                }
                _ => {}
            }
        }
        for (g, callers) in cg.callers_of.iter().enumerate() {
            for &(caller, _) in callers {
                adj[g].push(caller.index());
            }
        }
        for (f, joins) in join_of_entry.iter().enumerate() {
            for &j in joins {
                adj[f].push(prog.func_of(j).index());
            }
        }
        let mut func_follow = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for start in 0..n {
            let mut work = vec![start];
            func_follow[start][start] = true;
            while let Some(x) = work.pop() {
                for &y in &adj[x] {
                    if !func_follow[start][y] {
                        func_follow[start][y] = true;
                        work.push(y);
                    }
                }
            }
        }
        OrderGraph {
            prog,
            cg,
            intra,
            join_of_entry,
            func_follow,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Whether `l2` follows `l1` within the same function's CFG.
    pub fn intra_reaches(&self, l1: Label, l2: Label) -> bool {
        let f1 = self.prog.func_of(l1);
        if f1 != self.prog.func_of(l2) {
            return false;
        }
        self.intra[f1.index()].reaches(self.prog, l1, l2)
    }

    /// The program order `<P` of Defn. 2(2): returns `true` when, in
    /// every execution in which both statements occur, `l1` executes
    /// before `l2` — exact for labels that execute at most once.
    ///
    /// Soundiness: a label stands for *all* dynamic instances of its
    /// statement. For functions invoked from several sites the merged
    /// relation can hold in both directions (one instance each way) and
    /// need not be transitive across mixed contexts; `program_order`
    /// then resolves a pair to the first true direction. Clone-based
    /// context sensitivity ([`crate::clone_contexts`]) splits such
    /// labels per call site, restoring a strict partial order — the
    /// same remedy the paper's clone-depth-bounded summaries apply.
    pub fn happens_before(&self, l1: Label, l2: Label) -> bool {
        if l1 == l2 {
            return false;
        }
        // Necessary condition: the target's function must be follow-
        // reachable from the source's function.
        let (f1, f2) = (self.prog.func_of(l1), self.prog.func_of(l2));
        if !self.func_follow[f1.index()][f2.index()] {
            return false;
        }
        if let Some(&hit) = self.cache.lock().get(&(l1, l2)) {
            return hit;
        }
        let result = self.happens_before_uncached(l1, l2);
        self.cache.lock().insert((l1, l2), result);
        result
    }

    fn happens_before_uncached(&self, l1: Label, l2: Label) -> bool {
        // Worklist items are "execution has passed label `l`". The flag
        // records whether the item's *own* callees still lie ahead: true
        // only for the query's origin (a call event precedes its callee
        // body). A call site reached by *ascending* has already returned
        // — re-descending into it would fabricate the reverse order and
        // break antisymmetry.
        let mut visited: HashSet<Label> = HashSet::new();
        let mut work: Vec<(Label, bool)> = vec![(l1, true)];
        visited.insert(l1);
        let target_func = self.prog.func_of(l2);
        while let Some((l, descend_self)) = work.pop() {
            let f = self.prog.func_of(l);
            let ir = &self.intra[f.index()];
            if descend_self && self.descends_to(l, target_func) {
                return true;
            }
            for m in ir.after(self.prog, l) {
                if m == l2 {
                    return true;
                }
                if self.descends_to(m, target_func) {
                    return true;
                }
            }
            // Ascend: after this function returns, execution resumes
            // after each of its call sites; thread entries resume at the
            // thread's join site.
            for &(_caller, site) in &self.cg.callers_of[f.index()] {
                if visited.insert(site) {
                    work.push((site, false));
                }
            }
            for &join in &self.join_of_entry[f.index()] {
                if join == l2 {
                    return true;
                }
                if visited.insert(join) {
                    work.push((join, true));
                }
            }
        }
        false
    }

    /// Whether the statement at `m` (if a call or fork) can transitively
    /// reach `target` through its callees.
    fn descends_to(&self, m: Label, target: FuncId) -> bool {
        match self.prog.inst(m) {
            Inst::Call { .. } | Inst::Fork { .. } => self
                .cg
                .targets(m)
                .iter()
                .any(|&g| self.cg.reaches(g, target)),
            _ => false,
        }
    }

    /// Convenience: the pairwise program-order relation for `Φ_po`
    /// generation (§5.1). Returns `Some(true)` for `l1 <P l2`,
    /// `Some(false)` for `l2 <P l1`, `None` when unordered.
    ///
    /// When the merged-label relation holds in *both* directions
    /// (distinct dynamic instances of a re-invoked function), the pair
    /// is canonicalized by label order so the answer is independent of
    /// argument order.
    pub fn program_order(&self, l1: Label, l2: Label) -> Option<bool> {
        match (self.happens_before(l1, l2), self.happens_before(l2, l1)) {
            (true, true) => Some(l1 < l2),
            (true, false) => Some(true),
            (false, true) => Some(false),
            (false, false) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::program::Program;

    fn find(prog: &Program, pred: impl Fn(&Inst) -> bool) -> Label {
        prog.labels().find(|&l| pred(prog.inst(l))).unwrap()
    }

    #[test]
    fn straightline_order() {
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert!(og.happens_before(free, deref));
        assert!(!og.happens_before(deref, free));
        assert_eq!(og.program_order(free, deref), Some(true));
        assert_eq!(og.program_order(deref, free), Some(false));
    }

    #[test]
    fn branch_arms_are_unordered() {
        let prog =
            parse("fn main() { p = alloc o; if (c) { free p; } else { use p; } }").unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert_eq!(og.program_order(free, deref), None);
    }

    #[test]
    fn call_descends_into_callee() {
        let prog = parse(
            "fn main() { p = alloc o; call f(p); }
             fn f(x) { use x; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let alloc = find(&prog, |i| matches!(i, Inst::Alloc { .. }));
        let deref = prog.deref_sites()[0];
        assert!(og.happens_before(alloc, deref));
        assert!(!og.happens_before(deref, alloc));
    }

    #[test]
    fn return_ascends_to_caller_continuation() {
        let prog = parse(
            "fn main() { p = alloc o; call f(p); use p; }
             fn f(x) { free x; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert!(og.happens_before(free, deref));
        assert!(!og.happens_before(deref, free));
    }

    #[test]
    fn fork_orders_parent_prefix_before_child() {
        let prog = parse(
            "fn main() { p = alloc o; free p; fork t w(p); use p; }
             fn w(x) { x2 = x; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let child = find(&prog, |i| matches!(i, Inst::Copy { .. }));
        // free is before the fork, so it precedes everything in the child.
        assert!(og.happens_before(free, child));
        // The parent's post-fork statement is NOT ordered w.r.t. the child.
        let deref = prog.deref_sites()[0];
        assert_eq!(og.program_order(deref, child), None);
    }

    #[test]
    fn join_orders_child_before_parent_suffix() {
        let prog = parse(
            "fn main() { p = alloc o; fork t w(p); join t; use p; }
             fn w(x) { free x; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert!(og.happens_before(free, deref));
        assert_eq!(og.program_order(deref, free), Some(false));
    }

    #[test]
    fn unjoined_sibling_threads_are_unordered() {
        let prog = parse(
            "fn main() { p = alloc o; fork t1 w1(p); fork t2 w2(p); }
             fn w1(x) { free x; }
             fn w2(y) { use y; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        assert_eq!(og.program_order(free, deref), None);
    }

    #[test]
    fn joined_thread_ordered_before_later_fork() {
        let prog = parse(
            "fn main() { p = alloc o; fork t1 w1(p); join t1; fork t2 w2(p); }
             fn w1(x) { free x; }
             fn w2(y) { use y; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        // w1 joins before w2 forks, so w1's free precedes w2's use.
        assert!(og.happens_before(free, deref));
    }

    #[test]
    fn fork_statement_precedes_child_statements() {
        let prog = parse(
            "fn main() { p = alloc o; fork t w(p); }
             fn w(x) { use x; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let fork = find(&prog, |i| matches!(i, Inst::Fork { .. }));
        let deref = prog.deref_sites()[0];
        assert!(og.happens_before(fork, deref));
    }
}
