//! Functions and basic blocks.
//!
//! A [`Function`] owns a control-flow graph of [`BasicBlock`]s; the
//! statements themselves live in the program-wide statement table (keyed
//! by [`Label`]) so that labels are globally unique, as the paper's
//! formalization assumes (`ℓ ∈ L`).

use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, FuncId, Label, VarId};
use crate::inst::Terminator;

/// A basic block: a straight-line sequence of statement labels ended by a
/// [`Terminator`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Labels of the statements in this block, in execution order.
    pub stmts: Vec<Label>,
    /// The block terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// An empty block falling through to `Exit`; builders overwrite the
    /// terminator as the block is completed.
    pub fn new() -> Self {
        BasicBlock {
            stmts: Vec::new(),
            term: Terminator::Exit,
        }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// A function `F := func(v1, …, vn) { S*; }` of Fig. 3.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// This function's id in the program function table.
    pub id: FuncId,
    /// Source-level name.
    pub name: String,
    /// Formal parameters (top-level variables).
    pub params: Vec<VarId>,
    /// Basic blocks; `blocks[entry.index()]` is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a block of this function.
    pub fn block(&self, b: BlockId) -> &BasicBlock {
        &self.blocks[b.index()]
    }

    /// All statement labels of this function, in block order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.blocks.iter().flat_map(|b| b.stmts.iter().copied())
    }

    /// Number of statements in this function.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Blocks in reverse post-order from the entry, the iteration order
    /// Alg. 1 uses for its flow-sensitive pass.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS computing post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some((blk, succ_idx)) = stack.pop() {
            let succs = self.blocks[blk.index()].term.successors();
            if succ_idx < succs.len() {
                stack.push((blk, succ_idx + 1));
                let next = succs[succ_idx];
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(blk);
            }
        }
        post.reverse();
        post
    }

    /// Predecessor table: `preds[b]` lists the blocks that branch to `b`.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, blk) in self.blocks.iter().enumerate() {
            for succ in blk.term.successors() {
                preds[succ.index()].push(BlockId::new(i as u32));
            }
        }
        preds
    }

    /// Whether the control-flow graph is acyclic.
    ///
    /// Bounded programs (§3.1) have their loops unrolled, so every CFG is
    /// expected to be a DAG; the analyses rely on this to treat
    /// intra-thread may-reachability as a strict partial order.
    pub fn is_acyclic(&self) -> bool {
        // DFS with colors: 0 = white, 1 = gray, 2 = black.
        let n = self.blocks.len();
        let mut color = vec![0u8; n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            color[start] = 1;
            stack.push((start, 0));
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let succs = self.blocks[node].term.successors();
                if *idx < succs.len() {
                    let next = succs[*idx].index();
                    *idx += 1;
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => return false,
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CondExpr, Terminator};

    fn diamond() -> Function {
        // b0 -> b1, b2; b1 -> b3; b2 -> b3; b3 -> exit
        Function {
            id: FuncId::new(0),
            name: "diamond".into(),
            params: vec![],
            entry: BlockId::new(0),
            blocks: vec![
                BasicBlock {
                    stmts: vec![Label::new(0)],
                    term: Terminator::Branch {
                        cond: CondExpr::True,
                        then_blk: BlockId::new(1),
                        else_blk: BlockId::new(2),
                    },
                },
                BasicBlock {
                    stmts: vec![Label::new(1)],
                    term: Terminator::Goto(BlockId::new(3)),
                },
                BasicBlock {
                    stmts: vec![Label::new(2)],
                    term: Terminator::Goto(BlockId::new(3)),
                },
                BasicBlock {
                    stmts: vec![Label::new(3)],
                    term: Terminator::Exit,
                },
            ],
        }
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let f = diamond();
        let rpo = f.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId::new(0));
        assert_eq!(*rpo.last().unwrap(), BlockId::new(3));
    }

    #[test]
    fn rpo_visits_predecessors_before_join() {
        let f = diamond();
        let rpo = f.reverse_post_order();
        let pos =
            |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId::new(1)) < pos(BlockId::new(3)));
        assert!(pos(BlockId::new(2)) < pos(BlockId::new(3)));
    }

    #[test]
    fn predecessor_table() {
        let f = diamond();
        let preds = f.predecessors();
        assert_eq!(preds[3].len(), 2);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn diamond_is_acyclic() {
        assert!(diamond().is_acyclic());
    }

    #[test]
    fn self_loop_detected_as_cyclic() {
        let mut f = diamond();
        f.blocks[3].term = Terminator::Goto(BlockId::new(0));
        assert!(!f.is_acyclic());
    }

    #[test]
    fn stmt_count_sums_blocks() {
        assert_eq!(diamond().stmt_count(), 4);
        assert_eq!(diamond().labels().count(), 4);
    }
}
