//! The statement forms of the call-by-value language of Fig. 3, in
//! partial SSA form, plus the source/sink intrinsics the checkers of §5
//! consume (`free`, pointer uses, taint sources and sinks) and the
//! synchronization intrinsics of the §9 extension (lock/unlock,
//! wait/notify).
//!
//! Control flow (`if`/`else`, sequencing) is represented at the CFG level
//! by [`Terminator`]s rather than by statement forms.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, CondId, FuncId, ObjId, VarId};

/// A binary operator (`binop` in Fig. 3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Logical/bitwise and `∧`.
    And,
    /// Logical/bitwise or `∨`.
    Or,
    /// Greater-than `>`.
    Gt,
    /// Equality `=`.
    Eq,
    /// Disequality `≠`.
    Ne,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Gt => ">",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A unary operator (`unop` in Fig. 3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical negation `¬`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// The callee of a call or fork site.
///
/// Practical programs make fork calls through function pointers (§6);
/// indirect callees are resolved by the Steensgaard-based thread
/// call-graph construction in [`crate::callgraph`].
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Callee {
    /// A direct call to a named function.
    Direct(FuncId),
    /// An indirect call through a top-level function-pointer variable.
    Indirect(VarId),
}

/// A literal branch condition: an opaque atom `θ` or its negation, or a
/// constant.
///
/// The paper keeps path conditions symbolic; correlating occurrences of
/// the *same* atom across threads (`θ1` at ℓ6 versus `¬θ1` at ℓ13 in
/// Fig. 2) is what lets the SMT stage refute infeasible value flows.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CondExpr {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A condition atom, negated when the flag is `true`.
    Atom {
        /// The condition atom tested by the branch.
        cond: CondId,
        /// Whether the atom appears negated (`¬θ`).
        negated: bool,
    },
}

impl CondExpr {
    /// The positive occurrence of `cond`.
    pub const fn atom(cond: CondId) -> Self {
        CondExpr::Atom {
            cond,
            negated: false,
        }
    }

    /// The negated occurrence of `cond`.
    pub const fn not_atom(cond: CondId) -> Self {
        CondExpr::Atom {
            cond,
            negated: true,
        }
    }

    /// Logical negation of this condition.
    #[must_use]
    pub fn negate(self) -> Self {
        match self {
            CondExpr::True => CondExpr::False,
            CondExpr::False => CondExpr::True,
            CondExpr::Atom { cond, negated } => CondExpr::Atom {
                cond,
                negated: !negated,
            },
        }
    }
}

impl fmt::Display for CondExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondExpr::True => f.write_str("true"),
            CondExpr::False => f.write_str("false"),
            CondExpr::Atom { cond, negated } => {
                if *negated {
                    write!(f, "!{cond}")
                } else {
                    write!(f, "{cond}")
                }
            }
        }
    }
}

/// A statement of the language (Fig. 3), extended with the intrinsics the
/// checkers rely on.
///
/// Pointer operations follow the four LLVM partial-SSA forms the paper
/// singles out: address-of/allocation, copy, load and store. Nested
/// dereferences are assumed to have been flattened with auxiliary
/// variables so each load/store is at most one shared access (§3.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Inst {
    /// `p = alloc_o` — `p` points to the fresh abstract object `o`
    /// (covers both `malloc` and `&x` address-taken locals).
    Alloc {
        /// Destination pointer.
        dst: VarId,
        /// The abstract object allocated at this site.
        obj: ObjId,
    },
    /// `p = &f` — take the address of a function, producing a function
    /// pointer; resolved by the Steensgaard analysis of §6 when used as a
    /// fork or call target.
    FuncAddr {
        /// Destination function-pointer variable.
        dst: VarId,
        /// The named function.
        func: FuncId,
    },
    /// `p = q` — direct copy between top-level variables.
    Copy {
        /// Destination.
        dst: VarId,
        /// Source.
        src: VarId,
    },
    /// `p = *y` — load through pointer `y`.
    Load {
        /// Destination top-level variable.
        dst: VarId,
        /// Address operand.
        addr: VarId,
    },
    /// `*x = q` — store `q` through pointer `x`.
    Store {
        /// Address operand.
        addr: VarId,
        /// Stored value.
        src: VarId,
    },
    /// `p = q binop r`.
    Bin {
        /// Destination.
        dst: VarId,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: VarId,
        /// Right operand.
        rhs: VarId,
    },
    /// `p = unop q`.
    Un {
        /// Destination.
        dst: VarId,
        /// The operator.
        op: UnOp,
        /// Operand.
        src: VarId,
    },
    /// `(x0, …, xn) = call f(v1, …, vn)`.
    Call {
        /// Return-value destinations (possibly empty).
        dsts: Vec<VarId>,
        /// The callee, direct or through a function pointer.
        callee: Callee,
        /// Actual arguments.
        args: Vec<VarId>,
    },
    /// `fork(t, f, arg…)` — create thread `t` running `f(arg…)`.
    Fork {
        /// The static thread created at this fork site.
        thread: crate::ids::ThreadId,
        /// The thread entry function (possibly a function pointer).
        entry: Callee,
        /// Arguments passed to the entry function.
        args: Vec<VarId>,
    },
    /// `join(t)` — wait for thread `t` to finish.
    Join {
        /// The joined thread.
        thread: crate::ids::ThreadId,
    },
    /// `free(p)` — deallocate the object `p` points to. A *source* for
    /// the use-after-free and double-free checkers.
    Free {
        /// Freed pointer.
        ptr: VarId,
    },
    /// `use(*p)` / `print(*p)` — dereference `p`. A *sink* for the
    /// use-after-free and null-dereference checkers.
    Deref {
        /// Dereferenced pointer.
        ptr: VarId,
    },
    /// `p = null` — a *source* for the null-dereference checker.
    AssignNull {
        /// Destination.
        dst: VarId,
    },
    /// `p = taint_source()` — a *source* for the information-leak checker
    /// (e.g. secret data read into memory, cf. DTAM-style leaks §1).
    TaintSource {
        /// Destination holding the tainted value.
        dst: VarId,
    },
    /// `leak_sink(p)` — a *sink* for the information-leak checker
    /// (e.g. data written to a public channel).
    TaintSink {
        /// Leaked value.
        src: VarId,
    },
    /// `lock(m)` — acquire mutex object pointed to by `m` (§9 extension).
    Lock {
        /// Mutex operand.
        mutex: VarId,
    },
    /// `unlock(m)` — release mutex (§9 extension).
    Unlock {
        /// Mutex operand.
        mutex: VarId,
    },
    /// `wait(cv)` — block on condition variable (§9 extension).
    Wait {
        /// Condition-variable operand.
        cv: VarId,
    },
    /// `notify(cv)` — signal condition variable (§9 extension).
    Notify {
        /// Condition-variable operand.
        cv: VarId,
    },
    /// `return (x0, …, xn)`.
    Return {
        /// Returned values (possibly empty).
        vals: Vec<VarId>,
    },
    /// A no-op; used by transforms that must preserve label positions.
    Nop,
}

impl Inst {
    /// The top-level variable defined by this statement, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Inst::Alloc { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::AssignNull { dst }
            | Inst::FuncAddr { dst, .. }
            | Inst::TaintSource { dst } => Some(*dst),
            Inst::Call { dsts, .. } => dsts.first().copied(),
            _ => None,
        }
    }

    /// All top-level variables used (read) by this statement.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Inst::Alloc { .. }
            | Inst::AssignNull { .. }
            | Inst::FuncAddr { .. }
            | Inst::TaintSource { .. }
            | Inst::Nop => Vec::new(),
            Inst::Copy { src, .. } | Inst::Un { src, .. } => vec![*src],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, src } => vec![*addr, *src],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Call { callee, args, .. } => {
                let mut v = args.clone();
                if let Callee::Indirect(fp) = callee {
                    v.push(*fp);
                }
                v
            }
            Inst::Fork { entry, args, .. } => {
                let mut v = args.clone();
                if let Callee::Indirect(fp) = entry {
                    v.push(*fp);
                }
                v
            }
            Inst::Join { .. } => Vec::new(),
            Inst::Free { ptr } | Inst::Deref { ptr } => vec![*ptr],
            Inst::TaintSink { src } => vec![*src],
            Inst::Lock { mutex } | Inst::Unlock { mutex } => vec![*mutex],
            Inst::Wait { cv } | Inst::Notify { cv } => vec![*cv],
            Inst::Return { vals } => vals.clone(),
        }
    }

    /// Whether this statement is a store to shared memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this statement is a load from shared memory.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }
}

/// A basic-block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on a condition literal.
    Branch {
        /// The condition tested.
        cond: CondExpr,
        /// Successor taken when the condition holds.
        then_blk: BlockId,
        /// Successor taken when it does not.
        else_blk: BlockId,
    },
    /// Function exit. The returned values are carried by a preceding
    /// [`Inst::Return`] when present.
    Exit,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::Exit => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_involutive() {
        let c = CondExpr::atom(CondId::new(1));
        assert_eq!(c.negate().negate(), c);
        assert_eq!(CondExpr::True.negate(), CondExpr::False);
        assert_eq!(CondExpr::False.negate(), CondExpr::True);
    }

    #[test]
    fn cond_display() {
        assert_eq!(CondExpr::atom(CondId::new(2)).to_string(), "c2");
        assert_eq!(CondExpr::not_atom(CondId::new(2)).to_string(), "!c2");
        assert_eq!(CondExpr::True.to_string(), "true");
    }

    #[test]
    fn def_use_of_pointer_ops() {
        let store = Inst::Store {
            addr: VarId::new(0),
            src: VarId::new(1),
        };
        assert_eq!(store.def(), None);
        assert_eq!(store.uses(), vec![VarId::new(0), VarId::new(1)]);
        assert!(store.is_store());
        assert!(!store.is_load());

        let load = Inst::Load {
            dst: VarId::new(2),
            addr: VarId::new(3),
        };
        assert_eq!(load.def(), Some(VarId::new(2)));
        assert_eq!(load.uses(), vec![VarId::new(3)]);
        assert!(load.is_load());
    }

    #[test]
    fn indirect_callee_counts_as_use() {
        let call = Inst::Call {
            dsts: vec![],
            callee: Callee::Indirect(VarId::new(9)),
            args: vec![VarId::new(1)],
        };
        assert!(call.uses().contains(&VarId::new(9)));
        assert!(call.uses().contains(&VarId::new(1)));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: CondExpr::True,
            then_blk: BlockId::new(1),
            else_blk: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert!(Terminator::Exit.successors().is_empty());
    }

    #[test]
    fn operator_display() {
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(BinOp::Ne.to_string(), "!=");
        assert_eq!(UnOp::Not.to_string(), "!");
    }
}
