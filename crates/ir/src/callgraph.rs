//! Thread call-graph construction (§6).
//!
//! Practical programs fork through function pointers, so a call graph
//! cannot be read off the syntax. Following the paper, indirect call and
//! fork targets are resolved with a Steensgaard-style unification
//! points-to analysis — near-linear time, flow-insensitive — which prior
//! work showed is sufficient for precise call graphs of C-like programs.
//! Virtual dispatch in the paper is handled by class-hierarchy analysis;
//! our IR models it as function pointers, which the same machinery
//! resolves.

use std::collections::HashMap;

use crate::ids::{FuncId, Label, VarId};
use crate::inst::{Callee, Inst};
use crate::program::Program;

/// A Steensgaard (unification-based) points-to analysis over top-level
/// variables, abstract objects and function constants.
///
/// Each equivalence class has at most one pointee class; assignments
/// unify. The analysis runs in near-linear time (§6 cites Steensgaard
/// 1996) and is used only for call-graph construction — the precise,
/// guarded points-to information comes from Alg. 1 in `canary-dataflow`.
#[derive(Debug)]
pub struct Steensgaard {
    /// Union-find parent table over node indices.
    parent: Vec<u32>,
    /// `pointee[class]` — the class this class points to, if any.
    pointee: HashMap<u32, u32>,
    /// Number of variable nodes (variables come first in node space).
    n_vars: u32,
    /// Node index of each function constant.
    func_node: Vec<u32>,
    /// For each class representative, the function constants inside it.
    funcs_in_class: HashMap<u32, Vec<FuncId>>,
}

impl Steensgaard {
    /// Runs the analysis over the whole program.
    pub fn run(prog: &Program) -> Self {
        let n_vars = prog.vars.len() as u32;
        let n_objs = prog.objs.len() as u32;
        let n_funcs = prog.funcs.len() as u32;
        // Node layout: [vars][objs][funcs][fresh...]
        let total = n_vars + n_objs + n_funcs;
        let mut s = Steensgaard {
            parent: (0..total).collect(),
            pointee: HashMap::new(),
            n_vars,
            func_node: ((n_vars + n_objs)..total).collect(),
            funcs_in_class: HashMap::new(),
        };
        // Unification is monotone, so re-running the transfer pass lets
        // late `FuncAddr` bindings flow into earlier indirect call sites;
        // three rounds reach a fixpoint for any fnptr chain of practical
        // depth (the classes only ever merge).
        for _ in 0..3 {
            for l in prog.labels() {
                s.transfer(prog, l);
            }
        }
        // Index function constants by their final representative.
        for f in 0..n_funcs {
            let rep = s.find(s.func_node[f as usize]);
            s.funcs_in_class
                .entry(rep)
                .or_default()
                .push(FuncId::new(f));
        }
        s
    }

    fn var_node(&self, v: VarId) -> u32 {
        v.0
    }

    fn obj_node(&self, o: crate::ids::ObjId) -> u32 {
        self.n_vars + o.0
    }

    fn find(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        self.parent[rb as usize] = ra;
        // Unifying two classes must also unify their pointees.
        let pa = self.pointee.remove(&ra);
        let pb = self.pointee.remove(&rb);
        match (pa, pb) {
            (Some(x), Some(y)) => {
                let p = self.union(x, y);
                let r = self.find(ra);
                self.pointee.insert(r, p);
            }
            (Some(x), None) | (None, Some(x)) => {
                let r = self.find(ra);
                self.pointee.insert(r, self.find(x));
            }
            (None, None) => {}
        }
        self.find(ra)
    }

    /// The pointee class of `x`'s class, creating a fresh one on demand.
    fn deref_class(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        if let Some(&p) = self.pointee.get(&r) {
            return self.find(p);
        }
        let fresh = self.parent.len() as u32;
        self.parent.push(fresh);
        self.pointee.insert(r, fresh);
        fresh
    }

    fn transfer(&mut self, prog: &Program, l: Label) {
        match prog.inst(l) {
            Inst::Alloc { dst, obj } => {
                let d = self.deref_class(self.var_node(*dst));
                let o = self.obj_node(*obj);
                self.union(d, o);
            }
            Inst::FuncAddr { dst, func } => {
                let d = self.deref_class(self.var_node(*dst));
                let f = self.func_node[func.index()];
                self.union(d, f);
            }
            Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
                self.union(self.var_node(*dst), self.var_node(*src));
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                self.union(self.var_node(*dst), self.var_node(*lhs));
                self.union(self.var_node(*dst), self.var_node(*rhs));
            }
            Inst::Load { dst, addr } => {
                let p = self.deref_class(self.var_node(*addr));
                self.union(self.var_node(*dst), p);
            }
            Inst::Store { addr, src } => {
                let p = self.deref_class(self.var_node(*addr));
                self.union(p, self.var_node(*src));
            }
            Inst::Call {
                dsts, callee, args, ..
            } => {
                self.bind_call(prog, callee, args, dsts);
            }
            Inst::Fork { entry, args, .. } => {
                self.bind_call(prog, entry, args, &[]);
            }
            _ => {}
        }
    }

    /// Unifies actuals with formals (and returns with destinations) for
    /// every possible target of the call.
    fn bind_call(&mut self, prog: &Program, callee: &Callee, args: &[VarId], dsts: &[VarId]) {
        let targets: Vec<FuncId> = match callee {
            Callee::Direct(f) => vec![*f],
            Callee::Indirect(fp) => {
                // During the single pass, resolve with current classes;
                // unification is monotone so a later FuncAddr that joins
                // this class still unifies formals via the shared class.
                // To stay sound with one pass we unify the *arguments*
                // with every function currently in the pointee class and
                // additionally tie the fp pointee class to a per-class
                // formal record. For simplicity (and because workloads
                // assign fnptrs before forking), we resolve here.
                self.func_targets(*fp)
            }
        };
        for f in targets {
            let func = prog.func(f);
            for (i, &a) in args.iter().enumerate() {
                if let Some(&p) = func.params.get(i) {
                    self.union(self.var_node(a), self.var_node(p));
                }
            }
            // Unify destinations with every returned value.
            for l in func.labels() {
                if let Inst::Return { vals } = prog.inst(l) {
                    for (i, &d) in dsts.iter().enumerate() {
                        if let Some(&r) = vals.get(i) {
                            self.union(self.var_node(d), self.var_node(r));
                        }
                    }
                }
            }
        }
    }

    /// The functions a function-pointer variable may target.
    pub fn func_targets(&self, fp: VarId) -> Vec<FuncId> {
        let r = self.find(self.var_node(fp));
        let Some(&p) = self.pointee.get(&r) else {
            return Vec::new();
        };
        let p = self.find(p);
        // funcs_in_class is populated at the end of `run`; before that,
        // fall back to scanning function nodes.
        if let Some(fs) = self.funcs_in_class.get(&p) {
            return fs.clone();
        }
        self.func_node
            .iter()
            .enumerate()
            .filter(|&(_, &n)| self.find(n) == p)
            .map(|(i, _)| FuncId::new(i as u32))
            .collect()
    }

    /// Whether two variables may point to the same class (unification
    /// aliasing).
    pub fn may_alias(&self, a: VarId, b: VarId) -> bool {
        let (ra, rb) = (self.find(self.var_node(a)), self.find(self.var_node(b)));
        if ra == rb {
            return true;
        }
        match (self.pointee.get(&ra), self.pointee.get(&rb)) {
            (Some(&x), Some(&y)) => self.find(x) == self.find(y),
            _ => false,
        }
    }
}

/// The thread call graph (§4.1): the sequential call graph extended with
/// resolved fork edges, plus the bottom-up function order Alg. 1 walks.
#[derive(Debug)]
pub struct CallGraph {
    /// Resolved targets of every call site.
    pub call_targets: HashMap<Label, Vec<FuncId>>,
    /// Resolved entry functions of every fork site.
    pub fork_targets: HashMap<Label, Vec<FuncId>>,
    /// Direct call edges `f → g` (no fork edges).
    pub calls: Vec<Vec<FuncId>>,
    /// Direct call-site labels grouped by callee: `callers_of[g] = [(f, site)]`.
    pub callers_of: Vec<Vec<(FuncId, Label)>>,
    /// Functions in bottom-up (reverse topological) order of the call
    /// graph; recursion cycles are broken arbitrarily (bounded programs,
    /// §3.1).
    pub bottom_up: Vec<FuncId>,
    /// `closure[f]` — functions reachable from `f` via call *and* fork
    /// edges, including `f` itself.
    pub closure: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the thread call graph, resolving indirect callees with a
    /// Steensgaard analysis.
    pub fn build(prog: &Program) -> Self {
        let steens = Steensgaard::run(prog);
        Self::build_with(prog, &steens)
    }

    /// Builds the thread call graph with a pre-computed Steensgaard
    /// analysis.
    pub fn build_with(prog: &Program, steens: &Steensgaard) -> Self {
        let n = prog.funcs.len();
        let mut call_targets = HashMap::new();
        let mut fork_targets = HashMap::new();
        let mut calls: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers_of: Vec<Vec<(FuncId, Label)>> = vec![Vec::new(); n];
        let mut all_edges: Vec<Vec<FuncId>> = vec![Vec::new(); n];

        for l in prog.labels() {
            let f = prog.func_of(l);
            match prog.inst(l) {
                Inst::Call { callee, .. } => {
                    let targets = resolve(callee, steens);
                    for &g in &targets {
                        if !calls[f.index()].contains(&g) {
                            calls[f.index()].push(g);
                        }
                        callers_of[g.index()].push((f, l));
                        if !all_edges[f.index()].contains(&g) {
                            all_edges[f.index()].push(g);
                        }
                    }
                    call_targets.insert(l, targets);
                }
                Inst::Fork { entry, .. } => {
                    let targets = resolve(entry, steens);
                    for &g in &targets {
                        if !all_edges[f.index()].contains(&g) {
                            all_edges[f.index()].push(g);
                        }
                    }
                    fork_targets.insert(l, targets);
                }
                _ => {}
            }
        }

        // Bottom-up order over direct-call edges: post-order DFS from
        // every root yields callees before callers.
        let mut bottom_up = Vec::with_capacity(n);
        let mut state = vec![0u8; n];
        for root in 0..n {
            if state[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            state[root] = 1;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let succs = &calls[node];
                if *idx < succs.len() {
                    let next = succs[*idx].index();
                    *idx += 1;
                    if state[next] == 0 {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                } else {
                    state[node] = 2;
                    bottom_up.push(FuncId::new(node as u32));
                    stack.pop();
                }
            }
        }

        // Transitive closure over call + fork edges.
        let mut closure: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for f in 0..n {
            let mut seen = vec![false; n];
            let mut work = vec![f];
            seen[f] = true;
            while let Some(g) = work.pop() {
                for &h in &all_edges[g] {
                    if !seen[h.index()] {
                        seen[h.index()] = true;
                        work.push(h.index());
                    }
                }
            }
            closure[f] = (0..n)
                .filter(|&i| seen[i])
                .map(|i| FuncId::new(i as u32))
                .collect();
        }

        CallGraph {
            call_targets,
            fork_targets,
            calls,
            callers_of,
            bottom_up,
            closure,
        }
    }

    /// Groups functions into schedulable bottom-up levels for the
    /// level-parallel Alg. 1 front-end.
    ///
    /// Functions are condensed into strongly connected components over
    /// the direct-call edges (a recursion cycle is one unit of work,
    /// since its members' summaries converge together), and components
    /// into levels: a component sits one level above the highest
    /// component it calls into, so when a level runs, every callee
    /// summary from lower levels is already published and tasks within
    /// the level are mutually independent. Fork edges don't constrain
    /// the schedule — Alg. 1 deliberately ignores forked-callee
    /// summaries (§4.1), so a fork target needs no summary before its
    /// forker runs.
    ///
    /// Returns `levels[level][task] = members`: levels ascending
    /// (callees first), tasks within a level ordered by the earliest
    /// [`CallGraph::bottom_up`] position of their members, members in
    /// `bottom_up` order. Every piece of the schedule is a pure
    /// function of the graph, which is what makes the parallel
    /// pipeline's commit order — and therefore its output —
    /// deterministic.
    pub fn bottom_up_levels(&self) -> Vec<Vec<Vec<FuncId>>> {
        let n = self.calls.len();
        let pos_of: HashMap<FuncId, usize> = self
            .bottom_up
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();

        // Kosaraju's second pass: sweep vertices by decreasing DFS
        // finish time (bottom_up reversed) over the transposed graph;
        // each sweep tree is one SCC.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (f, gs) in self.calls.iter().enumerate() {
            for g in gs {
                rev[g.index()].push(f);
            }
        }
        let mut comp_of: Vec<usize> = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for &f in self.bottom_up.iter().rev() {
            if comp_of[f.index()] != usize::MAX {
                continue;
            }
            let c = comps.len();
            let mut members = Vec::new();
            let mut stack = vec![f.index()];
            comp_of[f.index()] = c;
            while let Some(x) = stack.pop() {
                members.push(x);
                for &y in &rev[x] {
                    if comp_of[y] == usize::MAX {
                        comp_of[y] = c;
                        stack.push(y);
                    }
                }
            }
            comps.push(members);
        }

        // Components come out in reverse topological order of the
        // condensation (callers before callees), so a reverse sweep
        // sees every callee component's level before the caller's.
        let mut level_of: Vec<usize> = vec![0; comps.len()];
        for (c, members) in comps.iter().enumerate().rev() {
            let mut level = 0;
            for &f in members {
                for g in &self.calls[f] {
                    let cg = comp_of[g.index()];
                    if cg != c {
                        level = level.max(level_of[cg] + 1);
                    }
                }
            }
            level_of[c] = level;
        }

        let n_levels = level_of.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut levels: Vec<Vec<Vec<FuncId>>> = vec![Vec::new(); n_levels];
        let mut tasks: Vec<Vec<FuncId>> = comps
            .iter()
            .map(|members| {
                let mut ms: Vec<FuncId> =
                    members.iter().map(|&i| FuncId::new(i as u32)).collect();
                ms.sort_by_key(|f| pos_of[f]);
                ms
            })
            .collect();
        let mut order: Vec<usize> = (0..comps.len()).collect();
        order.sort_by_key(|&c| pos_of[&tasks[c][0]]);
        for c in order {
            let level = level_of[c];
            levels[level].push(std::mem::take(&mut tasks[c]));
        }
        levels
    }

    /// Whether `g` is reachable from `f` via call/fork edges (reflexive).
    pub fn reaches(&self, f: FuncId, g: FuncId) -> bool {
        self.closure[f.index()].contains(&g)
    }

    /// Resolved targets of the call or fork at `l` (empty for other
    /// statement kinds).
    pub fn targets(&self, l: Label) -> &[FuncId] {
        self.call_targets
            .get(&l)
            .or_else(|| self.fork_targets.get(&l))
            .map_or(&[], Vec::as_slice)
    }
}

fn resolve(callee: &Callee, steens: &Steensgaard) -> Vec<FuncId> {
    match callee {
        Callee::Direct(f) => vec![*f],
        Callee::Indirect(fp) => steens.func_targets(*fp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn direct_calls_form_edges_and_bottom_up_order() {
        let prog = parse(
            "fn main() { call a(); }
             fn a() { call b(); }
             fn b() { skip; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let main = prog.func_by_name("main").unwrap();
        let a = prog.func_by_name("a").unwrap();
        let b = prog.func_by_name("b").unwrap();
        assert!(cg.calls[main.index()].contains(&a));
        assert!(cg.calls[a.index()].contains(&b));
        let pos = |f: FuncId| cg.bottom_up.iter().position(|&x| x == f).unwrap();
        assert!(pos(b) < pos(a));
        assert!(pos(a) < pos(main));
        assert!(cg.reaches(main, b));
        assert!(!cg.reaches(b, main));
    }

    #[test]
    fn fork_through_function_pointer_resolves() {
        let prog = parse(
            "fn main() { fp = fnptr worker; p = alloc o; fork t fp(p); }
             fn worker(x) { use x; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let worker = prog.func_by_name("worker").unwrap();
        let fork_site = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Fork { .. }))
            .unwrap();
        assert_eq!(cg.fork_targets[&fork_site], vec![worker]);
    }

    #[test]
    fn fnptr_through_memory_resolves() {
        // fp stored to heap, reloaded, then forked: Steensgaard
        // unification must see through the load/store.
        let prog = parse(
            "fn main() {
                 slot = alloc cell;
                 fp = fnptr worker;
                 *slot = fp;
                 fp2 = *slot;
                 fork t fp2();
             }
             fn worker() { skip; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let worker = prog.func_by_name("worker").unwrap();
        let fork_site = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Fork { .. }))
            .unwrap();
        assert_eq!(cg.fork_targets[&fork_site], vec![worker]);
    }

    #[test]
    fn two_fnptrs_in_one_cell_give_two_targets() {
        let prog = parse(
            "fn main() {
                 slot = alloc cell;
                 f1 = fnptr w1;
                 f2 = fnptr w2;
                 if (c) { *slot = f1; } else { *slot = f2; }
                 g = *slot;
                 call g();
             }
             fn w1() { skip; }
             fn w2() { skip; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let call_site = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Call { .. }))
            .unwrap();
        let mut targets = cg.call_targets[&call_site].clone();
        targets.sort();
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn bottom_up_levels_order_callees_first() {
        let prog = parse(
            "fn main() { call a(); call b(); }
             fn a() { call c(); }
             fn b() { call c(); }
             fn c() { skip; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let levels = cg.bottom_up_levels();
        let main = prog.func_by_name("main").unwrap();
        let a = prog.func_by_name("a").unwrap();
        let b = prog.func_by_name("b").unwrap();
        let c = prog.func_by_name("c").unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![vec![c]]);
        // a and b are independent: same level, two tasks, in bottom_up
        // order.
        assert_eq!(levels[1].len(), 2);
        let pos = |f: FuncId| cg.bottom_up.iter().position(|&x| x == f).unwrap();
        let (first, second) = if pos(a) < pos(b) { (a, b) } else { (b, a) };
        assert_eq!(levels[1], vec![vec![first], vec![second]]);
        assert_eq!(levels[2], vec![vec![main]]);
    }

    #[test]
    fn bottom_up_levels_group_recursion_into_one_task() {
        let prog = parse(
            "fn main() { call a(); }
             fn a() { call b(); }
             fn b() { call a(); }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let levels = cg.bottom_up_levels();
        let a = prog.func_by_name("a").unwrap();
        let b = prog.func_by_name("b").unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 1);
        let mut scc = levels[0][0].clone();
        scc.sort();
        assert_eq!(scc, vec![a, b]);
    }

    #[test]
    fn bottom_up_levels_cover_every_function_once() {
        let prog = parse(
            "fn main() { fork t w(); call a(); }
             fn w() { call a(); }
             fn a() { skip; }
             fn island() { skip; }",
        )
        .unwrap();
        let cg = CallGraph::build(&prog);
        let levels = cg.bottom_up_levels();
        let mut seen: Vec<FuncId> = levels
            .iter()
            .flat_map(|level| level.iter().flatten().copied())
            .collect();
        seen.sort();
        let mut all: Vec<FuncId> = (0..prog.funcs.len() as u32).map(FuncId::new).collect();
        all.sort();
        assert_eq!(seen, all);
        // Fork edges don't force levels: w forks nothing below a, and
        // main sits above a regardless of its fork of w.
        let a = prog.func_by_name("a").unwrap();
        let level_of = |f: FuncId| {
            levels
                .iter()
                .position(|lvl| lvl.iter().any(|t| t.contains(&f)))
                .unwrap()
        };
        assert_eq!(level_of(a), 0);
        assert!(level_of(prog.func_by_name("main").unwrap()) > 0);
    }

    #[test]
    fn steensgaard_alias_via_copy() {
        let prog = parse("fn main() { p = alloc o; q = p; use q; }").unwrap();
        let s = Steensgaard::run(&prog);
        let main = prog.func_by_name("main").unwrap();
        let p = prog.var_by_name(main, "p").unwrap();
        let q = prog.var_by_name(main, "q").unwrap();
        assert!(s.may_alias(p, q));
    }

    #[test]
    fn steensgaard_distinct_allocs_do_not_alias() {
        let prog = parse("fn main() { p = alloc o1; q = alloc o2; use p; use q; }").unwrap();
        let s = Steensgaard::run(&prog);
        let main = prog.func_by_name("main").unwrap();
        let p = prog.var_by_name(main, "p").unwrap();
        let q = prog.var_by_name(main, "q").unwrap();
        assert!(!s.may_alias(p, q));
    }

    #[test]
    fn call_binds_args_to_params() {
        let prog = parse(
            "fn main() { p = alloc o; call f(p); }
             fn f(x) { use x; }",
        )
        .unwrap();
        let s = Steensgaard::run(&prog);
        let main = prog.func_by_name("main").unwrap();
        let f = prog.func_by_name("f").unwrap();
        let p = prog.var_by_name(main, "p").unwrap();
        let x = prog.var_by_name(f, "x").unwrap();
        assert!(s.may_alias(p, x));
    }

    #[test]
    fn return_binds_to_destination() {
        let prog = parse(
            "fn main() { r = call mk(); use r; }
             fn mk() { p = alloc o; return p; }",
        )
        .unwrap();
        let s = Steensgaard::run(&prog);
        let main = prog.func_by_name("main").unwrap();
        let mk = prog.func_by_name("mk").unwrap();
        let r = prog.var_by_name(main, "r").unwrap();
        let p = prog.var_by_name(mk, "p").unwrap();
        assert!(s.may_alias(r, p));
    }
}
