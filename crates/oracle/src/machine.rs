//! The concrete machine: a small-step interpreter state for the Fig. 3
//! language with a provenance-tracking heap.
//!
//! Values carry where they came from — the allocation site of an
//! address, the `p = null` that produced a null, the taint source that
//! produced a secret — so a bug firing concretely can name the exact
//! source/sink statement pair the static report claimed.
//!
//! Under `MemoryModel::Sc` the machine is a plain interleaving
//! interpreter. Under TSO/PSO each thread additionally owns a FIFO
//! *store buffer*: `store` enqueues instead of writing shared memory,
//! the thread's own `load`s snoop the buffer (store forwarding), and a
//! pending store becomes globally visible only at an explicit
//! [`Machine::flush`] — a scheduler event the enumerator and replayer
//! interleave with statement steps. TSO drains strictly in order; PSO
//! preserves order per location only. Every instruction that is not a
//! plain load or store (fork/join, lock/unlock, wait/notify, free,
//! deref, sink, call, return) acts as a fence and drains the executing
//! thread's buffer first, matching the detector's retention policy,
//! which only ever relaxes store→load and store→store pairs.

use std::collections::{BTreeMap, HashSet};

use canary_detect::{BugKind, MemoryModel};
use canary_ir::{
    Callee, CondExpr, CondId, Cursor, FuncId, Inst, Label, ObjId, Program, StepPoint, Terminator,
    VarId,
};

/// A branch-direction assignment for condition atoms. Branches on atoms
/// absent from the map cannot be normalized past — the machine reports
/// [`Poll::NeedsCond`] and the driver decides.
pub type Valuation = BTreeMap<CondId, bool>;

/// A runtime value with provenance.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Value {
    /// Never assigned (reading it is not itself an error here).
    #[default]
    Uninit,
    /// A defined value the oracle does not track (arithmetic results,
    /// unresolved call returns).
    Opaque,
    /// Null, produced by the `p = null` at the given label.
    Null(Label),
    /// The address of the heap cell at the given index.
    Addr(usize),
    /// A function pointer.
    Func(FuncId),
    /// Tainted data, produced by the taint source at the given label.
    Taint(Label),
}

/// One allocation instance.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HeapCell {
    /// The abstract object of the allocation site.
    pub site: ObjId,
    /// The `free` that deallocated this cell, if any (kept at the
    /// *first* free so later frees and uses report against it).
    pub freed: Option<Label>,
    /// The stored value (single-word cells suffice for Fig. 3).
    pub content: Value,
    /// Mutex state when the cell is used as a lock (§9): the owning
    /// thread and the acquisition label, or `None` when free. Ownership
    /// lets the machine distinguish self-reacquisition (a double-lock
    /// hit) from cross-thread contention (blocking).
    pub owner: Option<(usize, Label)>,
    /// Condition-variable state when used with wait/notify (§9):
    /// `notify` is sticky, matching the order-constraint semantics
    /// (a wait may complete iff some notify already executed).
    pub notified: bool,
}

/// One call frame of a thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Frame {
    /// Where the frame resumes.
    pub cursor: Cursor,
    /// The caller's destinations for this frame's return values.
    pub ret_dsts: Vec<VarId>,
}

/// The lifecycle of one static thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ThreadState {
    /// The fork site has not executed.
    Unforked,
    /// Running, with a call stack (last frame is active).
    Ready(Vec<Frame>),
    /// Finished (or its fork target could not be resolved).
    Done,
}

/// What a thread can do next, after normalizing through gotos, exits
/// and decidable branches.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Poll {
    /// The thread's next step executes the labeled instruction.
    ReadyAt(Label),
    /// The thread faces a branch on an atom the valuation leaves open.
    NeedsCond(CondId),
    /// The thread is stuck at the labeled instruction (join of a live
    /// thread, lock of a held mutex, wait without a notify).
    Blocked(Label),
    /// The thread is about to leave a function (or finish) but still
    /// has pending buffered stores: cross-function program order is
    /// retained under every memory model, so the scheduler must flush
    /// the buffer before the frame can pop. Never surfaces under SC.
    NeedsFlush,
    /// The thread finished, or was never forked.
    Done,
}

/// One pending store in a thread's store buffer: the write is held
/// privately until a flush publishes it to shared memory.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BufferedStore {
    /// The heap cell the store targets.
    pub cell: usize,
    /// The value to publish.
    pub value: Value,
    /// The store instruction's label (replay steers flush points by it).
    pub label: Label,
}

/// A concrete bug occurrence: the claimed source/sink pair fired.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Hit {
    /// The property class.
    pub kind: BugKind,
    /// Source statement (first free / null assignment / taint source).
    pub source: Label,
    /// Sink statement (use / second free / leak sink).
    pub sink: Label,
}

/// The interpreter state: one shared environment (sound because the IR
/// is SSA — each variable has one static definition), a heap of
/// allocation instances, and one state per static thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Machine {
    /// Top-level variables, indexed by [`VarId`].
    pub env: Vec<Value>,
    /// Allocation instances, in allocation order.
    pub heap: Vec<HeapCell>,
    /// Thread table aligned with `prog.threads`.
    pub threads: Vec<ThreadState>,
    /// The memory model the machine executes under.
    pub model: MemoryModel,
    /// Per-thread store buffers, aligned with `threads`. Always empty
    /// under SC; under TSO/PSO they are part of the machine state, so
    /// exact-state memoization keys on pending-store contents too.
    pub buffers: Vec<Vec<BufferedStore>>,
}

impl Machine {
    /// The initial state: main ready at the entry function, every other
    /// thread unforked. Executes under sequential consistency.
    ///
    /// # Panics
    ///
    /// Panics if the program has no entry function.
    pub fn boot(prog: &Program) -> Machine {
        Machine::boot_under(prog, MemoryModel::Sc)
    }

    /// [`Machine::boot`] under an explicit memory model.
    ///
    /// # Panics
    ///
    /// Panics if the program has no entry function.
    pub fn boot_under(prog: &Program, model: MemoryModel) -> Machine {
        let entry = prog.entry.expect("program has an entry function");
        let mut threads = vec![ThreadState::Unforked; prog.threads.len()];
        threads[0] = ThreadState::Ready(vec![Frame {
            cursor: Cursor::entry(prog, entry),
            ret_dsts: Vec::new(),
        }]);
        Machine {
            env: vec![Value::Uninit; prog.vars.len()],
            heap: Vec::new(),
            buffers: vec![Vec::new(); prog.threads.len()],
            threads,
            model,
        }
    }

    /// The indices into thread `t`'s store buffer that may drain next.
    /// TSO: strictly the oldest entry. PSO: the oldest entry *per
    /// location* — cross-location drains commute freely.
    pub fn flush_choices(&self, t: usize) -> Vec<usize> {
        let buf = &self.buffers[t];
        match self.model {
            MemoryModel::Sc => Vec::new(),
            MemoryModel::Tso => {
                if buf.is_empty() {
                    Vec::new()
                } else {
                    vec![0]
                }
            }
            MemoryModel::Pso => {
                let mut seen: HashSet<usize> = HashSet::new();
                let mut out = Vec::new();
                for (i, b) in buf.iter().enumerate() {
                    if seen.insert(b.cell) {
                        out.push(i);
                    }
                }
                out
            }
        }
    }

    /// Publishes the pending store at buffer index `idx` of thread `t`
    /// to shared memory and returns its store label. The index must be
    /// one of [`Machine::flush_choices`] — draining out of model order
    /// would forge an unreachable memory state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a legal flush choice.
    pub fn flush(&mut self, t: usize, idx: usize) -> Label {
        debug_assert!(
            self.flush_choices(t).contains(&idx),
            "flush({t}, {idx}) is not a legal drain under {:?}",
            self.model
        );
        let b = self.buffers[t].remove(idx);
        self.heap[b.cell].content = b.value;
        b.label
    }

    /// Drains thread `t`'s entire buffer in enqueue order (a fence).
    /// Per-location order is preserved, so the resulting memory state
    /// is the unique fully-drained one.
    fn drain(&mut self, t: usize) {
        for b in std::mem::take(&mut self.buffers[t]) {
            self.heap[b.cell].content = b.value;
        }
    }

    /// Whether every thread is terminal (finished or never forked).
    pub fn all_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| !matches!(t, ThreadState::Ready(_)))
    }

    /// Normalizes thread `t` through gotos, function exits and branches
    /// decided by `valuation`, and reports what it faces.
    ///
    /// Normalization mutates the machine but is deterministic and
    /// invisible to other threads (SSA return-value bindings are only
    /// read by the thread that made the call), so it is safe to poll
    /// threads in any order.
    pub fn poll(&mut self, prog: &Program, valuation: &Valuation, t: usize) -> Poll {
        loop {
            let ThreadState::Ready(stack) = &mut self.threads[t] else {
                return Poll::Done;
            };
            let frame = stack.last_mut().expect("ready threads have a frame");
            match frame.cursor.point(prog) {
                StepPoint::Inst(l, inst) => {
                    return match inst {
                        Inst::Join { thread } => {
                            if matches!(self.threads[thread.index()], ThreadState::Ready(_)) {
                                Poll::Blocked(l)
                            } else {
                                Poll::ReadyAt(l)
                            }
                        }
                        Inst::Lock { mutex } => match self.env[mutex.index()] {
                            Value::Addr(a)
                                if self.heap[a]
                                    .owner
                                    .is_some_and(|(holder, _)| holder != t) =>
                            {
                                Poll::Blocked(l)
                            }
                            _ => Poll::ReadyAt(l),
                        },
                        Inst::Wait { cv } => match self.env[cv.index()] {
                            Value::Addr(a) if !self.heap[a].notified => Poll::Blocked(l),
                            _ => Poll::ReadyAt(l),
                        },
                        _ => Poll::ReadyAt(l),
                    };
                }
                StepPoint::Term(Terminator::Goto(b)) => {
                    let b = *b;
                    frame.cursor.jump(b);
                }
                StepPoint::Term(Terminator::Branch {
                    cond,
                    then_blk,
                    else_blk,
                }) => {
                    let (then_blk, else_blk) = (*then_blk, *else_blk);
                    let taken = match *cond {
                        CondExpr::True => true,
                        CondExpr::False => false,
                        CondExpr::Atom { cond, negated } => match valuation.get(&cond) {
                            Some(&v) => v != negated,
                            None => return Poll::NeedsCond(cond),
                        },
                    };
                    frame.cursor.jump(if taken { then_blk } else { else_blk });
                }
                StepPoint::Term(Terminator::Exit) => {
                    // Falling off a function's end returns control (or
                    // ends the thread). Cross-function program order is
                    // retained under every model, so pending stores
                    // must drain before the frame pops — the scheduler
                    // owns the flush, not normalization.
                    if !self.buffers[t].is_empty() {
                        return Poll::NeedsFlush;
                    }
                    stack.pop();
                    if stack.is_empty() {
                        self.threads[t] = ThreadState::Done;
                        return Poll::Done;
                    }
                }
            }
        }
    }

    /// Executes exactly one labeled instruction on thread `t` — the one
    /// a preceding [`Machine::poll`] reported as [`Poll::ReadyAt`] —
    /// and reports the bug it concretely triggers, if any.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not ready at a labeled instruction.
    pub fn step(&mut self, prog: &Program, t: usize) -> Option<Hit> {
        let ThreadState::Ready(stack) = &mut self.threads[t] else {
            panic!("stepping a thread that is not ready");
        };
        let frame = stack.last_mut().expect("ready threads have a frame");
        let StepPoint::Inst(l, inst) = frame.cursor.point(prog) else {
            panic!("stepping a thread facing a terminator (poll first)");
        };
        let inst = inst.clone();
        frame.cursor.advance();
        // Everything except a plain load/store is a fence: the
        // detector's retention policy only relaxes store→load and
        // store→store pairs, so any other instruction observes the
        // thread's pending stores as already published.
        if is_fence(&inst) {
            self.drain(t);
        }
        match inst {
            Inst::Alloc { dst, obj } => {
                self.heap.push(HeapCell {
                    site: obj,
                    freed: None,
                    content: Value::Uninit,
                    owner: None,
                    notified: false,
                });
                self.env[dst.index()] = Value::Addr(self.heap.len() - 1);
            }
            Inst::FuncAddr { dst, func } => self.env[dst.index()] = Value::Func(func),
            Inst::Copy { dst, src } => self.env[dst.index()] = self.env[src.index()],
            Inst::Load { dst, addr } => {
                self.env[dst.index()] = match self.env[addr.index()] {
                    // Store forwarding: the thread's own latest pending
                    // store to the cell wins over shared memory.
                    Value::Addr(a) => self.buffers[t]
                        .iter()
                        .rev()
                        .find(|b| b.cell == a)
                        .map_or(self.heap[a].content, |b| b.value),
                    _ => Value::Opaque,
                };
            }
            Inst::Store { addr, src } => {
                if let Value::Addr(a) = self.env[addr.index()] {
                    let v = self.env[src.index()];
                    if self.model == MemoryModel::Sc {
                        self.heap[a].content = v;
                    } else {
                        self.buffers[t].push(BufferedStore {
                            cell: a,
                            value: v,
                            label: l,
                        });
                    }
                }
            }
            Inst::Bin { dst, .. } | Inst::Un { dst, .. } => {
                self.env[dst.index()] = Value::Opaque;
            }
            Inst::Call { dsts, callee, args } => match self.resolve(&callee) {
                Some(f) => {
                    let vals: Vec<Value> =
                        args.iter().map(|a| self.env[a.index()]).collect();
                    for (p, v) in prog.func(f).params.iter().zip(vals) {
                        self.env[p.index()] = v;
                    }
                    let ThreadState::Ready(stack) = &mut self.threads[t] else {
                        unreachable!();
                    };
                    stack.push(Frame {
                        cursor: Cursor::entry(prog, f),
                        ret_dsts: dsts,
                    });
                }
                None => {
                    for d in dsts {
                        self.env[d.index()] = Value::Opaque;
                    }
                }
            },
            Inst::Fork {
                thread,
                entry,
                args,
            } => {
                let target = thread.index();
                if matches!(self.threads[target], ThreadState::Unforked) {
                    match self.resolve(&entry) {
                        Some(f) => {
                            let vals: Vec<Value> =
                                args.iter().map(|a| self.env[a.index()]).collect();
                            for (p, v) in prog.func(f).params.iter().zip(vals) {
                                self.env[p.index()] = v;
                            }
                            self.threads[target] = ThreadState::Ready(vec![Frame {
                                cursor: Cursor::entry(prog, f),
                                ret_dsts: Vec::new(),
                            }]);
                        }
                        None => self.threads[target] = ThreadState::Done,
                    }
                }
            }
            Inst::Join { .. } => {} // poll gated on the target being terminal
            Inst::Free { ptr } => {
                if let Value::Addr(a) = self.env[ptr.index()] {
                    match self.heap[a].freed {
                        Some(first) => {
                            return Some(Hit {
                                kind: BugKind::DoubleFree,
                                source: first.min(l),
                                sink: first.max(l),
                            });
                        }
                        None => self.heap[a].freed = Some(l),
                    }
                }
            }
            Inst::Deref { ptr } => match self.env[ptr.index()] {
                Value::Null(src) => {
                    return Some(Hit {
                        kind: BugKind::NullDeref,
                        source: src,
                        sink: l,
                    });
                }
                Value::Addr(a) => {
                    if let Some(f) = self.heap[a].freed {
                        return Some(Hit {
                            kind: BugKind::UseAfterFree,
                            source: f,
                            sink: l,
                        });
                    }
                }
                _ => {}
            },
            Inst::AssignNull { dst } => self.env[dst.index()] = Value::Null(l),
            Inst::TaintSource { dst } => self.env[dst.index()] = Value::Taint(l),
            Inst::TaintSink { src } => {
                if let Value::Taint(origin) = self.env[src.index()] {
                    return Some(Hit {
                        kind: BugKind::DataLeak,
                        source: origin,
                        sink: l,
                    });
                }
            }
            Inst::Lock { mutex } => {
                if let Value::Addr(a) = self.env[mutex.index()] {
                    match self.heap[a].owner {
                        // Re-acquisition by the owning thread: the
                        // non-reentrant lock discipline is violated.
                        // Like double-free, the hit is reported and the
                        // machine continues (ownership keeps the first
                        // acquisition), so enumeration stays finite.
                        Some((holder, first)) if holder == t => {
                            return Some(Hit {
                                kind: BugKind::DoubleLock,
                                source: first,
                                sink: l,
                            });
                        }
                        Some(_) => {} // poll gates cross-thread contention
                        None => self.heap[a].owner = Some((t, l)),
                    }
                }
            }
            Inst::Unlock { mutex } => {
                if let Value::Addr(a) = self.env[mutex.index()] {
                    self.heap[a].owner = None;
                }
            }
            Inst::Wait { .. } => {} // poll gated on a prior notify
            Inst::Notify { cv } => {
                if let Value::Addr(a) = self.env[cv.index()] {
                    self.heap[a].notified = true;
                }
            }
            Inst::Return { vals } => {
                let values: Vec<Value> = vals.iter().map(|v| self.env[v.index()]).collect();
                let ThreadState::Ready(stack) = &mut self.threads[t] else {
                    unreachable!();
                };
                let popped = stack.pop().expect("ready threads have a frame");
                for (d, v) in popped.ret_dsts.iter().zip(values) {
                    self.env[d.index()] = v;
                }
                if stack.is_empty() {
                    self.threads[t] = ThreadState::Done;
                }
            }
            Inst::Nop => {}
        }
        None
    }

    /// Detects lock waits-for cycles among the currently blocked
    /// threads: each thread blocked at a `lock` on a mutex held by
    /// another thread contributes one waits-for edge, and every cycle
    /// in that (functional) graph is a concrete deadlock. Returns one
    /// entry per cycle: the blocked acquisition labels of its threads,
    /// sorted. Polling normalizes threads but is deterministic, so the
    /// machine is observationally unchanged for other callers.
    pub fn lock_cycles(&mut self, prog: &Program, valuation: &Valuation) -> Vec<Vec<Label>> {
        let n = self.threads.len();
        // waits_for[t] = (thread holding the mutex t is blocked on,
        // t's blocked lock label), when t is lock-blocked.
        let mut waits_for: Vec<Option<(usize, Label)>> = vec![None; n];
        for (t, w) in waits_for.iter_mut().enumerate() {
            let Poll::Blocked(l) = self.poll(prog, valuation, t) else {
                continue;
            };
            let Inst::Lock { mutex } = prog.inst(l) else {
                continue;
            };
            if let Value::Addr(a) = self.env[mutex.index()] {
                if let Some((holder, _)) = self.heap[a].owner {
                    if holder != t {
                        *w = Some((holder, l));
                    }
                }
            }
        }
        // Each node has at most one outgoing edge: walk successors and
        // record every cycle once (from its smallest-index member).
        let mut cycles = Vec::new();
        let mut color = vec![0u8; n]; // 0 unvisited, 1 on path, 2 done
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            loop {
                if color[cur] == 1 {
                    // Found a cycle: the suffix of `path` from `cur`.
                    let pos = path.iter().position(|&p| p == cur).expect("on path");
                    let mut labels: Vec<Label> = path[pos..]
                        .iter()
                        .map(|&p| waits_for[p].expect("cycle nodes are blocked").1)
                        .collect();
                    labels.sort();
                    cycles.push(labels);
                    break;
                }
                if color[cur] == 2 {
                    break;
                }
                color[cur] = 1;
                path.push(cur);
                match waits_for[cur] {
                    Some((next, _)) => cur = next,
                    None => break,
                }
            }
            for p in path {
                color[p] = 2;
            }
        }
        cycles
    }

    /// Whether thread `t` has pending buffered stores.
    pub fn has_pending(&self, t: usize) -> bool {
        !self.buffers[t].is_empty()
    }

    fn resolve(&self, callee: &Callee) -> Option<FuncId> {
        match callee {
            Callee::Direct(f) => Some(*f),
            Callee::Indirect(v) => match self.env[v.index()] {
                Value::Func(f) => Some(f),
                _ => None,
            },
        }
    }
}

/// Whether executing `inst` drains the thread's store buffer first.
/// Only plain loads and stores are relaxed by TSO/PSO; every other
/// instruction — synchronization, heap lifetime events, calls and
/// returns, observable sinks — keeps its program order against earlier
/// stores, which operationally means it fences them.
pub(crate) fn is_fence(inst: &Inst) -> bool {
    !matches!(
        inst,
        Inst::Load { .. }
            | Inst::Store { .. }
            | Inst::Copy { .. }
            | Inst::Bin { .. }
            | Inst::Un { .. }
            | Inst::AssignNull { .. }
            | Inst::TaintSource { .. }
            | Inst::FuncAddr { .. }
            | Inst::Alloc { .. }
            | Inst::Nop
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::parse;

    fn run_single(src: &str) -> (Machine, Vec<Hit>) {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let mut m = Machine::boot(&prog);
        let valuation = Valuation::new();
        let mut hits = Vec::new();
        for _ in 0..10_000 {
            let mut stepped = false;
            for t in 0..m.threads.len() {
                if let Poll::ReadyAt(_) = m.poll(&prog, &valuation, t) {
                    hits.extend(m.step(&prog, t));
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                break;
            }
        }
        (m, hits)
    }

    #[test]
    fn sequential_uaf_fires() {
        let prog_src = "fn main() { p = alloc o; free p; use p; }";
        let (m, hits) = run_single(prog_src);
        assert!(m.all_done());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, BugKind::UseAfterFree);
    }

    #[test]
    fn double_free_pair_is_normalized() {
        let (_, hits) = run_single("fn main() { p = alloc o; q = p; free q; free p; }");
        assert_eq!(hits.len(), 1);
        let h = hits[0];
        assert_eq!(h.kind, BugKind::DoubleFree);
        assert!(h.source < h.sink);
    }

    #[test]
    fn taint_flows_through_the_heap() {
        let (_, hits) = run_single(
            "fn main() { c = alloc o; s = taint; *c = s; x = *c; sink x; }",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, BugKind::DataLeak);
    }

    #[test]
    fn clean_program_has_no_hits() {
        let (m, hits) = run_single("fn main() { p = alloc o; use p; free p; }");
        assert!(m.all_done());
        assert!(hits.is_empty());
    }

    #[test]
    fn exit_with_pending_stores_needs_flush() {
        let prog = parse("fn main() { c = alloc o; n = null; *c = n; }").unwrap();
        prog.validate().unwrap();
        let mut m = Machine::boot_under(&prog, MemoryModel::Tso);
        let val = Valuation::new();
        while let Poll::ReadyAt(_) = m.poll(&prog, &val, 0) {
            assert!(m.step(&prog, 0).is_none());
        }
        // The store is still buffered: the frame cannot pop.
        assert_eq!(m.poll(&prog, &val, 0), Poll::NeedsFlush);
        assert!(m.has_pending(0));
        assert_eq!(m.flush_choices(0), vec![0]);
        m.flush(0, 0);
        assert!(matches!(m.heap[0].content, Value::Null(_)));
        assert_eq!(m.poll(&prog, &val, 0), Poll::Done);
        assert!(m.all_done());
    }

    #[test]
    fn pso_drains_per_location_tso_in_order() {
        let prog = parse(
            "fn main() { c = alloc o1; d = alloc o2; n = null;
                         *c = n; *d = n; *c = c; }",
        )
        .unwrap();
        prog.validate().unwrap();
        for (model, expect) in [
            (MemoryModel::Tso, vec![0]),
            // PSO: oldest entry per distinct cell — the second store to
            // `c` (index 2) stays ordered behind the first.
            (MemoryModel::Pso, vec![0, 1]),
        ] {
            let mut m = Machine::boot_under(&prog, model);
            let val = Valuation::new();
            while let Poll::ReadyAt(_) = m.poll(&prog, &val, 0) {
                assert!(m.step(&prog, 0).is_none());
            }
            assert_eq!(m.buffers[0].len(), 3);
            assert_eq!(m.flush_choices(0), expect, "{model:?}");
        }
    }

    #[test]
    fn fork_runs_child_and_join_gates() {
        let prog = parse(
            "fn main() { p = alloc o; fork t w(p); join t; free p; }
             fn w(q) { use q; }",
        )
        .unwrap();
        let mut m = Machine::boot(&prog);
        let valuation = Valuation::new();
        // Drive main until it blocks on the join.
        loop {
            match m.poll(&prog, &valuation, 0) {
                Poll::ReadyAt(_) => {
                    assert!(m.step(&prog, 0).is_none());
                }
                Poll::Blocked(_) => break,
                p => panic!("unexpected {p:?}"),
            }
        }
        // The child runs to completion; the join then unblocks.
        while let Poll::ReadyAt(_) = m.poll(&prog, &valuation, 1) {
            assert!(m.step(&prog, 1).is_none());
        }
        assert!(matches!(m.poll(&prog, &valuation, 0), Poll::ReadyAt(_)));
    }
}
