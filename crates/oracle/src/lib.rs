//! # canary-oracle
//!
//! A deterministic concrete interpreter for the Fig. 3 IR, used as a
//! *ground-truth oracle* for the static pipeline:
//!
//! * [`replay`] executes a report's witness schedule step by step with
//!   a real heap — tracking allocation, free, dereference, null stores
//!   and taint — and checks that the claimed bug actually fires at the
//!   claimed source/sink pair. This is the executable reading of
//!   Defn. 2: the static witness is one sequentially consistent
//!   interleaving, and replay realizes it.
//! * [`explore`] enumerates *all* interleavings and branch valuations
//!   of small programs up to a configurable bound, certifying
//!   refutations (the Fig. 2 pattern concretely never fires) and
//!   powering the differential harness's bounded-soundness check.
//! * Both have `_under` variants ([`replay_under`], [`explore_under`])
//!   that run the machine with per-thread store buffers, giving TSO and
//!   PSO their operational reading: stores drain at explicit scheduler
//!   events, so a weak-memory-only bug (store buffering, PSO message
//!   passing) is concretely reachable here and concretely *unreachable*
//!   under the SC machine — the differential harness certifies both
//!   directions.
//!
//! The machine is intentionally simple: one-word heap cells, opaque
//! arithmetic, sticky notifies. It does not model integer values —
//! branch atoms stay symbolic, decided by the SMT model's valuation
//! ([`BugReport::guards`](canary_detect::BugReport)) during replay and
//! enumerated exhaustively during exploration. That is exactly the
//! abstraction level the static analysis works at, which is what makes
//! the differential comparison meaningful.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod enumerate;
pub mod machine;
pub mod replay;

pub use enumerate::{explore, explore_under, EnumLimits, Exploration};
pub use machine::{
    BufferedStore, Frame, HeapCell, Hit, Machine, Poll, ThreadState, Valuation, Value,
};
pub use replay::{
    replay, replay_report, replay_report_under, replay_under, schedule_duplicates, ReplayFailure,
    ReplayResult,
};
