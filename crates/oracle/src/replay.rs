//! Schedule replay: executing a static report's witness concretely.
//!
//! A Canary report carries a witness schedule (the SMT model's ordered
//! events, completed with fork/join sites) and the model's branch
//! directions. [`replay`] drives the [`Machine`] so that the scheduled
//! labels execute in exactly the claimed order — every *unscheduled*
//! statement runs as early as possible, every scheduled one waits for
//! its turn — and checks that the claimed source/sink pair concretely
//! fires. This is the executable reading of Defn. 2: the schedule is
//! one sequentially consistent interleaving, and replay confirms the
//! value flow is realized by it, not merely consistent with it.

use std::collections::HashSet;

use canary_detect::{BugKind, BugReport};
use canary_ir::{block_reaches, CondExpr, Label, Program, StepPoint, Terminator};

use crate::machine::{Hit, Machine, Poll, ThreadState, Valuation};

/// Safety cap on interpreter steps (bounded programs terminate, but a
/// malformed schedule could otherwise spin on barred threads).
const STEP_BUDGET: usize = 1_000_000;

/// The outcome of replaying one witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplayResult {
    /// The claimed bug fired at the claimed source/sink pair.
    Confirmed {
        /// Labeled instructions executed before the bug fired.
        steps: usize,
    },
    /// The replay did not confirm the claim.
    Failed(ReplayFailure),
}

impl ReplayResult {
    /// Whether the replay confirmed the claim.
    pub fn confirmed(&self) -> bool {
        matches!(self, ReplayResult::Confirmed { .. })
    }
}

/// Why a replay failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplayFailure {
    /// No thread can move: a scheduled label is unreachable, or the
    /// schedule orders events against a join/lock/wait dependency.
    Deadlock {
        /// The next unconsumed schedule entry, if any.
        waiting_for: Option<Label>,
    },
    /// Execution ran to completion without the claimed bug firing.
    NoBug {
        /// The bugs that *did* fire, if any.
        observed: Vec<Hit>,
    },
    /// The step budget was exhausted.
    Budget,
}

/// Replays `schedule` under the branch directions in `guards` and
/// reports whether a `kind` bug at `(source, sink)` concretely fires.
///
/// Scheduled labels execute in the given order; unscheduled statements
/// run eagerly (lowest thread index first) between them. Branch atoms
/// not covered by `guards` are steered toward the owning thread's next
/// scheduled label when exactly one arm reaches it, else default to
/// the else-arm.
pub fn replay(
    prog: &Program,
    kind: BugKind,
    source: Label,
    sink: Label,
    schedule: &[Label],
    guards: &[(canary_ir::CondId, bool)],
) -> ReplayResult {
    let mut m = Machine::boot(prog);
    let mut valuation: Valuation = guards.iter().copied().collect();
    let mut next = 0usize;
    let mut observed: Vec<Hit> = Vec::new();
    let mut steps = 0usize;
    let matched = |h: &Hit| {
        h.kind == kind
            && ((h.source, h.sink) == (source, sink)
                // Double-free pairs are unordered: either free may be
                // the one the schedule runs second.
                || (kind == BugKind::DoubleFree && (h.source, h.sink) == (sink, source)))
    };
    while steps < STEP_BUDGET {
        let remaining = &schedule[next..];
        let mut head_thread = None;
        let mut stepped = false;
        for t in 0..m.threads.len() {
            let label = match poll_resolved(&mut m, prog, &mut valuation, t, remaining) {
                Poll::ReadyAt(l) => l,
                _ => continue,
            };
            if remaining.first() == Some(&label) {
                head_thread = Some(t);
                continue;
            }
            if remaining.contains(&label) {
                continue; // barred: scheduled for later
            }
            // Free step: not schedule-constrained, run it now.
            steps += 1;
            if let Some(h) = m.step(prog, t) {
                if matched(&h) {
                    return ReplayResult::Confirmed { steps };
                }
                observed.push(h);
            }
            stepped = true;
            break;
        }
        if stepped {
            continue;
        }
        if let Some(t) = head_thread {
            next += 1;
            steps += 1;
            if let Some(h) = m.step(prog, t) {
                if matched(&h) {
                    return ReplayResult::Confirmed { steps };
                }
                observed.push(h);
            }
            continue;
        }
        if m.all_done() {
            return ReplayResult::Failed(ReplayFailure::NoBug { observed });
        }
        // A conflict-lock witness replays not to a hit but to a stuck
        // state: the claim is confirmed when the machine is blocked in
        // a lock waits-for cycle whose extreme acquisition labels are
        // exactly the reported pair.
        if kind == BugKind::ConflictLock
            && m.lock_cycles(prog, &valuation)
                .iter()
                .any(|c| c.first() == Some(&source) && c.last() == Some(&sink))
        {
            return ReplayResult::Confirmed { steps };
        }
        return ReplayResult::Failed(ReplayFailure::Deadlock {
            waiting_for: schedule.get(next).copied(),
        });
    }
    ReplayResult::Failed(ReplayFailure::Budget)
}

/// Replays a detector report against the program it was produced from.
pub fn replay_report(prog: &Program, report: &BugReport) -> ReplayResult {
    replay(
        prog,
        report.kind,
        report.source,
        report.sink,
        &report.schedule,
        &report.guards,
    )
}

/// Polls thread `t`, resolving open branch atoms as they surface:
/// steered toward the thread's earliest remaining scheduled label when
/// exactly one arm reaches it, defaulting to the else-arm otherwise.
fn poll_resolved(
    m: &mut Machine,
    prog: &Program,
    valuation: &mut Valuation,
    t: usize,
    remaining: &[Label],
) -> Poll {
    loop {
        match m.poll(prog, valuation, t) {
            Poll::NeedsCond(c) => {
                let v = steer(m, prog, t, c, remaining).unwrap_or(false);
                valuation.insert(c, v);
            }
            p => return p,
        }
    }
}

/// Picks the value of atom `c` that routes thread `t` toward its next
/// scheduled label, when that is unambiguous.
fn steer(
    m: &Machine,
    prog: &Program,
    t: usize,
    c: canary_ir::CondId,
    remaining: &[Label],
) -> Option<bool> {
    let ThreadState::Ready(stack) = &m.threads[t] else {
        return None;
    };
    let cursor = stack.last()?.cursor;
    let StepPoint::Term(Terminator::Branch {
        cond,
        then_blk,
        else_blk,
    }) = cursor.point(prog)
    else {
        return None;
    };
    let CondExpr::Atom { cond: atom, negated } = *cond else {
        return None;
    };
    if atom != c {
        return None;
    }
    for &l in remaining {
        if prog.func_of(l) != cursor.func {
            continue;
        }
        let via_then = block_reaches(prog, cursor.func, *then_blk, l);
        let via_else = block_reaches(prog, cursor.func, *else_blk, l);
        match (via_then, via_else) {
            (true, false) => return Some(!negated),
            (false, true) => return Some(negated),
            _ => continue, // both arms reach it (it's past the join) or neither
        }
    }
    None
}

/// Returns the labels of `schedule` that can never replay — duplicates
/// and labels of functions executed more than once confuse the barrier
/// discipline; diagnostics use this to explain a deadlock.
pub fn schedule_duplicates(schedule: &[Label]) -> Vec<Label> {
    let mut seen = HashSet::new();
    schedule
        .iter()
        .copied()
        .filter(|l| !seen.insert(*l))
        .collect()
}
