//! Schedule replay: executing a static report's witness concretely.
//!
//! A Canary report carries a witness schedule (the SMT model's ordered
//! events, completed with fork/join sites) and the model's branch
//! directions. [`replay`] drives the [`Machine`] so that the scheduled
//! labels execute in exactly the claimed order — every *unscheduled*
//! statement runs as early as possible, every scheduled one waits for
//! its turn — and checks that the claimed source/sink pair concretely
//! fires. This is the executable reading of Defn. 2: the schedule is
//! one sequentially consistent interleaving, and replay confirms the
//! value flow is realized by it, not merely consistent with it.
//!
//! Under TSO/PSO ([`replay_under`]) a schedule slot for a `store` names
//! its *flush* point, not its execution: the SMT model's order atoms
//! may place a relaxed store after a later load of its own thread, and
//! the store-buffer machine realizes exactly that by executing the
//! store early (into the buffer) and steering the drain to the store's
//! slot. Unscheduled statements and drains still run freely, so the
//! weak replay is a bounded search over the free choices with the
//! scheduled events as barriers — deterministic, memoized, and bounded
//! by the same step budget as the SC loop.

use std::collections::{BTreeSet, HashSet};

use canary_detect::{BugKind, BugReport, MemoryModel};
use canary_ir::{block_reaches, CondExpr, Inst, Label, Program, StepPoint, Terminator};

use crate::machine::{is_fence, Hit, Machine, Poll, ThreadState, Valuation};

/// Safety cap on interpreter steps (bounded programs terminate, but a
/// malformed schedule could otherwise spin on barred threads).
const STEP_BUDGET: usize = 1_000_000;

/// The outcome of replaying one witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplayResult {
    /// The claimed bug fired at the claimed source/sink pair.
    Confirmed {
        /// Labeled instructions executed before the bug fired.
        steps: usize,
    },
    /// The replay did not confirm the claim.
    Failed(ReplayFailure),
}

impl ReplayResult {
    /// Whether the replay confirmed the claim.
    pub fn confirmed(&self) -> bool {
        matches!(self, ReplayResult::Confirmed { .. })
    }
}

/// Why a replay failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplayFailure {
    /// No thread can move: a scheduled label is unreachable, or the
    /// schedule orders events against a join/lock/wait dependency.
    Deadlock {
        /// The next unconsumed schedule entry, if any.
        waiting_for: Option<Label>,
    },
    /// Execution ran to completion without the claimed bug firing.
    NoBug {
        /// The bugs that *did* fire, if any.
        observed: Vec<Hit>,
    },
    /// The step budget was exhausted.
    Budget,
}

/// Replays `schedule` under the branch directions in `guards` and
/// reports whether a `kind` bug at `(source, sink)` concretely fires.
///
/// Scheduled labels execute in the given order; unscheduled statements
/// run eagerly (lowest thread index first) between them. Branch atoms
/// not covered by `guards` are steered toward the owning thread's next
/// scheduled label when exactly one arm reaches it, else default to
/// the else-arm.
pub fn replay(
    prog: &Program,
    kind: BugKind,
    source: Label,
    sink: Label,
    schedule: &[Label],
    guards: &[(canary_ir::CondId, bool)],
) -> ReplayResult {
    let mut m = Machine::boot(prog);
    let mut valuation: Valuation = guards.iter().copied().collect();
    let mut next = 0usize;
    let mut observed: Vec<Hit> = Vec::new();
    let mut steps = 0usize;
    let matched = |h: &Hit| {
        h.kind == kind
            && ((h.source, h.sink) == (source, sink)
                // Double-free pairs are unordered: either free may be
                // the one the schedule runs second.
                || (kind == BugKind::DoubleFree && (h.source, h.sink) == (sink, source)))
    };
    while steps < STEP_BUDGET {
        let remaining = &schedule[next..];
        let mut head_thread = None;
        let mut stepped = false;
        for t in 0..m.threads.len() {
            let label = match poll_resolved(&mut m, prog, &mut valuation, t, remaining) {
                Poll::ReadyAt(l) => l,
                _ => continue,
            };
            if remaining.first() == Some(&label) {
                head_thread = Some(t);
                continue;
            }
            if remaining.contains(&label) {
                continue; // barred: scheduled for later
            }
            // Free step: not schedule-constrained, run it now.
            steps += 1;
            if let Some(h) = m.step(prog, t) {
                if matched(&h) {
                    return ReplayResult::Confirmed { steps };
                }
                observed.push(h);
            }
            stepped = true;
            break;
        }
        if stepped {
            continue;
        }
        if let Some(t) = head_thread {
            next += 1;
            steps += 1;
            if let Some(h) = m.step(prog, t) {
                if matched(&h) {
                    return ReplayResult::Confirmed { steps };
                }
                observed.push(h);
            }
            continue;
        }
        if m.all_done() {
            return ReplayResult::Failed(ReplayFailure::NoBug { observed });
        }
        // A conflict-lock witness replays not to a hit but to a stuck
        // state: the claim is confirmed when the machine is blocked in
        // a lock waits-for cycle whose extreme acquisition labels are
        // exactly the reported pair.
        if kind == BugKind::ConflictLock
            && m.lock_cycles(prog, &valuation)
                .iter()
                .any(|c| c.first() == Some(&source) && c.last() == Some(&sink))
        {
            return ReplayResult::Confirmed { steps };
        }
        return ReplayResult::Failed(ReplayFailure::Deadlock {
            waiting_for: schedule.get(next).copied(),
        });
    }
    ReplayResult::Failed(ReplayFailure::Budget)
}

/// Replays a detector report against the program it was produced from.
pub fn replay_report(prog: &Program, report: &BugReport) -> ReplayResult {
    replay(
        prog,
        report.kind,
        report.source,
        report.sink,
        &report.schedule,
        &report.guards,
    )
}

/// [`replay`] under an explicit memory model.
///
/// Under SC this is exactly [`replay`]. Under TSO/PSO the schedule's
/// barrier discipline changes meaning for relaxed stores: a scheduled
/// `store` may *execute* (enqueue into its thread's buffer) at any
/// point, and its schedule slot steers the *flush* that publishes it —
/// that is how a witness whose order atoms place a store after a
/// program-order-later load of the same thread replays concretely.
/// Because the flush points of *unscheduled* stores remain free
/// choices (as do branch atoms the guards leave open), the weak replay
/// is a bounded memoized DFS over those free moves with the scheduled
/// events as barriers, confirmed as soon as any compatible execution
/// fires the claimed bug. The search is exhaustive within
/// [`STEP_BUDGET`] states, so a `NoBug`/`Deadlock` failure means *no*
/// schedule-compatible execution confirms the claim.
pub fn replay_under(
    prog: &Program,
    model: MemoryModel,
    kind: BugKind,
    source: Label,
    sink: Label,
    schedule: &[Label],
    guards: &[(canary_ir::CondId, bool)],
) -> ReplayResult {
    if model == MemoryModel::Sc {
        return replay(prog, kind, source, sink, schedule, guards);
    }
    let initial: Valuation = guards.iter().copied().collect();
    let matched = |h: &Hit| {
        h.kind == kind
            && ((h.source, h.sink) == (source, sink)
                || (kind == BugKind::DoubleFree && (h.source, h.sink) == (sink, source)))
    };
    // DFS state: (machine, valuation, schedule cursor, steps so far).
    // Memoization drops `steps` — it is diagnostic, and pruning a
    // revisit at a different depth only forgoes a duplicate subtree.
    let mut visited: HashSet<(Machine, Valuation, usize)> = HashSet::new();
    let mut stack: Vec<(Machine, Valuation, usize, usize)> =
        vec![(Machine::boot_under(prog, model), initial, 0, 0)];
    let mut observed: BTreeSet<Hit> = BTreeSet::new();
    let mut saw_completion = false;
    let mut first_deadlock: Option<Option<Label>> = None;
    let mut budget = STEP_BUDGET;
    'dfs: while let Some((mut m, val, next, steps)) = stack.pop() {
        if budget == 0 {
            return ReplayResult::Failed(ReplayFailure::Budget);
        }
        budget -= 1;
        // Normalize every thread; split on the first open branch atom.
        let mut ready: Vec<(usize, Label)> = Vec::new();
        for t in 0..m.threads.len() {
            match m.poll(prog, &val, t) {
                Poll::NeedsCond(c) => {
                    for v in [false, true] {
                        let mut val2 = val.clone();
                        val2.insert(c, v);
                        stack.push((m.clone(), val2, next, steps));
                    }
                    continue 'dfs;
                }
                Poll::ReadyAt(l) => ready.push((t, l)),
                Poll::Blocked(_) | Poll::NeedsFlush | Poll::Done => {}
            }
        }
        if !visited.insert((m.clone(), val.clone(), next)) {
            continue;
        }
        let remaining = &schedule[next..];
        let head = remaining.first().copied();
        let mut children = 0usize;
        // Statement moves.
        for &(t, l) in &ready {
            let inst = prog.inst(l);
            // Entries whose flush slot is still scheduled are frozen: a
            // fence would publish them as a side effect of `step`'s
            // drain, stealing their steered flush point — so the fence
            // waits until their slots are consumed.
            let frozen = m.buffers[t].iter().any(|b| remaining.contains(&b.label));
            if is_fence(inst) && frozen {
                continue;
            }
            let is_store = matches!(inst, Inst::Store { .. });
            let scheduled = remaining.contains(&l);
            if scheduled && !is_store && head != Some(l) {
                continue; // barred until it is the head
            }
            let mut child = m.clone();
            let before = child.buffers[t].len();
            if let Some(h) = child.step(prog, t) {
                if matched(&h) {
                    return ReplayResult::Confirmed { steps: steps + 1 };
                }
                observed.insert(h);
            }
            // A scheduled store's slot names its point of global
            // visibility, so executing it never consumes the slot —
            // the steered flush does. The one exception is a store
            // that buffered nothing (its address is not a live cell):
            // no flush will ever carry its label, so the execution
            // consumes the slot when it is the head and otherwise the
            // slot is unsatisfiable on this path.
            let consume = if scheduled {
                if is_store {
                    if child.buffers[t].len() > before {
                        false
                    } else if head == Some(l) {
                        true
                    } else {
                        continue;
                    }
                } else {
                    true
                }
            } else {
                false
            };
            children += 1;
            stack.push((child, val.clone(), next + usize::from(consume), steps + 1));
        }
        // Drain moves: the head's flush consumes its slot; pending
        // stores not on the schedule flush freely; scheduled-deeper
        // entries stay frozen until their slot arrives.
        for t in 0..m.threads.len() {
            for idx in m.flush_choices(t) {
                let label = m.buffers[t][idx].label;
                let at_head = head == Some(label);
                if !at_head && remaining.contains(&label) {
                    continue;
                }
                let mut child = m.clone();
                child.flush(t, idx);
                children += 1;
                stack.push((child, val.clone(), next + usize::from(at_head), steps));
            }
        }
        if children > 0 {
            continue;
        }
        if m.all_done() {
            saw_completion = true;
            continue;
        }
        // As in the SC loop, a conflict-lock witness confirms at a
        // stuck state whose waits-for cycle spans the reported pair.
        if kind == BugKind::ConflictLock
            && m.lock_cycles(prog, &val)
                .iter()
                .any(|c| c.first() == Some(&source) && c.last() == Some(&sink))
        {
            return ReplayResult::Confirmed { steps };
        }
        if first_deadlock.is_none() {
            first_deadlock = Some(schedule.get(next).copied());
        }
    }
    if saw_completion {
        ReplayResult::Failed(ReplayFailure::NoBug {
            observed: observed.into_iter().collect(),
        })
    } else {
        ReplayResult::Failed(ReplayFailure::Deadlock {
            waiting_for: first_deadlock.unwrap_or(None),
        })
    }
}

/// Replays a detector report under an explicit memory model.
pub fn replay_report_under(
    prog: &Program,
    model: MemoryModel,
    report: &BugReport,
) -> ReplayResult {
    replay_under(
        prog,
        model,
        report.kind,
        report.source,
        report.sink,
        &report.schedule,
        &report.guards,
    )
}

/// Polls thread `t`, resolving open branch atoms as they surface:
/// steered toward the thread's earliest remaining scheduled label when
/// exactly one arm reaches it, defaulting to the else-arm otherwise.
fn poll_resolved(
    m: &mut Machine,
    prog: &Program,
    valuation: &mut Valuation,
    t: usize,
    remaining: &[Label],
) -> Poll {
    loop {
        match m.poll(prog, valuation, t) {
            Poll::NeedsCond(c) => {
                let v = steer(m, prog, t, c, remaining).unwrap_or(false);
                valuation.insert(c, v);
            }
            p => return p,
        }
    }
}

/// Picks the value of atom `c` that routes thread `t` toward its next
/// scheduled label, when that is unambiguous.
fn steer(
    m: &Machine,
    prog: &Program,
    t: usize,
    c: canary_ir::CondId,
    remaining: &[Label],
) -> Option<bool> {
    let ThreadState::Ready(stack) = &m.threads[t] else {
        return None;
    };
    let cursor = stack.last()?.cursor;
    let StepPoint::Term(Terminator::Branch {
        cond,
        then_blk,
        else_blk,
    }) = cursor.point(prog)
    else {
        return None;
    };
    let CondExpr::Atom { cond: atom, negated } = *cond else {
        return None;
    };
    if atom != c {
        return None;
    }
    for &l in remaining {
        if prog.func_of(l) != cursor.func {
            continue;
        }
        let via_then = block_reaches(prog, cursor.func, *then_blk, l);
        let via_else = block_reaches(prog, cursor.func, *else_blk, l);
        match (via_then, via_else) {
            (true, false) => return Some(!negated),
            (false, true) => return Some(negated),
            _ => continue, // both arms reach it (it's past the join) or neither
        }
    }
    None
}

/// Returns the labels of `schedule` that can never replay — duplicates
/// and labels of functions executed more than once confuse the barrier
/// discipline; diagnostics use this to explain a deadlock.
pub fn schedule_duplicates(schedule: &[Label]) -> Vec<Label> {
    let mut seen = HashSet::new();
    schedule
        .iter()
        .copied()
        .filter(|l| !seen.insert(*l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::parse;

    /// Store buffering (see `enumerate::tests::SB`): a double-free that
    /// requires both flag stores to be delayed past the sibling loads.
    const SB: &str = "fn main() { x = alloc ox; y = alloc oy; p = alloc op;
                                  *x = p; *y = p;
                                  fork a ta(x, y); fork b tb(y, x); }
                      fn ta(xa, ya) { na = null; *xa = na; r = *ya; free r; }
                      fn tb(yb, xb) { nb = null; *yb = nb; s = *xb; free s; }";

    /// Message passing (see `enumerate::tests::MP`): a use-after-free
    /// that requires the mailbox publish to pass the pointer install —
    /// PSO only.
    const MP: &str = "fn main() { b = alloc ob; s = alloc os; e = alloc oe;
                                  *b = e;
                                  fork w tw(b, s, e); fork r tr(s); }
                      fn tw(bw, sw, ew) { free ew; g = alloc og; *bw = g; *sw = bw; }
                      fn tr(sr) { q = *sr; p = *q; use p; }";

    fn prep(src: &str) -> Program {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        prog
    }

    fn site(prog: &Program, func: &str, pred: impl Fn(&Inst) -> bool) -> Label {
        let f = prog.func_by_name(func).unwrap();
        prog.labels()
            .find(|&l| prog.func_of(l) == f && pred(prog.inst(l)))
            .expect("litmus function has the site")
    }

    #[test]
    fn free_search_confirms_sb_under_weak_models_only() {
        let prog = prep(SB);
        let fs = prog.free_sites();
        let (lo, hi) = (fs[0].min(fs[1]), fs[0].max(fs[1]));
        // An empty schedule makes every move free: the weak replay is a
        // full bounded search, so it finds the store-buffering outcome.
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let r = replay_under(&prog, model, BugKind::DoubleFree, lo, hi, &[], &[]);
            assert!(r.confirmed(), "{model:?}: {r:?}");
        }
        // SC delegates to the deterministic eager loop: no double-free.
        let r = replay_under(&prog, MemoryModel::Sc, BugKind::DoubleFree, lo, hi, &[], &[]);
        assert!(!r.confirmed(), "{r:?}");
    }

    #[test]
    fn free_search_confirms_mp_under_pso_only() {
        let prog = prep(MP);
        let free = prog.free_sites()[0];
        let use_site = prog.deref_sites()[0];
        let pso = replay_under(
            &prog,
            MemoryModel::Pso,
            BugKind::UseAfterFree,
            free,
            use_site,
            &[],
            &[],
        );
        assert!(pso.confirmed(), "{pso:?}");
        // TSO's FIFO drain order keeps the install before the publish;
        // the exhaustive search proves no compatible execution fires.
        let tso = replay_under(
            &prog,
            MemoryModel::Tso,
            BugKind::UseAfterFree,
            free,
            use_site,
            &[],
            &[],
        );
        assert_eq!(
            tso,
            ReplayResult::Failed(ReplayFailure::NoBug { observed: vec![] })
        );
    }

    #[test]
    fn store_slots_steer_flush_points() {
        let prog = prep(SB);
        let fs = prog.free_sites();
        let (lo, hi) = (fs[0].min(fs[1]), fs[0].max(fs[1]));
        let store_a = site(&prog, "ta", |i| matches!(i, Inst::Store { .. }));
        let load_a = site(&prog, "ta", |i| matches!(i, Inst::Load { .. }));
        let store_b = site(&prog, "tb", |i| matches!(i, Inst::Store { .. }));
        let load_b = site(&prog, "tb", |i| matches!(i, Inst::Load { .. }));
        // The witness inverts program order: both loads execute before
        // either store becomes visible. Only a store buffer realizes
        // this, with the store slots steering the flushes.
        let inverted = [load_a, load_b, store_a, store_b];
        let r = replay_under(
            &prog,
            MemoryModel::Tso,
            BugKind::DoubleFree,
            lo,
            hi,
            &inverted,
            &[],
        );
        assert!(r.confirmed(), "{r:?}");
        // The SC-like order pins both stores' visibility before the
        // loads: every compatible execution reads the nulled flags, so
        // the claimed double-free must NOT replay — the barrier
        // discipline is faithful, not merely permissive.
        let sc_like = [store_a, store_b, load_a, load_b];
        let r = replay_under(
            &prog,
            MemoryModel::Tso,
            BugKind::DoubleFree,
            lo,
            hi,
            &sc_like,
            &[],
        );
        assert!(!r.confirmed(), "{r:?}");
    }
}
