//! Bounded exhaustive interleaving enumeration.
//!
//! For small programs the oracle can do better than replaying one
//! schedule: it can walk *every* interleaving of the chosen memory
//! model under *every* branch valuation and collect the full set of
//! concretely reachable bugs. A completed exploration certifies
//! refutations — if the Fig. 2 pattern never fires in any interleaving,
//! Canary dismissing it is not a lucky guess but ground truth — and
//! gives the differential harness its bounded-soundness side: every
//! enumerated hit must appear among the static reports.
//!
//! The walk is a plain DFS over machine states (a "bounded product
//! walk"): at each state either some branch atom is still open — then
//! the state splits into the two valuations — or every ready thread is
//! a scheduling choice. Under TSO/PSO ([`explore_under`]) each legal
//! store-buffer drain is an additional scheduling choice, so delayed
//! visibility is enumerated exhaustively alongside statement steps.
//! States are memoized by exact machine + valuation equality — the
//! machine state includes buffer contents, so two interleavings
//! converge only when their pending stores agree too. Bounded programs
//! are acyclic, so the state graph is finite and the DFS terminates.

use std::collections::{BTreeSet, HashSet};

use canary_detect::{BugKind, MemoryModel};
use canary_ir::{Label, Program};

use crate::machine::{Machine, Poll, Valuation};

/// Caps on the exploration.
#[derive(Copy, Clone, Debug)]
pub struct EnumLimits {
    /// Maximum distinct states to visit before giving up.
    pub max_states: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_states: 1 << 20,
        }
    }
}

/// The result of an exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Every `(kind, source, sink)` triple that fired in some explored
    /// interleaving. Double-free pairs are normalized `source < sink`.
    pub hits: BTreeSet<(BugKind, Label, Label)>,
    /// `true` when the walk exhausted the state space — only then do
    /// absent triples certify refutations.
    pub complete: bool,
    /// Distinct states visited.
    pub states: usize,
}

impl Exploration {
    /// Whether the exploration proved `(kind, source, sink)` cannot
    /// fire in any interleaving within the bound.
    pub fn refutes(&self, kind: BugKind, source: Label, sink: Label) -> bool {
        self.complete && !self.hits.contains(&(kind, source, sink))
    }
}

/// Explores all sequentially consistent interleavings and branch
/// valuations of `prog` up to `limits`.
pub fn explore(prog: &Program, limits: EnumLimits) -> Exploration {
    explore_under(prog, MemoryModel::Sc, limits)
}

/// [`explore`] under an explicit memory model: under TSO/PSO every
/// legal store-buffer drain is interleaved as its own scheduler event.
pub fn explore_under(prog: &Program, model: MemoryModel, limits: EnumLimits) -> Exploration {
    let mut hits = BTreeSet::new();
    let mut visited: HashSet<(Machine, Valuation)> = HashSet::new();
    let mut stack: Vec<(Machine, Valuation)> =
        vec![(Machine::boot_under(prog, model), Valuation::new())];
    let mut complete = true;
    'dfs: while let Some((mut m, val)) = stack.pop() {
        if visited.len() >= limits.max_states {
            complete = false;
            break;
        }
        // Normalize every thread first: splitting on an open branch
        // atom commutes with scheduling (the valuation is global and
        // immutable within one execution), so it is sound to decide it
        // before picking a thread.
        let mut ready: Vec<usize> = Vec::new();
        for t in 0..m.threads.len() {
            match m.poll(prog, &val, t) {
                Poll::NeedsCond(c) => {
                    for v in [false, true] {
                        let mut val2 = val.clone();
                        val2.insert(c, v);
                        stack.push((m.clone(), val2));
                    }
                    continue 'dfs;
                }
                Poll::ReadyAt(_) => ready.push(t),
                Poll::Blocked(_) | Poll::NeedsFlush | Poll::Done => {}
            }
        }
        if !visited.insert((m.clone(), val.clone())) {
            continue;
        }
        // Pending-store drains are scheduler events of their own: a
        // buffer may flush at any point, including while its thread is
        // blocked (hardware drains regardless of pipeline stalls).
        let flushes: Vec<(usize, usize)> = (0..m.threads.len())
            .flat_map(|t| m.flush_choices(t).into_iter().map(move |i| (t, i)))
            .collect();
        // No statement step and nothing to drain: terminated or
        // deadlocked — either way a leaf. A deadlock leaf with a lock
        // waits-for cycle is a concrete conflict-lock hit, keyed by the
        // extreme blocked acquisition labels (the detector's reporting
        // convention).
        if ready.is_empty() && flushes.is_empty() && !m.all_done() {
            for cycle in m.lock_cycles(prog, &val) {
                if let (Some(&lo), Some(&hi)) = (cycle.first(), cycle.last()) {
                    hits.insert((BugKind::ConflictLock, lo, hi));
                }
            }
        }
        for t in ready {
            let mut child = m.clone();
            if let Some(h) = child.step(prog, t) {
                hits.insert((h.kind, h.source, h.sink));
            }
            stack.push((child, val.clone()));
        }
        for (t, idx) in flushes {
            let mut child = m.clone();
            child.flush(t, idx);
            stack.push((child, val.clone()));
        }
    }
    Exploration {
        hits,
        complete,
        states: visited.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::parse;

    fn explored(src: &str) -> Exploration {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let e = explore(&prog, EnumLimits::default());
        assert!(e.complete, "exploration should finish on tiny programs");
        e
    }

    #[test]
    fn racy_uaf_is_found_and_ordered_is_not() {
        // No join: the free races with the child's use.
        let racy = explored(
            "fn main() { p = alloc o; fork t w(p); free p; }
             fn w(q) { use q; }",
        );
        assert!(racy
            .hits
            .iter()
            .any(|&(k, _, _)| k == BugKind::UseAfterFree));
        // Join before the free: no interleaving reaches the bug.
        let ordered = explored(
            "fn main() { p = alloc o; fork t w(p); join t; free p; }
             fn w(q) { use q; }",
        );
        assert!(ordered.hits.is_empty(), "{:?}", ordered.hits);
    }

    #[test]
    fn branch_valuations_are_both_explored() {
        // The free happens only under c; the use only under !c. No
        // single execution takes both arms, so no double-free; but the
        // UAF in the c-arm (free then use of same pointer later) also
        // cannot happen. Check the guarded free alone fires nothing.
        let e = explored(
            "fn main() { p = alloc o; if (c) { free p; } use p; }",
        );
        // In the c=true world this IS a sequential UAF; enumeration
        // must find it, and only it.
        assert_eq!(e.hits.len(), 1);
        let (k, _, _) = *e.hits.iter().next().unwrap();
        assert_eq!(k, BugKind::UseAfterFree);
    }

    #[test]
    fn lock_discipline_allows_both_orders() {
        // Both threads deref under a common lock; no bug either way.
        let e = explored(
            "fn main() { m = alloc mu; p = alloc o; fork t w(p, m);
                         lock m; use p; unlock m; join t; free p; }
             fn w(q, n) { lock n; use q; unlock n; }",
        );
        assert!(e.hits.is_empty(), "{:?}", e.hits);
    }

    /// Dekker/store-buffering: each thread nulls one flag then reads
    /// the other. Under SC at least one read observes a null, so at
    /// most one `free` acts and no double-free is possible; once either
    /// store may be delayed past the sibling load (TSO and PSO), both
    /// reads can see the initial pointer and both frees act.
    const SB: &str = "fn main() { x = alloc ox; y = alloc oy; p = alloc op;
                                  *x = p; *y = p;
                                  fork a ta(x, y); fork b tb(y, x); }
                      fn ta(xa, ya) { na = null; *xa = na; r = *ya; free r; }
                      fn tb(yb, xb) { nb = null; *yb = nb; s = *xb; free s; }";

    /// Message passing: the writer retires a pointer, installs a fresh
    /// one (W1), then publishes the mailbox (W2). Reading the mailbox
    /// must then find the fresh pointer unless W2 became visible before
    /// W1 — which only PSO's per-location drain order allows.
    const MP: &str = "fn main() { b = alloc ob; s = alloc os; e = alloc oe;
                                  *b = e;
                                  fork w tw(b, s, e); fork r tr(s); }
                      fn tw(bw, sw, ew) { free ew; g = alloc og; *bw = g; *sw = bw; }
                      fn tr(sr) { q = *sr; p = *q; use p; }";

    /// Load buffering: observing the freed pointer at `use a` would
    /// need thread a's *load* to see a value forwarded from its own
    /// later store — a load→store reordering no store buffer produces.
    const LB: &str = "fn main() { x = alloc ox; y = alloc oy; e = alloc oe;
                                  free e;
                                  fork a la(x, y, e); fork b lb(x, y); }
                      fn la(xa, ya, ea) { a = *ya; *xa = ea; use a; }
                      fn lb(xb, yb) { bb = *xb; *yb = bb; }";

    fn explored_under(src: &str, model: MemoryModel) -> Exploration {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let e = explore_under(&prog, model, EnumLimits::default());
        assert!(e.complete, "exploration should finish on litmus programs");
        e
    }

    fn has_kind(e: &Exploration, kind: BugKind) -> bool {
        e.hits.iter().any(|&(k, _, _)| k == kind)
    }

    #[test]
    fn store_buffering_double_free_needs_a_weak_model() {
        let sc = explored_under(SB, MemoryModel::Sc);
        assert!(!has_kind(&sc, BugKind::DoubleFree), "{:?}", sc.hits);
        let tso = explored_under(SB, MemoryModel::Tso);
        assert!(has_kind(&tso, BugKind::DoubleFree), "{:?}", tso.hits);
        let pso = explored_under(SB, MemoryModel::Pso);
        assert!(has_kind(&pso, BugKind::DoubleFree), "{:?}", pso.hits);
    }

    #[test]
    fn message_passing_uaf_needs_pso() {
        let sc = explored_under(MP, MemoryModel::Sc);
        assert!(sc.hits.is_empty(), "{:?}", sc.hits);
        // TSO drains FIFO: the mailbox publish cannot pass the install.
        let tso = explored_under(MP, MemoryModel::Tso);
        assert!(tso.hits.is_empty(), "{:?}", tso.hits);
        let pso = explored_under(MP, MemoryModel::Pso);
        assert!(has_kind(&pso, BugKind::UseAfterFree), "{:?}", pso.hits);
    }

    #[test]
    fn load_buffering_is_unreachable_under_every_model() {
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let e = explored_under(LB, model);
            assert!(e.hits.is_empty(), "{model:?}: {:?}", e.hits);
        }
    }

    #[test]
    fn store_forwarding_keeps_single_threaded_runs_sc_equivalent() {
        // The thread's own load snoops its buffer, so a buffered null
        // is observed even before any flush.
        let src = "fn main() { c = alloc o; n = null; *c = n; r = *c; use r; }";
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let e = explored_under(src, model);
            assert!(has_kind(&e, BugKind::NullDeref), "{model:?}: {:?}", e.hits);
        }
    }

    #[test]
    fn refutes_requires_completeness() {
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let full = explore(&prog, EnumLimits::default());
        assert!(full.complete);
        assert!(!full.refutes(
            BugKind::UseAfterFree,
            prog.free_sites()[0],
            prog.deref_sites()[0]
        ));
        let truncated = explore(&prog, EnumLimits { max_states: 1 });
        assert!(!truncated.complete);
        assert!(!truncated.refutes(
            BugKind::UseAfterFree,
            prog.free_sites()[0],
            prog.deref_sites()[0]
        ));
    }
}
