//! Workload specifications and the Table-1 subject suite.
//!
//! The paper evaluates on twenty open-source C/C++ projects (lrzip …
//! firefox). Those code bases are not available offline, so the
//! benchmark suite substitutes deterministic synthetic projects whose
//! *sizes track the paper's KLoC column* and whose seeded bug and
//! benign-pattern counts match the paper's per-subject report/FP
//! numbers for Canary (Tbl. 1). The claims being reproduced are
//! relative — who times out first, who reports how many warnings — so
//! what matters is that every tool consumes the same inputs and that
//! the inputs exercise the same code paths (escaping heap traffic,
//! fork/join structure, branch-correlated accesses).

/// Parameters for one synthetic concurrent project.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Subject name (for tables).
    pub name: String,
    /// RNG seed; everything else equal, the same seed reproduces the
    /// same program statement for statement.
    pub seed: u64,
    /// Approximate statement budget.
    pub target_stmts: usize,
    /// Worker threads forked from main.
    pub threads: usize,
    /// Shared heap cells passed to the workers.
    pub shared_cells: usize,
    /// Seeded *real* inter-thread use-after-free bugs.
    pub true_bugs: usize,
    /// Seeded benign patterns that value-flow tools report as
    /// use-after-free (uncorrelated-guard protection — see
    /// [`crate::generate`]).
    pub benign_patterns: usize,
    /// Seeded Fig. 2-style contradictory-guard patterns (reported by
    /// the path-insensitive baselines only).
    pub contradiction_patterns: usize,
    /// Seeded wait/notify handshakes protecting a free: refuted only by
    /// tools that model synchronization order (§9); one more false
    /// positive for everything else.
    pub handshake_patterns: usize,
    /// Seeded same-thread use-before-free sequences: connected only by
    /// *flow-insensitive* analysis (Saber), filtered by flow-sensitive
    /// def-use (Fsam) and by the order constraints (Canary). These drive
    /// the Saber ≫ Fsam report-volume gap of Tbl. 1.
    pub order_fp_patterns: usize,
    /// Seeded racy inter-thread double frees: a forked victim loads the
    /// published value and frees it while main frees it unordered.
    pub double_free: usize,
    /// Seeded inter-thread null dereferences: main publishes a null
    /// sentinel into a cell a forked reader dereferences from.
    pub null_deref: usize,
    /// Seeded taint leaks: main publishes a taint source into a cell; a
    /// forked reader passes the loaded value to a sink.
    pub leak: usize,
    /// Seeded same-thread double-locks: main re-acquires a mutex it
    /// already holds.
    pub double_lock: usize,
    /// Seeded conflicting-lock-order pairs: main and a forked partner
    /// acquire two mutexes in opposite orders (deadlock-capable).
    pub conflict_lock: usize,
    /// Seeded store-buffering (Dekker) litmus patterns: two threads
    /// each null a flag then read the sibling's; the double-free fires
    /// only when both stores are delayed past the sibling loads —
    /// reachable under TSO and PSO, refuted by SC enumeration.
    pub sb_patterns: usize,
    /// Seeded message-passing litmus patterns: the writer retires a
    /// pointer, installs a replacement, then publishes the mailbox; the
    /// use-after-free needs the publish to overtake the install —
    /// store→store reordering, reachable under PSO only.
    pub mp_patterns: usize,
    /// Seeded load-buffering negative controls: the cycle closes only
    /// through a load→store reordering no store buffer produces, so the
    /// pattern is unreachable under every supported model (and refuted
    /// by the detector's retained load→store program order).
    pub lb_patterns: usize,
    /// Readers per contradiction pattern — the fan-out of each SMT
    /// query family (all readers of one pattern share a source label,
    /// hence a family). 0 keeps the legacy size-derived fan-out
    /// (`3 + target_stmts / 3000`).
    pub family_fanout: usize,
    /// Fraction (0.0–1.0) of contradiction patterns hardened with
    /// nested lock regions and handshake order structure, driving the
    /// CDCL(T) theory-lemma loop instead of folding at construction.
    /// Hard patterns are emitted first, so hard families cluster
    /// contiguously in family order — the adversarial layout for
    /// contiguous static batching. 0.0 disables hardening.
    pub hard_family_ratio: f64,
    /// Emit the size filler (helper library, `pick` conflation, worker
    /// threads, alias webs, statement filler). Disable for *lean*
    /// workloads small enough for the oracle's exhaustive interleaving
    /// enumeration in the differential tests.
    pub filler: bool,
}

impl WorkloadSpec {
    /// A small default spec for tests.
    pub fn small(seed: u64) -> Self {
        WorkloadSpec {
            name: format!("small-{seed}"),
            seed,
            target_stmts: 300,
            threads: 3,
            shared_cells: 4,
            true_bugs: 2,
            benign_patterns: 1,
            contradiction_patterns: 2,
            handshake_patterns: 1,
            order_fp_patterns: 2,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 0,
            conflict_lock: 0,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: true,
        }
    }

    /// A filler-free spec covering all four checkers, small enough that
    /// `canary_oracle::explore` can exhaustively enumerate its
    /// interleavings. The differential harness replays its seeded
    /// schedules and cross-checks the static reports against the
    /// enumerated ground truth.
    pub fn lean(seed: u64) -> Self {
        WorkloadSpec {
            name: format!("lean-{seed}"),
            seed,
            target_stmts: 0,
            threads: 0,
            shared_cells: 2,
            true_bugs: 1,
            benign_patterns: 0,
            contradiction_patterns: 1,
            handshake_patterns: 1,
            order_fp_patterns: 1,
            double_free: 1,
            null_deref: 1,
            leak: 1,
            double_lock: 0,
            conflict_lock: 0,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: false,
        }
    }

    /// A filler-free spec seeding only the lock-discipline patterns
    /// (double-lock and conflicting-lock-order), small enough for the
    /// oracle's exhaustive interleaving enumeration.
    pub fn lean_locks(seed: u64) -> Self {
        WorkloadSpec {
            name: format!("lean-locks-{seed}"),
            seed,
            target_stmts: 0,
            threads: 0,
            shared_cells: 1,
            true_bugs: 0,
            benign_patterns: 0,
            contradiction_patterns: 0,
            handshake_patterns: 0,
            order_fp_patterns: 0,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 1,
            conflict_lock: 1,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: false,
        }
    }

    /// A filler-free litmus spec for the weak-memory differential
    /// suite: one store-buffering pattern (TSO/PSO-visible), one
    /// message-passing pattern (PSO-visible) and one load-buffering
    /// negative control per workload, plus an ordinary SC-visible
    /// use-after-free on odd seeds so cross-model monotonicity (an SC
    /// bug persists under every weaker model) is exercised alongside
    /// the weak-only certifications.
    pub fn litmus(seed: u64) -> Self {
        WorkloadSpec {
            name: format!("litmus-{seed}"),
            seed,
            target_stmts: 0,
            threads: 0,
            shared_cells: 1,
            true_bugs: (seed % 2) as usize,
            benign_patterns: 0,
            contradiction_patterns: 0,
            handshake_patterns: 0,
            order_fp_patterns: 0,
            double_free: 0,
            null_deref: 0,
            leak: 0,
            double_lock: 0,
            conflict_lock: 0,
            sb_patterns: 1,
            mp_patterns: 1,
            lb_patterns: 1,
            family_fanout: 0,
            hard_family_ratio: 0.0,
            filler: false,
        }
    }

    /// Readers seeded per contradiction pattern — the fan-out of each
    /// SMT query family. `family_fanout` overrides the legacy
    /// size-derived default.
    #[must_use]
    pub fn family_readers(&self) -> usize {
        if self.family_fanout > 0 {
            self.family_fanout
        } else {
            3 + self.target_stmts / 3000
        }
    }

    /// Number of leading contradiction patterns hardened by
    /// `hard_family_ratio` (rounded, clamped to the pattern count).
    #[must_use]
    pub fn hard_contradictions(&self) -> usize {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let n = (self.contradiction_patterns as f64 * self.hard_family_ratio.clamp(0.0, 1.0))
            .round() as usize;
        n.min(self.contradiction_patterns)
    }
}

/// One row of the paper's Tbl. 1.
#[derive(Clone, Debug)]
pub struct SubjectRow {
    /// Project name.
    pub name: &'static str,
    /// Size in KLoC as reported by the paper.
    pub kloc: u32,
    /// Canary's `#Reports` column.
    pub canary_reports: u32,
    /// Canary's `#FP` column.
    pub canary_fp: u32,
}

/// The twenty subjects of Tbl. 1 (name, KLoC, Canary #Reports, #FP).
pub const TABLE1_SUBJECTS: [SubjectRow; 20] = [
    SubjectRow { name: "lrzip", kloc: 16, canary_reports: 2, canary_fp: 0 },
    SubjectRow { name: "lwan", kloc: 20, canary_reports: 1, canary_fp: 0 },
    SubjectRow { name: "leveldb", kloc: 21, canary_reports: 1, canary_fp: 1 },
    SubjectRow { name: "darknet", kloc: 29, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "coturn", kloc: 39, canary_reports: 2, canary_fp: 0 },
    SubjectRow { name: "httrack", kloc: 49, canary_reports: 1, canary_fp: 1 },
    SubjectRow { name: "finedb", kloc: 51, canary_reports: 1, canary_fp: 0 },
    SubjectRow { name: "tcpdump", kloc: 85, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "transmission", kloc: 88, canary_reports: 2, canary_fp: 0 },
    SubjectRow { name: "celix", kloc: 107, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "redis", kloc: 219, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "git", kloc: 239, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "zfs", kloc: 367, canary_reports: 1, canary_fp: 0 },
    SubjectRow { name: "HP-Socket", kloc: 426, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "openssl", kloc: 451, canary_reports: 1, canary_fp: 1 },
    SubjectRow { name: "poco", kloc: 705, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "mariadb", kloc: 1751, canary_reports: 1, canary_fp: 0 },
    SubjectRow { name: "ffmpeg", kloc: 2003, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "mysql", kloc: 3118, canary_reports: 0, canary_fp: 0 },
    SubjectRow { name: "firefox", kloc: 8938, canary_reports: 2, canary_fp: 1 },
];

/// How the suite is scaled to the machine at hand.
#[derive(Clone, Copy, Debug)]
pub struct SuiteScale {
    /// Statements generated per paper-KLoC. The paper's subjects span
    /// 16–8938 KLoC; at the default 8 stmts/KLoC the suite spans about
    /// 0.3k–72k statements — laptop-sized while preserving the 1:560
    /// size ratio that drives the Fig. 7 timeout pattern.
    pub stmts_per_kloc: f64,
    /// Lower bound so tiny subjects still exercise the pipeline.
    pub min_stmts: usize,
    /// Upper bound to keep the largest subjects tractable in CI.
    pub max_stmts: usize,
}

impl Default for SuiteScale {
    fn default() -> Self {
        SuiteScale {
            stmts_per_kloc: 8.0,
            min_stmts: 240,
            max_stmts: 80_000,
        }
    }
}

/// Builds the 20-subject suite at the given scale. Seeded bug counts
/// follow the paper's Tbl. 1: `true_bugs = reports − fp`,
/// `benign = fp`; contradiction patterns grow mildly with size so the
/// baselines' report counts dwarf Canary's, as in the paper.
pub fn table1_suite(scale: SuiteScale) -> Vec<WorkloadSpec> {
    TABLE1_SUBJECTS
        .iter()
        .enumerate()
        .map(|(i, row)| {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let stmts = ((f64::from(row.kloc) * scale.stmts_per_kloc) as usize)
                .clamp(scale.min_stmts, scale.max_stmts);
            WorkloadSpec {
                name: row.name.to_string(),
                seed: 0xCA_4A_12 + i as u64,
                target_stmts: stmts,
                threads: 2 + (i % 4),
                shared_cells: 3 + (i % 5),
                true_bugs: (row.canary_reports - row.canary_fp) as usize,
                benign_patterns: row.canary_fp as usize,
                contradiction_patterns: 2 + (stmts / 2000),
                handshake_patterns: 1 + (stmts / 8000),
                order_fp_patterns: 4 + (stmts / 1500),
                double_free: 0,
                null_deref: 0,
                leak: 0,
                double_lock: 0,
                conflict_lock: 0,
                sb_patterns: 0,
                mp_patterns: 0,
                lb_patterns: 0,
                family_fanout: 0,
                hard_family_ratio: 0.0,
                filler: true,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_subjects_in_size_order() {
        let suite = table1_suite(SuiteScale::default());
        assert_eq!(suite.len(), 20);
        for w in suite.windows(2) {
            assert!(w[0].target_stmts <= w[1].target_stmts);
        }
    }

    #[test]
    fn bug_counts_follow_table1() {
        let suite = table1_suite(SuiteScale::default());
        let total_reports: usize = suite
            .iter()
            .map(|s| s.true_bugs + s.benign_patterns)
            .sum();
        let total_fp: usize = suite.iter().map(|s| s.benign_patterns).sum();
        // Tbl. 1: 15 reports, 4 FP (26.67 % FP rate).
        assert_eq!(total_reports, 15);
        assert_eq!(total_fp, 4);
    }

    #[test]
    fn scale_clamps_sizes() {
        let scale = SuiteScale {
            stmts_per_kloc: 8.0,
            min_stmts: 500,
            max_stmts: 1000,
        };
        for s in table1_suite(scale) {
            assert!((500..=1000).contains(&s.target_stmts));
        }
    }
}
