//! # canary-workloads
//!
//! Deterministic synthetic concurrent programs standing in for the
//! paper's twenty open-source subjects (§7, Tbl. 1). See `DESIGN.md`
//! for the substitution argument; in short, the evaluation's claims are
//! *relative* (scalability ordering, timeout onsets, report volumes),
//! so a generator whose programs have the same structural ingredients —
//! escaping heap traffic, fork/join concurrency, branch-correlated
//! accesses, seeded true bugs and benign look-alikes — exercises the
//! same code paths in Canary and in the baselines.
//!
//! # Examples
//!
//! ```
//! use canary_workloads::{generate, WorkloadSpec};
//!
//! let w = generate(&WorkloadSpec::small(7));
//! w.prog.validate()?;
//! assert_eq!(w.truth.uaf_bugs.len(), 2);
//! # Ok::<(), canary_ir::ValidationError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod confirm;
pub mod generator;
pub mod spec;

pub use confirm::{
    confirm_ground_truth, confirm_ground_truth_under, confirm_seeded, confirm_seeded_under,
};
pub use generator::{evaluate, generate, Eval, GroundTruth, SeededBug, Workload};
pub use spec::{table1_suite, SubjectRow, SuiteScale, WorkloadSpec, TABLE1_SUBJECTS};

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::Label;

    #[test]
    fn generated_program_validates() {
        let w = generate(&WorkloadSpec::small(1));
        w.prog.validate().unwrap();
        assert!(w.prog.stmt_count() >= 250);
        assert!(w.prog.threads.len() > 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&WorkloadSpec::small(42));
        let b = generate(&WorkloadSpec::small(42));
        assert_eq!(a.prog, b.prog);
        assert_eq!(a.truth.uaf_bugs, b.truth.uaf_bugs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadSpec::small(1));
        let b = generate(&WorkloadSpec::small(2));
        assert_ne!(a.prog, b.prog);
    }

    #[test]
    fn ground_truth_labels_point_at_free_and_deref() {
        let w = generate(&WorkloadSpec::small(3));
        for &(free, deref) in &w.truth.uaf_bugs {
            assert!(matches!(
                w.prog.inst(free),
                canary_ir::Inst::Free { .. }
            ));
            assert!(matches!(
                w.prog.inst(deref),
                canary_ir::Inst::Deref { .. }
            ));
        }
        for &(free, deref) in &w.truth.benign {
            assert!(matches!(w.prog.inst(free), canary_ir::Inst::Free { .. }));
            assert!(matches!(w.prog.inst(deref), canary_ir::Inst::Deref { .. }));
        }
    }

    #[test]
    fn target_size_roughly_met() {
        let spec = WorkloadSpec {
            target_stmts: 2000,
            ..WorkloadSpec::small(9)
        };
        let w = generate(&spec);
        let n = w.prog.stmt_count();
        assert!((1500..=4000).contains(&n), "{n}");
    }

    #[test]
    fn evaluate_scores_reports() {
        let truth = GroundTruth {
            uaf_bugs: vec![(Label::new(1), Label::new(2))],
            benign: vec![(Label::new(3), Label::new(4))],
            infeasible_patterns: 1,
            seeded: Vec::new(),
        };
        let eval = evaluate(
            &truth,
            &[
                (Label::new(1), Label::new(2)), // TP
                (Label::new(3), Label::new(4)), // FP (benign)
                (Label::new(9), Label::new(9)), // FP (noise)
                (Label::new(1), Label::new(2)), // duplicate TP → not counted twice
            ],
        );
        assert_eq!(eval.true_positives, 1);
        // The duplicate TP is ignored; the two non-matching reports are
        // false positives.
        assert_eq!(eval.false_positives, 2);
        assert_eq!(eval.missed, 0);
        assert!((eval.fp_rate() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fp_rate_zero_when_no_reports() {
        let eval = Eval::default();
        assert_eq!(eval.fp_rate(), 0.0);
    }

    #[test]
    fn handshake_patterns_are_fp_only_without_sync_constraints() {
        use canary_core::{Canary, CanaryConfig};
        use canary_detect::{BugKind, DetectOptions};

        let spec = WorkloadSpec {
            true_bugs: 0,
            benign_patterns: 0,
            contradiction_patterns: 0,
            handshake_patterns: 2,
            ..WorkloadSpec::small(17)
        };
        let w = generate(&spec);
        let mk = |sync: bool| {
            Canary::with_config(CanaryConfig {
                checkers: vec![BugKind::UseAfterFree],
                detect: DetectOptions {
                    inter_thread_only: true,
                    sync_constraints: sync,
                    ..DetectOptions::default()
                },
                ..CanaryConfig::default()
            })
        };
        let with_sync = mk(true).analyze(&w.prog);
        assert!(
            with_sync.reports.is_empty(),
            "wait/notify order refutes the handshake frees: {:?}",
            with_sync.reports
        );
        let without_sync = mk(false).analyze(&w.prog);
        assert_eq!(
            without_sync.reports.len(),
            2,
            "without §9 constraints each handshake is a false positive"
        );
    }

    #[test]
    fn canary_finds_exactly_the_seeded_bugs_plus_benign() {
        use canary_core::{Canary, CanaryConfig};
        use canary_detect::{BugKind, DetectOptions};

        let w = generate(&WorkloadSpec::small(11));
        let config = CanaryConfig {
            checkers: vec![BugKind::UseAfterFree],
            detect: DetectOptions {
                inter_thread_only: true,
                ..DetectOptions::default()
            },
            ..CanaryConfig::default()
        };
        let outcome = Canary::with_config(config).analyze(&w.prog);
        let pairs: Vec<(Label, Label)> =
            outcome.reports.iter().map(|r| (r.source, r.sink)).collect();
        let eval = evaluate(&w.truth, &pairs);
        assert_eq!(eval.missed, 0, "all seeded bugs found: {pairs:?}");
        assert_eq!(
            eval.true_positives,
            w.truth.uaf_bugs.len(),
            "{pairs:?}"
        );
        // The only false positives are the benign patterns; every
        // contradiction/join-ordered pattern is refuted.
        assert_eq!(
            eval.false_positives,
            w.truth.benign.len(),
            "reports: {pairs:?}, truth: {:?}",
            w.truth
        );
    }
}
