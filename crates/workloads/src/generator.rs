//! The deterministic synthetic-project generator.
//!
//! Each workload is a bounded concurrent program with:
//!
//! * a `main` thread allocating shared cells, forking workers, joining
//!   some of them — the fork/join skeleton Alg. 2 and the MHP analysis
//!   feed on;
//! * worker threads mixing private heap traffic, branch-guarded shared
//!   loads/stores, and calls into a helper library (exercising Alg. 1's
//!   summaries);
//! * statement *filler* (copies, binops, private cells, branches) that
//!   scales the program to the target size without touching the seeded
//!   patterns — filler never calls `free`, so ground truth stays exact;
//! * seeded patterns on dedicated cells:
//!   1. **true bugs** — a racy inter-thread use-after-free (the free
//!      and the dereference may interleave);
//!   2. **benign patterns** — the same race "protected" by two branch
//!      conditions that are correlated in the imagined real program but
//!      appear as independent atoms to any static tool; every
//!      value-flow checker (Canary included) reports these, which is
//!      precisely the paper's residual false-positive class;
//!   3. **contradiction patterns** — the Fig. 2 shape (`θ` vs `¬θ`):
//!      reported by path-insensitive tools, refuted by Canary;
//!      alternated with join-ordered frees that only order-aware tools
//!      can dismiss.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use canary_detect::{BugKind, MemoryModel};
use canary_ir::{CondExpr, FuncBody, FuncId, Label, Program, ProgramBuilder, VarId};

use crate::spec::WorkloadSpec;

/// One seeded bug together with a concrete schedule that makes it fire
/// in the oracle interpreter. The schedule lists the pattern's own
/// events in a bug-exhibiting order; everything else in the program is
/// unconstrained (the replayer free-runs it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeededBug {
    /// The checker the bug belongs to.
    pub kind: BugKind,
    /// Source label: the free (first free for double-free), the null
    /// assignment, or the taint source.
    pub source: Label,
    /// Sink label: the dereference, second free, or taint sink.
    pub sink: Label,
    /// Replayable witness schedule for `canary_oracle::replay` (under
    /// a weak model, store slots name flush points — see
    /// `canary_oracle::replay_under`).
    pub schedule: Vec<Label>,
    /// The memory models the bug is concretely reachable under. Most
    /// seeds list all three (an SC execution is also a TSO and a PSO
    /// execution); the weak-memory litmus seeds list only the models
    /// whose store buffers realize them.
    pub models: Vec<MemoryModel>,
}

impl SeededBug {
    /// Whether the bug is concretely reachable under `model`.
    pub fn visible_under(&self, model: MemoryModel) -> bool {
        self.models.contains(&model)
    }
}

/// All three supported memory models — the visibility set of an
/// ordinary (SC-reachable) seeded bug.
fn all_models() -> Vec<MemoryModel> {
    vec![MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso]
}

/// Ground truth for one generated workload.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Seeded real inter-thread UAFs as (free, deref) label pairs.
    pub uaf_bugs: Vec<(Label, Label)>,
    /// Seeded benign patterns as (free, deref) label pairs — reports
    /// matching these are false positives.
    pub benign: Vec<(Label, Label)>,
    /// Number of contradiction/ordered patterns seeded (baseline-only
    /// false positives; no label pair is a real bug).
    pub infeasible_patterns: usize,
    /// Every seeded real bug — the UAFs of `uaf_bugs` plus the
    /// double-free / null-deref / leak / double-lock / conflict-lock
    /// patterns — with an oracle schedule certifying it is concretely
    /// reachable.
    pub seeded: Vec<SeededBug>,
}

/// A generated workload.
#[derive(Debug)]
pub struct Workload {
    /// The bounded concurrent program.
    pub prog: Program,
    /// What was seeded where.
    pub truth: GroundTruth,
}

/// Precision outcome of matching a tool's reports against ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Eval {
    /// Reports matching a seeded real bug.
    pub true_positives: usize,
    /// Reports matching nothing real (benign patterns, contradiction
    /// patterns or filler noise).
    pub false_positives: usize,
    /// Seeded real bugs no report matched.
    pub missed: usize,
}

impl Eval {
    /// False-positive rate in percent (0 when no reports).
    pub fn fp_rate(&self) -> f64 {
        let total = self.true_positives + self.false_positives;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.false_positives as f64 / total as f64 * 100.0
            }
        }
    }
}

/// Scores (source, sink) report pairs against the truth.
pub fn evaluate(truth: &GroundTruth, reports: &[(Label, Label)]) -> Eval {
    let mut seen_bugs = vec![false; truth.uaf_bugs.len()];
    let mut eval = Eval::default();
    for &(src, sink) in reports {
        if let Some(i) = truth
            .uaf_bugs
            .iter()
            .position(|&(f, d)| f == src && d == sink)
        {
            if !seen_bugs[i] {
                seen_bugs[i] = true;
                eval.true_positives += 1;
            }
        } else {
            eval.false_positives += 1;
        }
    }
    eval.missed = seen_bugs.iter().filter(|&&b| !b).count();
    eval
}

/// Generates a workload from a spec. Deterministic in the seed.
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new();
    let mut truth = GroundTruth::default();

    // --- declare functions up front so names resolve ----------------
    let main = b.func("main", &[]);
    let workers: Vec<FuncId> = if spec.filler {
        (0..spec.threads)
            .map(|i| b.func(&format!("worker_{i}"), &["ca", "cb"]))
            .collect()
    } else {
        Vec::new()
    };
    let pick: Option<FuncId> = if spec.filler {
        Some(b.func("pick", &["pa", "pb"]))
    } else {
        None
    };
    let n_helpers = 2 + spec.threads;
    let helpers: Vec<FuncId> = if spec.filler {
        (0..n_helpers)
            .map(|i| b.func(&format!("helper_{i}"), &["p"]))
            .collect()
    } else {
        Vec::new()
    };
    let victims: Vec<FuncId> = (0..spec.true_bugs)
        .map(|i| b.func(&format!("bug_victim_{i}"), &["c"]))
        .collect();
    let benign_victims: Vec<FuncId> = (0..spec.benign_patterns)
        .map(|i| b.func(&format!("benign_victim_{i}"), &["c"]))
        .collect();
    let hard_count = spec.hard_contradictions();
    let hard_users: Vec<FuncId> = (0..hard_count)
        .map(|i| b.func(&format!("hard_user_{i}"), &["c", "cv"]))
        .collect();
    let contra_writers: Vec<FuncId> = (hard_count..spec.contradiction_patterns)
        .map(|i| b.func(&format!("contra_writer_{i}"), &["y"]))
        .collect();
    let handshakers: Vec<FuncId> = (0..spec.handshake_patterns)
        .map(|i| b.func(&format!("hs_user_{i}"), &["c", "cv"]))
        .collect();
    let order_fps: Vec<FuncId> = (0..spec.order_fp_patterns)
        .map(|i| b.func(&format!("ofp_{i}"), &[]))
        .collect();
    let df_victims: Vec<FuncId> = (0..spec.double_free)
        .map(|i| b.func(&format!("df_victim_{i}"), &["c"]))
        .collect();
    let np_victims: Vec<FuncId> = (0..spec.null_deref)
        .map(|i| b.func(&format!("np_victim_{i}"), &["c"]))
        .collect();
    let lk_victims: Vec<FuncId> = (0..spec.leak)
        .map(|i| b.func(&format!("lk_victim_{i}"), &["c"]))
        .collect();
    let cl_partners: Vec<FuncId> = (0..spec.conflict_lock)
        .map(|i| b.func(&format!("cl_partner_{i}"), &["x", "y"]))
        .collect();
    let sb_pairs: Vec<(FuncId, FuncId)> = (0..spec.sb_patterns)
        .map(|i| {
            (
                b.func(&format!("sb_a_{i}"), &["w", "r"]),
                b.func(&format!("sb_b_{i}"), &["w", "r"]),
            )
        })
        .collect();
    let mp_pairs: Vec<(FuncId, FuncId)> = (0..spec.mp_patterns)
        .map(|i| {
            (
                b.func(&format!("mp_w_{i}"), &["b", "s", "e"]),
                b.func(&format!("mp_r_{i}"), &["s"]),
            )
        })
        .collect();
    let lb_pairs: Vec<(FuncId, FuncId)> = (0..spec.lb_patterns)
        .map(|i| {
            (
                b.func(&format!("lb_a_{i}"), &["x", "y", "e"]),
                b.func(&format!("lb_b_{i}"), &["x", "y"]),
            )
        })
        .collect();

    // --- helper library ---------------------------------------------
    for (i, &h) in helpers.iter().enumerate() {
        let mut f = b.body(h);
        let p = f.var("p");
        let local = f.alloc(&format!("hl_{i}"), &format!("hobj_{i}"));
        f.store(p, local);
        let back = f.load(&format!("hr_{i}"), p);
        f.deref(back);
        if i + 1 < n_helpers {
            f.call(&[], &format!("helper_{}", i + 1), &[p]);
        }
        f.ret(&[back]);
    }

    // --- the `pick` conflation helper ---------------------------------
    // Returns one of its two pointer arguments. Context-insensitive
    // analyses merge the returned handle over *all* call sites, so every
    // worker's web cells conflate into one alias class — the cascade
    // that makes exhaustive points-to blow up on large programs.
    // Canary's per-call-site summary substitution keeps them separate.
    if let Some(pick) = pick {
        let mut f = b.body(pick);
        let pa = f.var("pa");
        let pb = f.var("pb");
        let c = f.cond("pick_c");
        f.if_then(CondExpr::atom(c), |f| {
            f.ret(&[pa]);
        });
        f.ret(&[pb]);
    }

    // --- victims -----------------------------------------------------
    let mut uaf_loads: Vec<Label> = Vec::new();
    for (i, &v) in victims.iter().enumerate() {
        let mut f = b.body(v);
        let c = f.var("c");
        let x = f.load(&format!("bx_{i}"), c);
        uaf_loads.push(f.last_label());
        let use_label = f.deref(x);
        truth.uaf_bugs.push((Label::new(0), use_label)); // free patched below
    }
    // Double-free victims: load the published value and free it — the
    // second (racy) free happens in main. (load, victim free) pairs.
    let mut df_partial: Vec<(Label, Label)> = Vec::new();
    for (i, &v) in df_victims.iter().enumerate() {
        let mut f = b.body(v);
        let c = f.var("c");
        let x = f.load(&format!("dfx_{i}"), c);
        let load_l = f.last_label();
        let free_l = f.free(x);
        df_partial.push((load_l, free_l));
    }
    // Null-deref victims: plain readers of a cell main nulls out after
    // forking them. (load, deref) pairs.
    let mut np_partial: Vec<(Label, Label)> = Vec::new();
    for (i, &v) in np_victims.iter().enumerate() {
        let mut f = b.body(v);
        let c = f.var("c");
        let x = f.load(&format!("npx_{i}"), c);
        let load_l = f.last_label();
        let deref_l = f.deref(x);
        np_partial.push((load_l, deref_l));
    }
    // Leak victims: pass the loaded value to a sink. (load, sink) pairs.
    let mut lk_partial: Vec<(Label, Label)> = Vec::new();
    for (i, &v) in lk_victims.iter().enumerate() {
        let mut f = b.body(v);
        let c = f.var("c");
        let x = f.load(&format!("lkx_{i}"), c);
        let load_l = f.last_label();
        let sink_l = f.taint_sink(x);
        lk_partial.push((load_l, sink_l));
    }
    // Conflict-lock partners: acquire the two mutexes in the *opposite*
    // order from main (y before x). (outer, inner) acquisition pairs;
    // partner bodies precede main, so their labels sort first.
    let mut cl_partial: Vec<(Label, Label)> = Vec::new();
    for &v in &cl_partners {
        let mut f = b.body(v);
        let x = f.var("x");
        let y = f.var("y");
        let outer = f.lock(y);
        let inner = f.lock(x);
        f.unlock(x);
        f.unlock(y);
        cl_partial.push((outer, inner));
    }
    // Store-buffering sides: null own flag, read the sibling's, free
    // what was read. (store, load, free) label triples per side.
    let mut sb_partial: Vec<[Label; 6]> = Vec::new();
    for (i, &(va, vb)) in sb_pairs.iter().enumerate() {
        let mut sides = [Label::new(0); 6];
        for (side, &v) in [va, vb].iter().enumerate() {
            let mut f = b.body(v);
            let w = f.var("w");
            let r = f.var("r");
            let n = f.null(&format!("sbn_{i}_{side}"));
            f.store(w, n);
            sides[3 * side] = f.last_label();
            let x = f.load(&format!("sbr_{i}_{side}"), r);
            sides[3 * side + 1] = f.last_label();
            sides[3 * side + 2] = f.free(x);
        }
        sb_partial.push(sides);
    }
    // Message-passing writer/reader: the writer retires the published
    // pointer, installs a replacement (W1), then publishes the mailbox
    // (W2); the reader chases mailbox → cell → use.
    // (free, W1, W2, load-mailbox, load-cell, use) label tuples.
    let mut mp_partial: Vec<[Label; 6]> = Vec::new();
    for (i, &(vw, vr)) in mp_pairs.iter().enumerate() {
        let mut f = b.body(vw);
        let cell = f.var("b");
        let mailbox = f.var("s");
        let doomed = f.var("e");
        let free_l = f.free(doomed);
        let fresh = f.alloc(&format!("mpg_{i}"), &format!("mpg_o_{i}"));
        f.store(cell, fresh);
        let w1 = f.last_label();
        f.store(mailbox, cell);
        let w2 = f.last_label();
        let mut f = b.body(vr);
        let mailbox = f.var("s");
        let q = f.load(&format!("mpq_{i}"), mailbox);
        let lq = f.last_label();
        let p = f.load(&format!("mpp_{i}"), q);
        let lp = f.last_label();
        let use_l = f.deref(p);
        mp_partial.push([free_l, w1, w2, lq, lp, use_l]);
    }
    // Load-buffering sides: read first, then store — the freed pointer
    // could only come back through a load→store reordering, which store
    // buffers never produce. No SeededBug: unreachable everywhere.
    for (i, &(va, vb)) in lb_pairs.iter().enumerate() {
        let mut f = b.body(va);
        let x = f.var("x");
        let y = f.var("y");
        let e = f.var("e");
        let a = f.load(&format!("lba_{i}"), y);
        f.store(x, e);
        f.deref(a);
        let mut f = b.body(vb);
        let x = f.var("x");
        let y = f.var("y");
        let bb = f.load(&format!("lbb_{i}"), x);
        f.store(y, bb);
    }
    for (i, &v) in benign_victims.iter().enumerate() {
        let mut f = b.body(v);
        let c = f.var("c");
        let guard = f.cond(&format!("benign_use_{i}"));
        let mut use_label = None;
        f.if_then(CondExpr::atom(guard), |f| {
            let x = f.load(&format!("nx_{i}"), c);
            use_label = Some(f.deref(x));
        });
        truth
            .benign
            .push((Label::new(0), use_label.expect("branch body ran")));
    }
    // Hard-family users: a fan-out of uses, each one member of the
    // free's query family, followed by a quorum of notify sites. The
    // free in `main` only runs after two waits on `cv`, and every
    // notify postdates every use, so each member is infeasible — but
    // the refutation lives in the order theory (wait-requires-notify
    // disjunctions), out of the prefilter's reach: the solver must
    // fail every notify disjunct of every wait before concluding
    // Unsat. Work per member scales with the notify quorum, making
    // these the §5.2 hard-query class that drives cube escalation.
    let fanout = spec.family_readers();
    for (i, &h) in hard_users.iter().enumerate() {
        let mut f = b.body(h);
        let c = f.var("c");
        let cv = f.var("cv");
        for r in 0..fanout {
            let x = f.load(&format!("hfx_{i}_{r}"), c);
            f.deref(x);
        }
        for _ in 0..fanout.max(2) {
            f.notify(cv);
        }
        truth.infeasible_patterns += 1;
    }
    for (i, &w) in (hard_count..).zip(contra_writers.iter()) {
        let mut f = b.body(w);
        let y = f.var("y");
        let theta = f.cond(&format!("theta_{i}"));
        if i % 2 == 0 {
            // Fig. 2 shape: store+free under ¬θ, read under θ (in main).
            f.if_then(CondExpr::not_atom(theta), |f| {
                let bv = f.alloc(&format!("cb_{i}"), &format!("cobj_{i}"));
                f.store(y, bv);
                f.free(bv);
            });
        } else {
            // Join-ordered shape: the writer only *uses* the initial
            // value; main frees it after joining, so the use always
            // precedes the free.
            let x = f.load(&format!("cx_{i}"), y);
            f.deref(x);
        }
        truth.infeasible_patterns += 1;
    }

    // --- same-thread use-before-free bodies ----------------------------
    for (i, &o) in order_fps.iter().enumerate() {
        let mut f = b.body(o);
        let cell = f.alloc(&format!("ocell_{i}"), &format!("ocell_o_{i}"));
        let early = f.alloc(&format!("oinit_{i}"), &format!("oval_{i}"));
        f.store(cell, early);
        let x = f.load(&format!("ox_{i}"), cell);
        f.deref(x);
        let doomed = f.alloc(&format!("odoom_{i}"), &format!("odobj_{i}"));
        f.store(cell, doomed);
        f.free(doomed);
        f.ret(&[]);
    }

    // --- handshake users: use the value, then signal completion --------
    for (i, &h) in handshakers.iter().enumerate() {
        let mut f = b.body(h);
        let c = f.var("c");
        let cv = f.var("cv");
        let x = f.load(&format!("hx_{i}"), c);
        f.deref(x);
        f.notify(cv);
    }

    // --- main's filler chunks -----------------------------------------
    const MAIN_CHUNK: usize = 96;
    let main_budget = spec.target_stmts / (spec.threads + 1);
    let n_main_chunks = if spec.filler {
        (main_budget / MAIN_CHUNK).max(1)
    } else {
        0
    };
    let main_chunks: Vec<FuncId> = (0..n_main_chunks)
        .map(|k| b.func(&format!("m_chunk_{k}"), &[]))
        .collect();
    for (k, &cf) in main_chunks.iter().enumerate() {
        let mut f = b.body(cf);
        emit_alias_web(&mut f, 9_000_000 + k, MAIN_CHUNK / 2);
        emit_filler(&mut f, &mut rng, &format!("m{k}"), MAIN_CHUNK / 2);
        f.ret(&[]);
    }

    // --- main --------------------------------------------------------
    let mut f = b.body(main);
    // Shared cells + initial values.
    let cells: Vec<VarId> = (0..spec.shared_cells)
        .map(|i| f.alloc(&format!("cell_{i}"), &format!("shared_{i}")))
        .collect();
    for (i, &c) in cells.iter().enumerate() {
        let v = f.alloc(&format!("init_{i}"), &format!("val_{i}"));
        f.store(c, v);
    }
    // Seeded true bugs: dedicated cells, racy free in main.
    let mut pending_frees: Vec<(usize, VarId)> = Vec::new();
    for i in 0..spec.true_bugs {
        let cell = f.alloc(&format!("bugcell_{i}"), &format!("bugcell_o_{i}"));
        let val = f.alloc(&format!("bugval_{i}"), &format!("bugobj_{i}"));
        f.store(cell, val);
        f.fork(&format!("bt_{i}"), &format!("bug_victim_{i}"), &[cell]);
        pending_frees.push((i, val));
    }
    for (i, val) in pending_frees {
        let free_label = f.free(val);
        truth.uaf_bugs[i].0 = free_label;
        truth.seeded.push(SeededBug {
            kind: BugKind::UseAfterFree,
            source: free_label,
            sink: truth.uaf_bugs[i].1,
            schedule: vec![uaf_loads[i], free_label, truth.uaf_bugs[i].1],
            models: all_models(),
        });
    }
    // Racy double frees: the victim's free and main's free of the same
    // value are unordered. Victim bodies precede main, so the pair is
    // already normalized source < sink.
    for (i, &(load_l, victim_free)) in df_partial.iter().enumerate() {
        let cell = f.alloc(&format!("dfcell_{i}"), &format!("dfcell_o_{i}"));
        let val = f.alloc(&format!("dfval_{i}"), &format!("dfobj_{i}"));
        f.store(cell, val);
        f.fork(&format!("dft_{i}"), &format!("df_victim_{i}"), &[cell]);
        let main_free = f.free(val);
        truth.seeded.push(SeededBug {
            kind: BugKind::DoubleFree,
            source: victim_free,
            sink: main_free,
            schedule: vec![load_l, victim_free, main_free],
            models: all_models(),
        });
    }
    // Null publications racing a forked reader.
    for (i, &(load_l, deref_l)) in np_partial.iter().enumerate() {
        let cell = f.alloc(&format!("npcell_{i}"), &format!("npcell_o_{i}"));
        let val = f.alloc(&format!("npinit_{i}"), &format!("npval_{i}"));
        f.store(cell, val);
        f.fork(&format!("npt_{i}"), &format!("np_victim_{i}"), &[cell]);
        let n = f.null(&format!("npnull_{i}"));
        let null_l = f.last_label();
        f.store(cell, n);
        let store_l = f.last_label();
        truth.seeded.push(SeededBug {
            kind: BugKind::NullDeref,
            source: null_l,
            sink: deref_l,
            schedule: vec![null_l, store_l, load_l, deref_l],
            models: all_models(),
        });
    }
    // Taint published into a cell a forked reader sinks from.
    for (i, &(load_l, sink_l)) in lk_partial.iter().enumerate() {
        let cell = f.alloc(&format!("lkcell_{i}"), &format!("lkcell_o_{i}"));
        let s = f.taint_source(&format!("lksrc_{i}"));
        let taint_l = f.last_label();
        f.store(cell, s);
        let store_l = f.last_label();
        f.fork(&format!("lkt_{i}"), &format!("lk_victim_{i}"), &[cell]);
        truth.seeded.push(SeededBug {
            kind: BugKind::DataLeak,
            source: taint_l,
            sink: sink_l,
            schedule: vec![taint_l, store_l, load_l, sink_l],
            models: all_models(),
        });
    }
    // Same-thread double-locks: main re-acquires a mutex it still
    // holds. The oracle reports the re-acquisition and continues, so
    // the rest of the program is unaffected.
    for i in 0..spec.double_lock {
        let mu = f.alloc(&format!("dlmu_{i}"), &format!("dlmu_o_{i}"));
        let first = f.lock(mu);
        let second = f.lock(mu);
        f.unlock(mu);
        truth.seeded.push(SeededBug {
            kind: BugKind::DoubleLock,
            source: first,
            sink: second,
            schedule: vec![first, second],
            models: all_models(),
        });
    }
    // Conflicting acquisition orders: main takes a then b while the
    // forked partner takes b then a. Replaying outer-outer-inner-inner
    // drives both threads into the blocked cycle; the (source, sink)
    // pair is the sorted pair of inner (blocking) acquisitions.
    for (i, &(p_outer, p_inner)) in cl_partial.iter().enumerate() {
        let ma = f.alloc(&format!("clma_{i}"), &format!("clma_o_{i}"));
        let mb = f.alloc(&format!("clmb_{i}"), &format!("clmb_o_{i}"));
        f.fork(&format!("clt_{i}"), &format!("cl_partner_{i}"), &[ma, mb]);
        let m_outer = f.lock(ma);
        let m_inner = f.lock(mb);
        f.unlock(mb);
        f.unlock(ma);
        let source = p_inner.min(m_inner);
        let sink = p_inner.max(m_inner);
        truth.seeded.push(SeededBug {
            kind: BugKind::ConflictLock,
            source,
            sink,
            schedule: vec![p_outer.min(m_outer), p_outer.max(m_outer), source, sink],
            models: all_models(),
        });
    }
    // Store-buffering litmus: both flags start at the victim pointer;
    // each side nulls one flag then reads the other. Both frees act —
    // a double-free — only when both stores are still buffered as the
    // sibling loads run, so the ground-truth schedule places the store
    // slots (= flush points under a weak replay) after both loads.
    for (i, &[store_a, load_a, free_a, store_b, load_b, free_b]) in
        sb_partial.iter().enumerate()
    {
        let flag_x = f.alloc(&format!("sbx_{i}"), &format!("sbx_o_{i}"));
        let flag_y = f.alloc(&format!("sby_{i}"), &format!("sby_o_{i}"));
        let victim = f.alloc(&format!("sbp_{i}"), &format!("sbp_o_{i}"));
        f.store(flag_x, victim);
        f.store(flag_y, victim);
        f.fork(&format!("sbta_{i}"), &format!("sb_a_{i}"), &[flag_x, flag_y]);
        f.fork(&format!("sbtb_{i}"), &format!("sb_b_{i}"), &[flag_y, flag_x]);
        truth.seeded.push(SeededBug {
            kind: BugKind::DoubleFree,
            source: free_a.min(free_b),
            sink: free_a.max(free_b),
            schedule: vec![load_a, load_b, store_a, store_b],
            models: vec![MemoryModel::Tso, MemoryModel::Pso],
        });
    }
    // Message-passing litmus: the use-after-free needs the mailbox
    // publish (W2) visible before the reader's loads while the install
    // (W1) is still buffered — PSO's per-location drain order only.
    for (i, &[free_l, w1, w2, lq, lp, use_l]) in mp_partial.iter().enumerate() {
        let cell = f.alloc(&format!("mpb_{i}"), &format!("mpb_o_{i}"));
        let mailbox = f.alloc(&format!("mps_{i}"), &format!("mps_o_{i}"));
        let doomed = f.alloc(&format!("mpe_{i}"), &format!("mpe_o_{i}"));
        f.store(cell, doomed);
        f.fork(
            &format!("mptw_{i}"),
            &format!("mp_w_{i}"),
            &[cell, mailbox, doomed],
        );
        f.fork(&format!("mptr_{i}"), &format!("mp_r_{i}"), &[mailbox]);
        truth.seeded.push(SeededBug {
            kind: BugKind::UseAfterFree,
            source: free_l,
            sink: use_l,
            schedule: vec![w2, lq, lp, w1],
            models: vec![MemoryModel::Pso],
        });
    }
    // Load-buffering negative controls: free the bait up front, then
    // let the two threads race. The bait can only reach the deref via
    // a load→store reordering, so no interleaving of any supported
    // model fires it — one more infeasible pattern for the detector
    // and the enumerator to agree on.
    for i in 0..spec.lb_patterns {
        let lx = f.alloc(&format!("lbx_{i}"), &format!("lbx_o_{i}"));
        let ly = f.alloc(&format!("lby_{i}"), &format!("lby_o_{i}"));
        let bait = f.alloc(&format!("lbe_{i}"), &format!("lbe_o_{i}"));
        f.free(bait);
        f.fork(&format!("lbta_{i}"), &format!("lb_a_{i}"), &[lx, ly, bait]);
        f.fork(&format!("lbtb_{i}"), &format!("lb_b_{i}"), &[lx, ly]);
        truth.infeasible_patterns += 1;
    }
    // Benign patterns: the free is guarded by an *independent* atom.
    for i in 0..spec.benign_patterns {
        let cell = f.alloc(&format!("bncell_{i}"), &format!("bncell_o_{i}"));
        let val = f.alloc(&format!("bnval_{i}"), &format!("bnobj_{i}"));
        f.store(cell, val);
        f.fork(&format!("nt_{i}"), &format!("benign_victim_{i}"), &[cell]);
        let guard = f.cond(&format!("benign_free_{i}"));
        let mut free_label = None;
        f.if_then(CondExpr::atom(guard), |f| {
            free_label = Some(f.free(val));
        });
        truth.benign[i].0 = free_label.expect("branch body ran");
    }
    // Contradiction / ordered patterns.
    for i in 0..spec.contradiction_patterns {
        let cell = f.alloc(&format!("ccell_{i}"), &format!("ccell_o_{i}"));
        let init = f.alloc(&format!("cinit_{i}"), &format!("cval_{i}"));
        f.store(cell, init);
        if i < hard_count {
            // Hard family: the user's fan-out uses all precede its
            // notifies, and the free waits for the notify quorum —
            // infeasible only through the wait/notify order theory.
            let cv = f.alloc(&format!("hfcv_{i}"), &format!("hfcv_o_{i}"));
            f.fork(&format!("ct_{i}"), &format!("hard_user_{i}"), &[cell, cv]);
            f.wait(cv);
            f.wait(cv);
            f.free(init);
            continue;
        }
        f.fork(&format!("ct_{i}"), &format!("contra_writer_{i}"), &[cell]);
        let theta = f.cond(&format!("theta_{i}"));
        if i % 2 == 0 {
            // Several readers under θ — each contradicts the writer's
            // ¬θ, so each is one more warning for the unguarded
            // baselines and zero for Canary (the report-volume gap of
            // Tbl. 1 grows with subject size through this knob).
            let readers = spec.family_readers();
            for r in 0..readers {
                f.if_then(CondExpr::atom(theta), |f| {
                    let x = f.load(&format!("cx_{i}_{r}"), cell);
                    f.deref(x);
                });
            }
        } else {
            // Free the initial value only after the reader joined: the
            // use is join-ordered before the free, so only order-aware
            // tools can dismiss the pair.
            f.join(&format!("ct_{i}"));
            f.free(init);
        }
    }
    // Same-thread use-before-free sequences, one per helper function so
    // main's flow state stays small: the load precedes the store of the
    // doomed value, so only a flow-insensitive analysis connects them.
    // Each is one extra Saber warning; Fsam's def-use order filter and
    // Canary's order constraints both dismiss it.
    for (i, _) in order_fps.iter().enumerate() {
        f.call(&[], &format!("ofp_{i}"), &[]);
        truth.infeasible_patterns += 1;
    }

    // Wait/notify handshakes: main frees only after the user signalled.
    for i in 0..spec.handshake_patterns {
        let cell = f.alloc(&format!("hcell_{i}"), &format!("hcell_o_{i}"));
        let hv = f.alloc(&format!("hval_{i}"), &format!("hobj2_{i}"));
        f.store(cell, hv);
        let cv = f.alloc(&format!("hcv_{i}"), &format!("hcv_o_{i}"));
        f.fork(&format!("ht_{i}"), &format!("hs_user_{i}"), &[cell, cv]);
        f.wait(cv);
        f.free(hv);
        truth.infeasible_patterns += 1;
    }

    // Fork the filler workers.
    for (j, _) in workers.iter().enumerate() {
        let ca = cells[j % cells.len()];
        let cb = cells[(j + 1) % cells.len()];
        f.fork(&format!("t_{j}"), &format!("worker_{j}"), &[ca, cb]);
    }
    // Filler in main, via the chunk functions.
    for k in 0..n_main_chunks {
        f.call(&[], &format!("m_chunk_{k}"), &[]);
    }
    // Join half the workers, then read the cells.
    for j in 0..workers.len() / 2 {
        f.join(&format!("t_{j}"));
    }
    for (i, &c) in cells.iter().enumerate() {
        let x = f.load(&format!("post_{i}"), c);
        let _ = x;
    }
    // Release the cursor before opening the worker bodies.
    let _ = f;

    // --- worker bodies -------------------------------------------------
    // Real code bases split work across many small functions; the
    // filler follows suit with ~CHUNK-statement chunk functions. This
    // also keeps per-function flow states small, which is what lets the
    // sparse analysis stay near-linear (Fig. 8).
    const CHUNK: usize = 96;
    let per_worker = spec.target_stmts / (spec.threads + 1);
    for (j, &w) in workers.iter().enumerate() {
        // Declare this worker's chunk functions.
        let n_chunks = (per_worker / CHUNK).max(1);
        let chunk_ids: Vec<FuncId> = (0..n_chunks)
            .map(|k| b.func(&format!("w{j}_chunk_{k}"), &["ca", "cb"]))
            .collect();
        for (k, &cf) in chunk_ids.iter().enumerate() {
            let mut f = b.body(cf);
            let ca = f.var("ca");
            let cb = f.var("cb");
            // Shared traffic under branch conditions — in a fraction of
            // the chunks, as real modules touch shared state from a few
            // sites, not from every function.
            if k % 4 == 0 {
                let cond = f.cond(&format!("w{j}_{k}_c"));
                let mine = f.alloc(&format!("w{j}_{k}_obj"), &format!("wobj_{j}_{k}"));
                f.if_else(
                    CondExpr::atom(cond),
                    |f| {
                        f.store(cb, mine);
                    },
                    |f| {
                        let x = f.load(&format!("w{j}_{k}_in"), ca);
                        let _ = x;
                    },
                );
            } else {
                let _ = (ca, cb);
            }
            emit_alias_web(&mut f, j * 1000 + k, CHUNK / 2);
            emit_filler(&mut f, &mut rng, &format!("w{j}_{k}"), CHUNK / 2);
            f.ret(&[]);
        }
        let mut f = b.body(w);
        let ca = f.var("ca");
        let cb = f.var("cb");
        // A helper call chain, then the chunk sequence.
        f.call(&[], &format!("helper_{}", j % n_helpers), &[ca]);
        for k in 0..n_chunks {
            f.call(&[], &format!("w{j}_chunk_{k}"), &[ca, cb]);
        }
        f.ret(&[]);
    }

    b.set_entry(main);
    let prog = b.finish();
    Workload { prog, truth }
}

/// Emits a thread-private pointer web of roughly `budget` statements:
/// cells seeded with values, then load/store rounds whose *addresses*
/// travel through the shared `pick` helper. Flow- and path-sensitive
/// per-call-site reasoning keeps each worker's web separate; a
/// context-insensitive exhaustive analysis conflates all webs into one
/// alias class, reproducing the §7.1 cost gap. The web never frees, so
/// it cannot perturb ground truth.
fn emit_alias_web(f: &mut FuncBody<'_>, worker: usize, budget: usize) {
    let n_cells = (budget / 24).max(3);
    let cells: Vec<VarId> = (0..n_cells)
        .map(|k| f.alloc(&format!("w{worker}_web{k}"), &format!("w{worker}_webobj_{k}")))
        .collect();
    for (k, &c) in cells.iter().enumerate() {
        let v = f.alloc(&format!("w{worker}_webv{k}"), &format!("w{worker}_webval_{k}"));
        f.store(c, v);
    }
    let rounds = budget.saturating_sub(2 * n_cells) / 4;
    for s in 0..rounds {
        let a = cells[s % n_cells];
        let bc = cells[(s * 3 + 1) % n_cells];
        let d = cells[(s * 5 + 2) % n_cells];
        let handle = f.call(&[&format!("w{worker}_h{s}")], "pick", &[a, bc]);
        let t = f.load(&format!("w{worker}_t{s}"), handle[0]);
        f.store(d, t);
    }
}

/// Emits roughly `budget` filler statements into the cursor: private
/// heap cells, copy/binop chains, branch diamonds and bounded loops.
/// Filler never frees and never touches the seeded cells.
fn emit_filler(f: &mut FuncBody<'_>, rng: &mut StdRng, tag: &str, budget: usize) {
    let mut emitted = 0usize;
    let mut chain: Option<VarId> = None;
    let mut idx = 0usize;
    while emitted < budget {
        idx += 1;
        match rng.gen_range(0..10u32) {
            0..=2 => {
                // Private cell round-trip: alloc, store, load.
                let cell = f.alloc(&format!("{tag}_fc{idx}"), &format!("{tag}_fo{idx}"));
                let v = f.alloc(&format!("{tag}_fv{idx}"), &format!("{tag}_fw{idx}"));
                f.store(cell, v);
                let x = f.load(&format!("{tag}_fl{idx}"), cell);
                chain = Some(x);
                emitted += 4;
            }
            3..=5 => {
                // Copy/binop chain.
                let base = match chain {
                    Some(c) => c,
                    None => f.alloc(&format!("{tag}_fb{idx}"), &format!("{tag}_fbo{idx}")),
                };
                let c1 = f.copy(&format!("{tag}_cc{idx}"), base);
                let c2 = f.bin(
                    &format!("{tag}_cb{idx}"),
                    canary_ir::BinOp::Add,
                    c1,
                    base,
                );
                chain = Some(c2);
                emitted += 2;
            }
            6..=7 => {
                // Branch diamond with private work in both arms.
                let c = f.cond(&format!("{tag}_bc{idx}"));
                f.if_else(
                    CondExpr::atom(c),
                    |f| {
                        let v = f.alloc(&format!("{tag}_ba{idx}"), &format!("{tag}_bao{idx}"));
                        f.deref(v);
                    },
                    |f| {
                        f.nop();
                    },
                );
                emitted += 3;
            }
            8 => {
                // A bounded loop (parse-time-unrolled equivalent).
                let c = f.cond(&format!("{tag}_lc{idx}"));
                f.while_unrolled(CondExpr::atom(c), 2, |f| {
                    f.nop();
                });
                emitted += 2;
            }
            _ => {
                f.nop();
                emitted += 1;
            }
        }
    }
}
