//! Concrete confirmation of generated ground truth.
//!
//! Each seeded bug carries a witness schedule chosen at generation
//! time; replaying it through the oracle interpreter proves the bug is
//! *executably* reachable, not merely intended. The differential
//! harness calls [`confirm_ground_truth`] before trusting a workload's
//! truth labels — a generator regression that breaks a pattern (wrong
//! publication order, accidental join) shows up here as a failed
//! replay, instead of silently skewing precision numbers.

use canary_ir::Program;
use canary_oracle::{replay, ReplayResult};

use crate::generator::{SeededBug, Workload};

/// Replays one seeded bug's schedule through the oracle.
pub fn confirm_seeded(prog: &Program, bug: &SeededBug) -> ReplayResult {
    replay(prog, bug.kind, bug.source, bug.sink, &bug.schedule, &[])
}

/// Replays every seeded bug of a workload and returns the ones that
/// did **not** fire, with the replay outcome explaining why. An empty
/// result means the ground truth is executably confirmed.
pub fn confirm_ground_truth(w: &Workload) -> Vec<(SeededBug, ReplayResult)> {
    w.truth
        .seeded
        .iter()
        .map(|b| (b.clone(), confirm_seeded(&w.prog, b)))
        .filter(|(_, r)| !r.confirmed())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec::WorkloadSpec;
    use canary_detect::BugKind;

    #[test]
    fn small_workload_truth_is_executable() {
        let w = generate(&WorkloadSpec::small(5));
        assert!(!w.truth.seeded.is_empty());
        let failures = confirm_ground_truth(&w);
        assert!(failures.is_empty(), "unconfirmed: {failures:?}");
    }

    #[test]
    fn lean_workload_seeds_all_four_checkers() {
        let w = generate(&WorkloadSpec::lean(3));
        let kinds: std::collections::BTreeSet<BugKind> =
            w.truth.seeded.iter().map(|b| b.kind).collect();
        assert_eq!(kinds.len(), 4, "{kinds:?}");
        let failures = confirm_ground_truth(&w);
        assert!(failures.is_empty(), "unconfirmed: {failures:?}");
    }

    #[test]
    fn lock_workload_truth_is_executable() {
        let w = generate(&WorkloadSpec::lean_locks(7));
        let kinds: std::collections::BTreeSet<BugKind> =
            w.truth.seeded.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BugKind::DoubleLock), "{kinds:?}");
        assert!(kinds.contains(&BugKind::ConflictLock), "{kinds:?}");
        let failures = confirm_ground_truth(&w);
        assert!(failures.is_empty(), "unconfirmed: {failures:?}");
    }

    #[test]
    fn corrupted_schedule_is_rejected() {
        let w = generate(&WorkloadSpec::lean(4));
        let mut bug = w.truth.seeded[0].clone();
        // Claiming the wrong sink must not confirm.
        bug.sink = bug.source;
        assert!(!confirm_seeded(&w.prog, &bug).confirmed());
    }
}
