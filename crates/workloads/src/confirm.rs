//! Concrete confirmation of generated ground truth.
//!
//! Each seeded bug carries a witness schedule chosen at generation
//! time; replaying it through the oracle interpreter proves the bug is
//! *executably* reachable, not merely intended. The differential
//! harness calls [`confirm_ground_truth`] before trusting a workload's
//! truth labels — a generator regression that breaks a pattern (wrong
//! publication order, accidental join) shows up here as a failed
//! replay, instead of silently skewing precision numbers.

use canary_detect::MemoryModel;
use canary_ir::Program;
use canary_oracle::{replay_under, ReplayResult};

use crate::generator::{SeededBug, Workload};

/// Replays one seeded bug's schedule through the SC oracle.
pub fn confirm_seeded(prog: &Program, bug: &SeededBug) -> ReplayResult {
    confirm_seeded_under(prog, MemoryModel::Sc, bug)
}

/// Replays one seeded bug's schedule under an explicit memory model —
/// weak-memory litmus seeds only confirm on the store-buffer machine.
pub fn confirm_seeded_under(
    prog: &Program,
    model: MemoryModel,
    bug: &SeededBug,
) -> ReplayResult {
    replay_under(
        prog,
        model,
        bug.kind,
        bug.source,
        bug.sink,
        &bug.schedule,
        &[],
    )
}

/// Replays every SC-visible seeded bug of a workload and returns the
/// ones that did **not** fire, with the replay outcome explaining why.
/// An empty result means the ground truth is executably confirmed.
pub fn confirm_ground_truth(w: &Workload) -> Vec<(SeededBug, ReplayResult)> {
    confirm_ground_truth_under(w, MemoryModel::Sc)
}

/// [`confirm_ground_truth`] under an explicit memory model: replays
/// every seeded bug *visible under that model* (a store-buffering seed
/// has no SC witness to confirm, so SC skips it) and returns the
/// unconfirmed ones.
pub fn confirm_ground_truth_under(
    w: &Workload,
    model: MemoryModel,
) -> Vec<(SeededBug, ReplayResult)> {
    w.truth
        .seeded
        .iter()
        .filter(|b| b.visible_under(model))
        .map(|b| (b.clone(), confirm_seeded_under(&w.prog, model, b)))
        .filter(|(_, r)| !r.confirmed())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec::WorkloadSpec;
    use canary_detect::BugKind;

    #[test]
    fn small_workload_truth_is_executable() {
        let w = generate(&WorkloadSpec::small(5));
        assert!(!w.truth.seeded.is_empty());
        let failures = confirm_ground_truth(&w);
        assert!(failures.is_empty(), "unconfirmed: {failures:?}");
    }

    #[test]
    fn lean_workload_seeds_all_four_checkers() {
        let w = generate(&WorkloadSpec::lean(3));
        let kinds: std::collections::BTreeSet<BugKind> =
            w.truth.seeded.iter().map(|b| b.kind).collect();
        assert_eq!(kinds.len(), 4, "{kinds:?}");
        let failures = confirm_ground_truth(&w);
        assert!(failures.is_empty(), "unconfirmed: {failures:?}");
    }

    #[test]
    fn lock_workload_truth_is_executable() {
        let w = generate(&WorkloadSpec::lean_locks(7));
        let kinds: std::collections::BTreeSet<BugKind> =
            w.truth.seeded.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BugKind::DoubleLock), "{kinds:?}");
        assert!(kinds.contains(&BugKind::ConflictLock), "{kinds:?}");
        let failures = confirm_ground_truth(&w);
        assert!(failures.is_empty(), "unconfirmed: {failures:?}");
    }

    #[test]
    fn litmus_workload_truth_is_executable_under_its_models() {
        // Odd seed: SB (TSO+PSO), MP (PSO) and one ordinary SC UAF.
        let w = generate(&WorkloadSpec::litmus(1));
        assert_eq!(w.truth.seeded.len(), 3, "{:?}", w.truth.seeded);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let failures = confirm_ground_truth_under(&w, model);
            assert!(failures.is_empty(), "{model:?}: {failures:?}");
        }
        // The weak seeds are invisible to SC: the SC pass must have
        // skipped them rather than vacuously confirmed them.
        let sc_visible = w
            .truth
            .seeded
            .iter()
            .filter(|b| b.visible_under(MemoryModel::Sc))
            .count();
        assert_eq!(sc_visible, 1);
    }

    #[test]
    fn corrupted_schedule_is_rejected() {
        let w = generate(&WorkloadSpec::lean(4));
        let mut bug = w.truth.seeded[0].clone();
        // Claiming the wrong sink must not confirm.
        bug.sink = bug.source;
        assert!(!confirm_seeded(&w.prog, &bug).confirmed());
    }
}
