//! # canary-trace
//!
//! The observability substrate of the Canary pipeline: hierarchical,
//! span-based tracing with typed (numeric) attributes behind a
//! near-zero-cost disabled path, plus the `CANARY_LOG` progress-line
//! gate used for heartbeats on long corpus runs.
//!
//! # Design
//!
//! * A [`Tracer`] is a cheap clonable handle: either *disabled* (the
//!   default — every operation is a branch on an `Option` and returns
//!   immediately, no allocation, no clock read) or *enabled*, holding a
//!   shared [`Collector`].
//! * The collector is **lock-free**: finished spans are pushed onto a
//!   Treiber stack (one `Box` + one CAS loop per span), so it is safe
//!   under the scratch-overlay parallel front-end where spans close on
//!   arbitrary worker threads in arbitrary order.
//! * Export is **deterministically ordered**: events are sorted by
//!   `(lane, category, key, name)` — all logical, caller-supplied
//!   values — never by wall-clock time. Two runs of the deterministic
//!   pipeline at different `--threads` values therefore emit the same
//!   event sequence; only the `ts`/`dur` fields differ, and those are
//!   exactly the fields `normalize_chrome_trace` zeroes for the
//!   byte-identity tests.
//! * [`Tracer::export_chrome`] renders the Chrome trace-event JSON
//!   format (`{"traceEvents": [...]}`, `ph: "X"` complete events with
//!   `pid`/`tid`/`ts`/`dur`/`name`/`cat`/`args`), loadable in Perfetto
//!   or `chrome://tracing`. The `tid` is a *logical lane*, not an OS
//!   thread id — OS ids would break cross-thread-count determinism.
//!
//! # Examples
//!
//! ```
//! use canary_trace::{Tracer, LANE_PIPELINE};
//!
//! let tracer = Tracer::enabled();
//! {
//!     let mut span = tracer.span(LANE_PIPELINE, "alg1", 0, || "alg1 dataflow".into());
//!     span.record("tasks", 3);
//! } // span closes and is collected here
//! let json = tracer.export_chrome();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("alg1 dataflow"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Logical lane (Chrome `tid`) for top-level pipeline phase spans.
pub const LANE_PIPELINE: u32 = 0;
/// Lane for Alg. 1 (data-dependence) level/task/function spans.
pub const LANE_ALG1: u32 = 1;
/// Lane for Alg. 2 (interference) round spans.
pub const LANE_ALG2: u32 = 2;
/// Lane for §5 detection (per-kind, per-candidate) spans.
pub const LANE_DETECT: u32 = 3;
/// Lane for per-SMT-query spans.
pub const LANE_SMT: u32 = 4;

/// One finished span, ready for export.
#[derive(Clone, Debug)]
pub struct Event {
    /// Logical lane (exported as Chrome `tid`).
    pub lane: u32,
    /// Category (exported as Chrome `cat`), e.g. `"alg1"`.
    pub cat: &'static str,
    /// Deterministic sort key within `(lane, cat)` — a function index,
    /// query index, round number… Never derived from time or threads.
    pub key: u64,
    /// Human-readable span name.
    pub name: String,
    /// Start offset from the tracer's epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Typed numeric attributes, in `record` order. Values must be
    /// deterministic (no wall times) — the determinism contract
    /// normalizes only `ts`/`dur`.
    pub args: Vec<(&'static str, u64)>,
}

struct EventNode {
    ev: Event,
    next: *mut EventNode,
}

/// The lock-free event sink behind an enabled [`Tracer`].
pub struct Collector {
    head: AtomicPtr<EventNode>,
    epoch: Instant,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector").finish_non_exhaustive()
    }
}

// The raw pointers are only ever exchanged through the atomic head.
unsafe impl Send for Collector {}
unsafe impl Sync for Collector {}

impl Collector {
    fn new() -> Self {
        Collector {
            head: AtomicPtr::new(std::ptr::null_mut()),
            epoch: Instant::now(),
        }
    }

    /// Pushes one event (lock-free: CAS loop on the stack head).
    fn push(&self, ev: Event) {
        let node = Box::into_raw(Box::new(EventNode {
            ev,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` is exclusively ours until published.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Snapshots every collected event (stack order; callers sort).
    fn drain_snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            // Safety: nodes are never freed while the collector lives.
            let node = unsafe { &*p };
            out.push(node.ev.clone());
            p = node.next;
        }
        out
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // Safety: exclusive access in drop; each node was boxed.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
        }
    }
}

/// A handle to the tracing layer. Cloning shares the collector.
#[derive(Clone, Debug, Default)]
pub struct Tracer(Option<Arc<Collector>>);

impl Tracer {
    /// The no-op tracer: spans are inert, nothing allocates, name
    /// closures are never invoked.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer that collects spans; the epoch (ts = 0) is now.
    pub fn enabled() -> Self {
        Tracer(Some(Arc::new(Collector::new())))
    }

    /// Whether spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span; it is recorded when dropped (or on
    /// [`Span::finish`]). `name` is lazy so the disabled path never
    /// formats or allocates.
    pub fn span(
        &self,
        lane: u32,
        cat: &'static str,
        key: u64,
        name: impl FnOnce() -> String,
    ) -> Span<'_> {
        match &self.0 {
            None => Span {
                col: None,
                lane,
                cat,
                key,
                name: String::new(),
                args: Vec::new(),
                start: None,
            },
            Some(col) => Span {
                col: Some(col),
                lane,
                cat,
                key,
                name: name(),
                args: Vec::new(),
                start: Some(Instant::now()),
            },
        }
    }

    /// Records an already-timed interval (used when timing happened
    /// elsewhere, e.g. per-query solve intervals measured inside the
    /// parallel solver workers).
    #[allow(clippy::too_many_arguments)]
    pub fn event(
        &self,
        lane: u32,
        cat: &'static str,
        key: u64,
        name: impl FnOnce() -> String,
        start: Instant,
        dur: std::time::Duration,
        args: impl FnOnce() -> Vec<(&'static str, u64)>,
    ) {
        let Some(col) = &self.0 else { return };
        let start_ns = start
            .checked_duration_since(col.epoch)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        col.push(Event {
            lane,
            cat,
            key,
            name: name(),
            start_ns,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            args: args(),
        });
    }

    /// All collected events in deterministic export order.
    pub fn events(&self) -> Vec<Event> {
        let Some(col) = &self.0 else { return Vec::new() };
        let mut evs = col.drain_snapshot();
        evs.sort_by(|a, b| {
            (a.lane, a.cat, a.key, &a.name).cmp(&(b.lane, b.cat, b.key, &b.name))
        });
        evs
    }

    /// Renders the Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`, complete `"X"` events, `ts`/`dur` in
    /// microseconds). Event order — and every field except `ts`/`dur` —
    /// is deterministic across worker counts.
    pub fn export_chrome(&self) -> String {
        let events: Vec<serde_json::Value> = self
            .events()
            .into_iter()
            .map(|e| {
                let args: std::collections::BTreeMap<String, serde_json::Value> = e
                    .args
                    .iter()
                    .map(|&(k, v)| (k.to_string(), serde_json::json!(v)))
                    .collect();
                serde_json::json!({
                    "pid": 1,
                    "tid": e.lane,
                    "ph": "X",
                    "cat": e.cat,
                    "name": e.name,
                    "ts": e.start_ns / 1_000,
                    "dur": (e.dur_ns / 1_000).max(1),
                    "args": serde_json::Value::Object(args),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
        });
        serde_json::to_string_pretty(&doc).expect("trace events are valid json")
    }
}

/// An open span. Attributes added with [`Span::record`] are exported as
/// Chrome `args`; the span is collected when dropped.
#[derive(Debug)]
pub struct Span<'t> {
    col: Option<&'t Arc<Collector>>,
    lane: u32,
    cat: &'static str,
    key: u64,
    name: String,
    args: Vec<(&'static str, u64)>,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Attaches a numeric attribute. Values must be deterministic
    /// (counters, sizes, indices) — wall times belong in `ts`/`dur`.
    pub fn record(&mut self, key: &'static str, value: u64) {
        if self.col.is_some() {
            self.args.push((key, value));
        }
    }

    /// Closes the span now (otherwise it closes on drop).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let (Some(col), Some(start)) = (self.col, self.start) else {
            return;
        };
        let start_ns = start
            .checked_duration_since(col.epoch)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        col.push(Event {
            lane: self.lane,
            cat: self.cat,
            key: self.key,
            name: std::mem::take(&mut self.name),
            start_ns,
            dur_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Zeroes the wall-clock fields (`ts`, `dur`) of a parsed Chrome trace
/// document in place — everything left must be byte-identical across
/// `--threads` values. Shared by the determinism tests and CI smoke.
pub fn normalize_chrome_trace(doc: &mut serde_json::Value) {
    let serde_json::Value::Object(top) = doc else {
        return;
    };
    let Some(serde_json::Value::Array(events)) = top.get_mut("traceEvents") else {
        return;
    };
    for e in events {
        if let serde_json::Value::Object(obj) = e {
            obj.insert("ts".into(), serde_json::json!(0u64));
            obj.insert("dur".into(), serde_json::json!(0u64));
        }
    }
}

/// Verbosity of the human-readable stderr progress lines, gated by the
/// `CANARY_LOG` environment variable (`off`, `summary`, `debug`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// No progress lines (the default).
    #[default]
    Off,
    /// One heartbeat per pipeline phase.
    Summary,
    /// Phase heartbeats plus per-round / per-kind detail.
    Debug,
}

/// Parses a `CANARY_LOG` value.
pub fn parse_log_level(v: &str) -> LogLevel {
    match v.trim().to_ascii_lowercase().as_str() {
        "summary" | "1" | "info" | "on" => LogLevel::Summary,
        "debug" | "2" | "trace" => LogLevel::Debug,
        _ => LogLevel::Off,
    }
}

/// Strictly parses a `--log` CLI value: exactly `off`, `summary` or
/// `debug` (case-insensitive). Unlike the lenient env-var parser,
/// unknown values are `None` so the CLI can exit with a usage error.
pub fn parse_log_level_strict(v: &str) -> Option<LogLevel> {
    match v.trim().to_ascii_lowercase().as_str() {
        "off" => Some(LogLevel::Off),
        "summary" => Some(LogLevel::Summary),
        "debug" => Some(LogLevel::Debug),
        _ => None,
    }
}

/// Explicit log-level override (`--log`): 0 = none, else level + 1.
static LOG_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the process-wide log level, taking precedence over the
/// `CANARY_LOG` environment variable (which is read once and cached —
/// this is the only supported way to change verbosity after startup).
pub fn set_log_level(level: LogLevel) {
    LOG_OVERRIDE.store(level as u8 + 1, Ordering::Relaxed);
}

/// The process-wide log level: the [`set_log_level`] override when one
/// was installed, else `CANARY_LOG` (read once).
pub fn log_level() -> LogLevel {
    match LOG_OVERRIDE.load(Ordering::Relaxed) {
        1 => return LogLevel::Off,
        2 => return LogLevel::Summary,
        3 => return LogLevel::Debug,
        _ => {}
    }
    static LEVEL: OnceLock<LogLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("CANARY_LOG")
            .map(|v| parse_log_level(&v))
            .unwrap_or(LogLevel::Off)
    })
}

/// Emits one progress line on **stderr** (stdout stays clean for
/// reports/JSON) when `CANARY_LOG` is at least `level`. The message
/// closure runs only when the line will actually print.
pub fn log(level: LogLevel, msg: impl FnOnce() -> String) {
    if level != LogLevel::Off && log_level() >= level {
        eprintln!("canary: {}", msg());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert_and_lazy() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut called = false;
        {
            let mut s = t.span(LANE_ALG1, "alg1", 7, || {
                called = true;
                "never".into()
            });
            s.record("x", 1);
        }
        assert!(!called, "disabled span must not format its name");
        assert!(t.events().is_empty());
        assert_eq!(
            serde_json::from_str::<serde_json::Value>(&t.export_chrome()).unwrap()
                ["traceEvents"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn events_sort_by_logical_key_not_time() {
        let t = Tracer::enabled();
        // Close spans in reverse key order; export must re-sort.
        t.span(LANE_ALG1, "alg1", 2, || "b".into()).finish();
        t.span(LANE_ALG1, "alg1", 1, || "a".into()).finish();
        t.span(LANE_PIPELINE, "pipeline", 9, || "p".into()).finish();
        let names: Vec<String> = t.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["p", "a", "b"]);
    }

    #[test]
    fn chrome_export_has_required_fields() {
        let t = Tracer::enabled();
        {
            let mut s = t.span(LANE_SMT, "smt", 0, || "smt.query 0".into());
            s.record("decisions", 12);
        }
        let doc: serde_json::Value = serde_json::from_str(&t.export_chrome()).unwrap();
        let evs = doc["traceEvents"].as_array().unwrap();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        for field in ["pid", "tid", "ph", "ts", "dur", "name", "cat", "args"] {
            assert!(e.get(field).is_some(), "missing {field}");
        }
        assert_eq!(e["ph"], "X");
        assert_eq!(e["args"]["decisions"], 12);
        assert!(e["dur"].as_u64().unwrap() >= 1);
    }

    #[test]
    fn concurrent_spans_are_all_collected() {
        let t = Tracer::enabled();
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..50u64 {
                        t.span(LANE_ALG1, "alg1", w * 50 + i, || format!("s{w}-{i}"))
                            .finish();
                    }
                });
            }
        });
        assert_eq!(t.events().len(), 200);
    }

    #[test]
    fn normalize_zeroes_wall_clock_fields() {
        let t = Tracer::enabled();
        t.span(LANE_ALG2, "alg2", 0, || "round".into()).finish();
        let mut doc: serde_json::Value = serde_json::from_str(&t.export_chrome()).unwrap();
        normalize_chrome_trace(&mut doc);
        assert_eq!(doc["traceEvents"][0]["ts"], 0);
        assert_eq!(doc["traceEvents"][0]["dur"], 0);
    }

    #[test]
    fn log_level_parsing() {
        assert_eq!(parse_log_level("off"), LogLevel::Off);
        assert_eq!(parse_log_level(""), LogLevel::Off);
        assert_eq!(parse_log_level("SUMMARY"), LogLevel::Summary);
        assert_eq!(parse_log_level("debug"), LogLevel::Debug);
        assert!(LogLevel::Debug > LogLevel::Summary);
        assert!(LogLevel::Summary > LogLevel::Off);
    }

    #[test]
    fn strict_log_level_rejects_aliases_and_junk() {
        assert_eq!(parse_log_level_strict("off"), Some(LogLevel::Off));
        assert_eq!(parse_log_level_strict("Summary"), Some(LogLevel::Summary));
        assert_eq!(parse_log_level_strict("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(parse_log_level_strict("info"), None);
        assert_eq!(parse_log_level_strict("1"), None);
        assert_eq!(parse_log_level_strict(""), None);
    }

    #[test]
    fn log_override_takes_precedence_over_env() {
        // The env cache may already be initialized by other tests; the
        // override must win regardless, and be re-settable.
        set_log_level(LogLevel::Debug);
        assert_eq!(log_level(), LogLevel::Debug);
        set_log_level(LogLevel::Off);
        assert_eq!(log_level(), LogLevel::Off);
        set_log_level(LogLevel::Summary);
        assert_eq!(log_level(), LogLevel::Summary);
        // Restore "no override" is impossible by design (the CLI sets
        // it once); leave it Off so other tests' stderr stays quiet.
        set_log_level(LogLevel::Off);
    }
}
