//! Typed run-health metrics: a deterministic registry of counters,
//! gauges and histograms with an OpenMetrics text exporter.
//!
//! # Design
//!
//! * The registry is a plain value (no globals, no atomics): each
//!   analysis run builds one from its final
//!   measurements, so aggregation is deterministic for any worker
//!   count — samples are keyed by `(family, sorted labels)` in
//!   `BTreeMap`s, never by insertion or thread order.
//! * Export renders the [OpenMetrics text format]: `# TYPE` / `# HELP`
//!   metadata per family, counter samples with the `_total` suffix,
//!   histogram `_bucket`/`_sum`/`_count` series with the `le` label
//!   last, and the mandatory `# EOF` terminator — scrape-ready for the
//!   future `canary serve` daemon.
//! * Determinism is a *classified* contract, mirroring how the SARIF
//!   manifest quarantines `timings`:
//!   - **volatile** families ([`family_is_volatile`]: wall-clock
//!     `_seconds` and `_rss_` memory families) legitimately differ
//!     between runs; [`normalize_openmetrics`] zeroes them so
//!     everything left must be byte-identical across `--threads`
//!     values and solver strategies;
//!   - **strategy-sensitive** families
//!     ([`family_is_strategy_sensitive`]: the `canary_solver_*` CDCL
//!     work counters) are deterministic for a fixed strategy but
//!     differ between `fresh` and `incremental` by design — that
//!     difference is the PR-4 speedup. Cross-strategy comparisons
//!     normalize these too.
//!
//! [OpenMetrics text format]: https://github.com/OpenObservability/OpenMetrics
//!
//! # Examples
//!
//! ```
//! use canary_trace::metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.set_gauge("canary_vfg_nodes", "VFG node count", &[], 42.0);
//! reg.add_counter("canary_detect_queries", "SMT queries issued", &[], 3.0);
//! reg.observe(
//!     "canary_solver_query_decisions",
//!     "CDCL decisions per query",
//!     &[("kind", "use-after-free")],
//!     &[1.0, 4.0, 16.0],
//!     2.0,
//! );
//! let text = reg.to_openmetrics();
//! assert!(text.contains("canary_detect_queries_total 3"));
//! assert!(text.ends_with("# EOF\n"));
//! ```

use std::collections::BTreeMap;

/// Bucket upper bounds for CDCL-work (decision count) histograms: a
/// zero bucket for memoized/prefiltered queries, then powers of four.
pub const DECISION_BUCKETS: [f64; 8] = [0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0];

/// Bucket upper bounds for solve-time histograms, in seconds.
pub const SECONDS_BUCKETS: [f64; 7] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// The OpenMetrics type of a metric family.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulated count (`_total` sample suffix).
    Counter,
    /// Point-in-time measurement.
    Gauge,
    /// Distribution over fixed buckets (`_bucket`/`_sum`/`_count`).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One cumulative histogram over fixed bucket bounds.
#[derive(Clone, Debug, Default)]
struct Hist {
    /// Upper bounds of the finite buckets, ascending.
    bounds: Vec<f64>,
    /// Observations `<= bounds[i]` (non-cumulative; export accumulates).
    counts: Vec<u64>,
    /// Observations above every finite bound (the `+Inf` bucket).
    inf: u64,
    /// Sum of all observed values.
    sum: f64,
    /// Total observations.
    count: u64,
}

#[derive(Clone, Debug)]
enum Sample {
    Value(f64),
    Hist(Hist),
}

#[derive(Clone, Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Samples keyed by the canonical (sorted) label rendering.
    samples: BTreeMap<String, Sample>,
}

/// A deterministic registry of metric families.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// Renders a label set canonically: keys sorted, `k="v"` joined with
/// commas, no surrounding braces (the exporter adds them).
fn canonical_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a sample value: integers without a fractional part, floats
/// via the (deterministic) shortest `f64` display otherwise.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of metric families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no family has been registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family_mut(&mut self, name: &str, kind: MetricKind, help: &str) -> &mut Family {
        let f = self.families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            samples: BTreeMap::new(),
        });
        debug_assert_eq!(f.kind, kind, "metric family {name} re-registered with a new kind");
        f
    }

    /// Sets a gauge sample (last write wins).
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let key = canonical_labels(labels);
        self.family_mut(name, MetricKind::Gauge, help)
            .samples
            .insert(key, Sample::Value(value));
    }

    /// Adds to a counter sample (created at zero).
    pub fn add_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let key = canonical_labels(labels);
        let fam = self.family_mut(name, MetricKind::Counter, help);
        match fam.samples.entry(key).or_insert(Sample::Value(0.0)) {
            Sample::Value(v) => *v += value,
            Sample::Hist(_) => unreachable!("counter family holds scalar samples"),
        }
    }

    /// Observes one value into a histogram sample. The first
    /// observation fixes the bucket bounds; later observations must
    /// pass the same bounds.
    pub fn observe(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let key = canonical_labels(labels);
        let fam = self.family_mut(name, MetricKind::Histogram, help);
        let h = match fam.samples.entry(key).or_insert_with(|| {
            Sample::Hist(Hist {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len()],
                ..Hist::default()
            })
        }) {
            Sample::Hist(h) => h,
            Sample::Value(_) => unreachable!("histogram family holds histogram samples"),
        };
        debug_assert_eq!(h.bounds, bounds, "histogram {name} observed with new bounds");
        match h.bounds.iter().position(|&b| value <= b) {
            Some(i) => h.counts[i] += 1,
            None => h.inf += 1,
        }
        h.sum += value;
        h.count += 1;
    }

    /// Renders the registry as an OpenMetrics text document ending in
    /// `# EOF`. Families, label sets and buckets are all emitted in
    /// canonical sorted order — the document is byte-deterministic for
    /// identical contents.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            for (labels, sample) in &fam.samples {
                match sample {
                    Sample::Value(v) => {
                        let suffix = match fam.kind {
                            MetricKind::Counter => "_total",
                            _ => "",
                        };
                        if labels.is_empty() {
                            out.push_str(&format!("{name}{suffix} {}\n", fmt_value(*v)));
                        } else {
                            out.push_str(&format!(
                                "{name}{suffix}{{{labels}}} {}\n",
                                fmt_value(*v)
                            ));
                        }
                    }
                    Sample::Hist(h) => {
                        let with_le = |le: &str| {
                            if labels.is_empty() {
                                format!("le=\"{le}\"")
                            } else {
                                format!("{labels},le=\"{le}\"")
                            }
                        };
                        let mut cum = 0u64;
                        for (b, c) in h.bounds.iter().zip(&h.counts) {
                            cum += c;
                            out.push_str(&format!(
                                "{name}_bucket{{{}}} {cum}\n",
                                with_le(&fmt_value(*b))
                            ));
                        }
                        cum += h.inf;
                        out.push_str(&format!("{name}_bucket{{{}}} {cum}\n", with_le("+Inf")));
                        let tail = |s: &str| {
                            if labels.is_empty() {
                                format!("{name}_{s}")
                            } else {
                                format!("{name}_{s}{{{labels}}}")
                            }
                        };
                        out.push_str(&format!("{} {}\n", tail("sum"), fmt_value(h.sum)));
                        out.push_str(&format!("{} {}\n", tail("count"), h.count));
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Renders the registry as the versioned JSON block embedded under
    /// `metrics.registry` in `--json` output.
    pub fn to_json(&self) -> serde_json::Value {
        let families: Vec<serde_json::Value> = self
            .families
            .iter()
            .map(|(name, fam)| {
                let samples: Vec<serde_json::Value> = fam
                    .samples
                    .iter()
                    .map(|(labels, sample)| match sample {
                        Sample::Value(v) => serde_json::json!({
                            "labels": labels,
                            "value": v,
                        }),
                        Sample::Hist(h) => {
                            let buckets: Vec<serde_json::Value> = h
                                .bounds
                                .iter()
                                .zip(&h.counts)
                                .map(|(b, c)| serde_json::json!([b, c]))
                                .collect();
                            serde_json::json!({
                                "labels": labels,
                                "buckets": buckets,
                                "inf": h.inf,
                                "sum": h.sum,
                                "count": h.count,
                            })
                        }
                    })
                    .collect();
                serde_json::json!({
                    "name": name,
                    "kind": fam.kind.as_str(),
                    "help": fam.help,
                    "samples": samples,
                })
            })
            .collect();
        serde_json::json!({
            "registry_version": 1,
            "families": families,
        })
    }
}

/// Whether a metric family is **volatile** — nondeterministic across
/// runs by nature (wall-clock times, OS memory accounting, work-steal
/// scheduling) and therefore *dropped wholesale* by the normalization
/// helpers, exactly like the SARIF manifest quarantines `timings`.
/// Dropping (rather than zeroing) matters because some volatile
/// families are conditionally emitted — `canary_dispatch_*` exists
/// only when a work-stealing dispatch actually ran — so even their
/// `# TYPE`/`# HELP` headers differ across knobs.
pub fn family_is_volatile(name: &str) -> bool {
    name.ends_with("_seconds") || name.contains("_rss_") || name.starts_with("canary_dispatch_")
}

/// Whether a metric family is **strategy-sensitive** — deterministic
/// for a fixed `--solver-strategy` but intentionally different between
/// `fresh` and `incremental` (the CDCL work the incremental back-end
/// saves). Cross-strategy byte comparisons must normalize these too.
pub fn family_is_strategy_sensitive(name: &str) -> bool {
    name.starts_with("canary_solver_")
}

/// Whether a metric family is a **configuration echo** — it records a
/// run knob (worker counts) rather than a property of the analyzed
/// program. Deterministic for fixed flags, but the determinism
/// comparisons *vary* exactly those knobs, so the normalizers zero
/// these too — the SARIF manifest's `threads` field plays the same
/// role there.
pub fn family_is_config(name: &str) -> bool {
    name == "canary_worker_threads" || name == "canary_phase_workers"
}

/// The family name behind one OpenMetrics sample line, with the
/// `_total` / `_bucket` / `_sum` / `_count` sample suffixes stripped;
/// `None` for comment and blank lines.
fn sample_family(line: &str) -> Option<&str> {
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let end = line.find(['{', ' '])?;
    let mut name = &line[..end];
    for suffix in ["_total", "_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            name = stripped;
            break;
        }
    }
    Some(name)
}

/// The family name behind a `# TYPE` / `# HELP` header line; `None`
/// for sample, blank and `# EOF` lines.
fn comment_family(line: &str) -> Option<&str> {
    let rest = line
        .strip_prefix("# TYPE ")
        .or_else(|| line.strip_prefix("# HELP "))?;
    Some(rest.split(' ').next().unwrap_or(rest))
}

/// Normalizes an OpenMetrics document for determinism comparisons:
/// *drops* volatile families entirely (headers and samples — some,
/// like `canary_dispatch_*`, are conditionally emitted, so even their
/// presence is knob-dependent) and zeroes the sample values of
/// configuration-echo families (and, when `cross_strategy` is set, the
/// strategy-sensitive solver-work families, whose presence is
/// unconditional). Everything left must be byte-identical across
/// `--threads` values — and, with `cross_strategy`, across solver
/// strategies.
pub fn normalize_openmetrics(text: &str, cross_strategy: bool) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let fam = sample_family(line).or_else(|| comment_family(line));
        if fam.is_some_and(family_is_volatile) {
            continue;
        }
        let zero = sample_family(line).is_some_and(|fam| {
            family_is_config(fam) || (cross_strategy && family_is_strategy_sensitive(fam))
        });
        match (zero, line.rsplit_once(' ')) {
            (true, Some((head, _))) => {
                out.push_str(head);
                out.push_str(" 0\n");
            }
            _ => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// [`normalize_openmetrics`] for the JSON rendering: drops volatile
/// families and zeroes the same knob-echoing families in a parsed
/// `registry` block (as produced by [`MetricsRegistry::to_json`]) in
/// place.
pub fn normalize_registry_json(doc: &mut serde_json::Value, cross_strategy: bool) {
    let serde_json::Value::Object(top) = doc else {
        return;
    };
    let Some(serde_json::Value::Array(families)) = top.get_mut("families") else {
        return;
    };
    families.retain(|fam| {
        !fam["name"].as_str().is_some_and(family_is_volatile)
    });
    for fam in families {
        let zero = fam["name"].as_str().is_some_and(|name| {
            family_is_config(name) || (cross_strategy && family_is_strategy_sensitive(name))
        });
        if !zero {
            continue;
        }
        let serde_json::Value::Object(fam) = fam else { continue };
        let Some(serde_json::Value::Array(samples)) = fam.get_mut("samples") else {
            continue;
        };
        for s in samples {
            let serde_json::Value::Object(obj) = s else { continue };
            if obj.contains_key("value") {
                obj.insert("value".into(), serde_json::json!(0.0));
            }
            if let Some(serde_json::Value::Array(buckets)) = obj.get_mut("buckets") {
                for b in buckets {
                    if let serde_json::Value::Array(pair) = b {
                        if pair.len() == 2 {
                            pair[1] = serde_json::json!(0);
                        }
                    }
                }
            }
            for k in ["inf", "sum", "count"] {
                if obj.contains_key(k) {
                    obj.insert(k.into(), serde_json::json!(0));
                }
            }
        }
    }
}

/// The process-lifetime peak resident-set size in bytes (`VmHWM` from
/// `/proc/self/status` on Linux; 0 where unavailable). Monotone over a
/// run, so a sample at the end of each phase gives a per-phase
/// high-water mark. **Volatile** by classification — never compared
/// across runs.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_with_total_suffix() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("canary_x", "xs", &[], 2.0);
        reg.add_counter("canary_x", "xs", &[], 3.0);
        let text = reg.to_openmetrics();
        assert!(text.contains("# TYPE canary_x counter\n"));
        assert!(text.contains("canary_x_total 5\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn labels_render_sorted_and_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("g", "a gauge", &[("z", "1"), ("a", "two")], 7.5);
        let text = reg.to_openmetrics();
        assert!(text.contains("g{a=\"two\",z=\"1\"} 7.5\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 3.0, 100.0] {
            reg.observe("h", "hist", &[("kind", "uaf")], &[1.0, 4.0], v);
        }
        let text = reg.to_openmetrics();
        assert!(text.contains("h_bucket{kind=\"uaf\",le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("h_bucket{kind=\"uaf\",le=\"4\"} 2\n"), "{text}");
        assert!(text.contains("h_bucket{kind=\"uaf\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("h_sum{kind=\"uaf\"} 103.5\n"), "{text}");
        assert!(text.contains("h_count{kind=\"uaf\"} 3\n"), "{text}");
    }

    #[test]
    fn export_order_is_insertion_independent() {
        let mut a = MetricsRegistry::new();
        a.set_gauge("m_b", "b", &[], 1.0);
        a.set_gauge("m_a", "a", &[("l", "2")], 2.0);
        a.set_gauge("m_a", "a", &[("l", "1")], 3.0);
        let mut b = MetricsRegistry::new();
        b.set_gauge("m_a", "a", &[("l", "1")], 3.0);
        b.set_gauge("m_b", "b", &[], 1.0);
        b.set_gauge("m_a", "a", &[("l", "2")], 2.0);
        assert_eq!(a.to_openmetrics(), b.to_openmetrics());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn volatile_families_are_dropped_wholesale() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("canary_phase_wall_seconds", "wall", &[("phase", "alg1")], 1.25);
        reg.set_gauge("canary_phase_peak_rss_bytes", "rss", &[("phase", "alg1")], 4096.0);
        reg.set_gauge(
            "canary_dispatch_worker_families",
            "loads",
            &[("worker", "0")],
            3.0,
        );
        reg.set_gauge("canary_vfg_nodes", "nodes", &[], 11.0);
        reg.add_counter("canary_solver_decisions", "cdcl", &[], 9.0);
        let text = reg.to_openmetrics();
        let norm = normalize_openmetrics(&text, false);
        // Conditionally-emitted volatile families (dispatch loads)
        // would leave differing # TYPE/# HELP headers if merely
        // zeroed, so the whole block — headers included — must go.
        assert!(!norm.contains("canary_phase_wall_seconds"), "{norm}");
        assert!(!norm.contains("canary_phase_peak_rss_bytes"), "{norm}");
        assert!(!norm.contains("canary_dispatch_worker_families"), "{norm}");
        assert!(norm.contains("canary_vfg_nodes 11\n"));
        assert!(norm.contains("canary_solver_decisions_total 9\n"));
        let cross = normalize_openmetrics(&text, true);
        assert!(cross.contains("canary_solver_decisions_total 0\n"));
        assert!(cross.contains("canary_vfg_nodes 11\n"));
        // A registry without the conditional family normalizes to the
        // same text as one with it.
        let mut bare = MetricsRegistry::new();
        bare.set_gauge("canary_vfg_nodes", "nodes", &[], 11.0);
        bare.add_counter("canary_solver_decisions", "cdcl", &[], 9.0);
        assert_eq!(norm, normalize_openmetrics(&bare.to_openmetrics(), false));
    }

    #[test]
    fn json_normalization_drops_the_same_families() {
        let mut reg = MetricsRegistry::new();
        reg.observe(
            "canary_smt_query_seconds",
            "solve wall",
            &[("kind", "uaf")],
            &SECONDS_BUCKETS,
            0.002,
        );
        reg.set_gauge(
            "canary_dispatch_worker_stolen",
            "steals",
            &[("worker", "1")],
            2.0,
        );
        reg.set_gauge("canary_vfg_nodes", "nodes", &[], 5.0);
        let mut doc = reg.to_json();
        normalize_registry_json(&mut doc, false);
        let fams = doc["families"].as_array().unwrap();
        assert!(!fams
            .iter()
            .any(|f| f["name"] == "canary_smt_query_seconds"
                || f["name"] == "canary_dispatch_worker_stolen"));
        let gauge = fams.iter().find(|f| f["name"] == "canary_vfg_nodes").unwrap();
        assert_eq!(gauge["samples"][0]["value"].as_f64(), Some(5.0));
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0);
        }
    }

    #[test]
    fn classification_rules() {
        assert!(family_is_volatile("canary_phase_wall_seconds"));
        assert!(family_is_volatile("canary_phase_peak_rss_bytes"));
        assert!(family_is_volatile("canary_dispatch_worker_families"));
        assert!(family_is_volatile("canary_dispatch_worker_stolen"));
        assert!(!family_is_volatile("canary_vfg_bytes"));
        assert!(!family_is_volatile("canary_audit_candidates"));
        assert!(family_is_strategy_sensitive("canary_solver_memo_hits"));
        assert!(!family_is_strategy_sensitive("canary_detect_queries"));
        assert!(family_is_config("canary_worker_threads"));
        assert!(family_is_config("canary_phase_workers"));
        assert!(!family_is_config("canary_phase_tasks"));
    }

    #[test]
    fn config_echo_families_are_normalized() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("canary_worker_threads", "threads", &[], 4.0);
        reg.set_gauge("canary_phase_workers", "workers", &[("phase", "detect")], 4.0);
        reg.set_gauge("canary_phase_tasks", "tasks", &[("phase", "detect")], 7.0);
        let norm = normalize_openmetrics(&reg.to_openmetrics(), false);
        assert!(norm.contains("canary_worker_threads 0\n"));
        assert!(norm.contains("canary_phase_workers{phase=\"detect\"} 0\n"));
        assert!(norm.contains("canary_phase_tasks{phase=\"detect\"} 7\n"));
        let mut doc = reg.to_json();
        normalize_registry_json(&mut doc, false);
        let fams = doc["families"].as_array().unwrap();
        let threads = fams
            .iter()
            .find(|f| f["name"] == "canary_worker_threads")
            .unwrap();
        assert_eq!(threads["samples"][0]["value"].as_f64(), Some(0.0));
        let tasks = fams.iter().find(|f| f["name"] == "canary_phase_tasks").unwrap();
        assert_eq!(tasks["samples"][0]["value"].as_f64(), Some(7.0));
    }
}
