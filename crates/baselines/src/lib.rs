//! # canary-baselines
//!
//! The two comparison tools of the paper's evaluation (§7), rebuilt on
//! the same IR so the Fig. 7 / Tbl. 1 head-to-heads can be regenerated:
//!
//! * [`saber`] — Andersen-style, flow- and path-insensitive exhaustive
//!   points-to + full-sparse unguarded VFG (Saber, ISSTA 2012);
//! * [`fsam`] — flow-sensitive multithreaded points-to with iterated
//!   thread-interference recomputation (Fsam, CGO 2016).
//!
//! Both expose budgeted entry points ([`Deadline`]) so the harness can
//! reproduce the `NA` (timeout) cells, and both check use-after-free
//! with the *unguarded* source-sink reachability that gives them their
//! near-100 % false-positive rates in Tbl. 1.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod fsam;
pub mod saber;

pub use common::{BaselineReport, Budgeted, Deadline, PointsTo};
pub use fsam::FsamResult;
pub use saber::SaberResult;
