//! A Saber-style baseline (Sui, Ye, Xue — ISSTA 2012).
//!
//! Saber performs an Andersen-style, flow-insensitive, *exhaustive*
//! inclusion points-to analysis and builds a full-sparse value-flow
//! graph from it (§7.1: it "can trivially model the thread
//! interference" because flow-insensitivity ignores ordering entirely).
//! Precision class: path-insensitive and order-insensitive — the Fig. 2
//! false positive is always reported.
//!
//! The inclusion solver is the classic worklist formulation with cubic
//! worst-case behaviour; combined with the exhaustive store×load VFG
//! product this reproduces the cost profile Fig. 7 shows.

use std::collections::HashSet;

use canary_ir::{Inst, ObjId, Program, VarId};
use canary_vfg::Vfg;

use crate::common::{
    build_unguarded_vfg, check_uaf_unguarded, BaselineReport, Budgeted, Deadline, PointsTo,
};

/// Result of a Saber run.
#[derive(Debug)]
pub struct SaberResult {
    /// The exhaustive points-to facts.
    pub pts: PointsTo,
    /// The unguarded VFG.
    pub vfg: Vfg,
}

/// Runs the Andersen-style inclusion solver to fixpoint.
pub fn solve_andersen(prog: &Program, deadline: Deadline) -> Budgeted<PointsTo> {
    let mut pts = PointsTo::for_program(prog);
    // Copy edges var→var gathered once; complex (load/store/call)
    // constraints re-evaluated every round — deliberately the naive
    // exhaustive formulation.
    let mut copy_edges: Vec<(VarId, VarId)> = Vec::new(); // src → dst
    for l in prog.labels() {
        match prog.inst(l) {
            Inst::Alloc { dst, obj } => {
                pts.var_pts[dst.index()].insert(*obj);
            }
            Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
                copy_edges.push((*src, *dst));
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                copy_edges.push((*lhs, *dst));
                copy_edges.push((*rhs, *dst));
            }
            Inst::Call { dsts, callee, args } => {
                call_copy_edges(prog, callee, args, dsts, &mut copy_edges);
            }
            Inst::Fork { entry, args, .. } => {
                call_copy_edges(prog, entry, args, &[], &mut copy_edges);
            }
            _ => {}
        }
    }
    loop {
        if deadline.expired() {
            return Budgeted::TimedOut;
        }
        let mut changed = false;
        for &(src, dst) in &copy_edges {
            let add: Vec<ObjId> = pts.var_pts[src.index()]
                .difference(&pts.var_pts[dst.index()])
                .copied()
                .collect();
            if !add.is_empty() {
                changed = true;
                pts.var_pts[dst.index()].extend(add);
            }
        }
        for l in prog.labels() {
            match prog.inst(l) {
                Inst::Store { addr, src } => {
                    let objs: Vec<ObjId> = pts.var_pts[addr.index()].iter().copied().collect();
                    let vals: HashSet<ObjId> = pts.var_pts[src.index()].clone();
                    for o in objs {
                        let add: Vec<ObjId> = vals
                            .difference(&pts.cell_pts[o.index()])
                            .copied()
                            .collect();
                        if !add.is_empty() {
                            changed = true;
                            pts.cell_pts[o.index()].extend(add);
                        }
                    }
                }
                Inst::Load { dst, addr } => {
                    let objs: Vec<ObjId> = pts.var_pts[addr.index()].iter().copied().collect();
                    for o in objs {
                        let add: Vec<ObjId> = pts.cell_pts[o.index()]
                            .difference(&pts.var_pts[dst.index()])
                            .copied()
                            .collect();
                        if !add.is_empty() {
                            changed = true;
                            pts.var_pts[dst.index()].extend(add);
                        }
                    }
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    pts.refresh_bytes();
    Budgeted::Done(pts)
}

/// Adds argument/parameter and return/destination copy constraints for
/// a call or fork site; indirect callees conservatively match every
/// function of the right arity (flow-insensitive resolution).
fn call_copy_edges(
    prog: &Program,
    callee: &canary_ir::Callee,
    args: &[VarId],
    dsts: &[VarId],
    copy_edges: &mut Vec<(VarId, VarId)>,
) {
    let targets: Vec<canary_ir::FuncId> = match callee {
        canary_ir::Callee::Direct(f) => vec![*f],
        canary_ir::Callee::Indirect(_) => prog
            .funcs
            .iter()
            .filter(|f| f.params.len() == args.len())
            .map(|f| f.id)
            .collect(),
    };
    for t in targets {
        let func = prog.func(t);
        for (i, &a) in args.iter().enumerate() {
            if let Some(&p) = func.params.get(i) {
                copy_edges.push((a, p));
            }
        }
        for fl in func.labels() {
            if let Inst::Return { vals } = prog.inst(fl) {
                for (k, &d) in dsts.iter().enumerate() {
                    if let Some(&rv) = vals.get(k) {
                        copy_edges.push((rv, d));
                    }
                }
            }
        }
    }
}

/// Builds the Saber VFG (exhaustive points-to + unguarded graph).
pub fn build_vfg(prog: &Program, deadline: Deadline) -> Budgeted<SaberResult> {
    let pts = match solve_andersen(prog, deadline) {
        Budgeted::Done(p) => p,
        Budgeted::TimedOut => return Budgeted::TimedOut,
    };
    match build_unguarded_vfg(prog, &pts, deadline, &|_, _| true) {
        Budgeted::Done(vfg) => Budgeted::Done(SaberResult { pts, vfg }),
        Budgeted::TimedOut => Budgeted::TimedOut,
    }
}

/// Full Saber run: VFG + unguarded use-after-free checking.
pub fn check_uaf(prog: &Program, deadline: Deadline) -> Budgeted<Vec<BaselineReport>> {
    match build_vfg(prog, deadline) {
        Budgeted::Done(r) => check_uaf_unguarded(prog, &r.vfg, deadline),
        Budgeted::TimedOut => Budgeted::TimedOut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::parse;

    #[test]
    fn andersen_resolves_copies_and_memory() {
        let prog = parse(
            "fn main() { x = alloc o1; cell = alloc c; *cell = x; y = *cell; q = y; use q; }",
        )
        .unwrap();
        let pts = solve_andersen(&prog, Deadline::none()).expect_done("no deadline");
        let main = prog.func_by_name("main").unwrap();
        let q = prog.var_by_name(main, "q").unwrap();
        let o1 = prog.obj_by_name("o1").unwrap();
        assert!(pts.var_pts[q.index()].contains(&o1));
    }

    #[test]
    fn flow_insensitive_merges_both_stores() {
        // Unlike Alg. 1's strong update, Andersen keeps both.
        let prog = parse(
            "fn main() { a = alloc oa; b = alloc ob; cell = alloc c; *cell = a; *cell = b; y = *cell; use y; }",
        )
        .unwrap();
        let pts = solve_andersen(&prog, Deadline::none()).expect_done("no deadline");
        let main = prog.func_by_name("main").unwrap();
        let y = prog.var_by_name(main, "y").unwrap();
        assert_eq!(pts.var_pts[y.index()].len(), 2);
    }

    #[test]
    fn reports_fig2_false_positive() {
        // The defining precision gap: Saber reports the bug-free Fig. 2
        // program.
        let prog = parse(
            r#"
            fn main(a) {
                x = alloc o1;
                *x = a;
                fork t thread1(x);
                if (theta1) { c = *x; use c; }
            }
            fn thread1(y) {
                b = alloc o2;
                if (!theta1) { *y = b; free b; }
            }
        "#,
        )
        .unwrap();
        let reports = check_uaf(&prog, Deadline::none()).expect_done("no deadline");
        assert!(
            !reports.is_empty(),
            "path-insensitive baseline must report the FP"
        );
    }

    #[test]
    fn reports_order_insensitive_use_before_free() {
        // Even `use p; free p;` is flagged — no order reasoning at all.
        let prog = parse("fn main() { p = alloc o; use p; free p; }").unwrap();
        let reports = check_uaf(&prog, Deadline::none()).expect_done("no deadline");
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn timeout_propagates() {
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let d = Deadline::after(std::time::Duration::from_nanos(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(check_uaf(&prog, d).timed_out());
    }
}
