//! Shared machinery for the baselines: deadline handling, unguarded
//! VFG construction from exhaustive points-to results, and the
//! path-insensitive source-sink checker both tools use in §7.2.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use canary_ir::{Inst, Label, ObjId, Program, VarId};
use canary_smt::TermPool;
use canary_vfg::{EdgeKind, NodeId, NodeKind, Vfg};

/// A soft deadline the long-running loops poll (the 12-hour budget of
/// §7.1, scaled down by the harness).
#[derive(Copy, Clone, Debug)]
pub struct Deadline {
    end: Option<Instant>,
}

impl Deadline {
    /// No deadline.
    pub fn none() -> Self {
        Deadline { end: None }
    }

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            end: Some(Instant::now() + d),
        }
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.end.is_some_and(|e| Instant::now() >= e)
    }
}

/// Outcome of a budgeted baseline phase.
#[derive(Debug)]
pub enum Budgeted<T> {
    /// Finished within budget.
    Done(T),
    /// Ran out of time (the `NA` rows of Tbl. 1 / Fig. 7).
    TimedOut,
}

impl<T> Budgeted<T> {
    /// Unwraps the value or panics (tests only).
    pub fn expect_done(self, msg: &str) -> T {
        match self {
            Budgeted::Done(t) => t,
            Budgeted::TimedOut => panic!("{msg}"),
        }
    }

    /// Whether the phase timed out.
    pub fn timed_out(&self) -> bool {
        matches!(self, Budgeted::TimedOut)
    }
}

/// Exhaustive points-to results: one set per top-level variable and per
/// abstract object cell (field-insensitive, as both baselines are).
#[derive(Debug, Default)]
pub struct PointsTo {
    /// `pts[v]` — objects variable `v` may point to.
    pub var_pts: Vec<HashSet<ObjId>>,
    /// `cell[o]` — objects the cell of `o` may hold.
    pub cell_pts: Vec<HashSet<ObjId>>,
    /// Approximate bytes held by the sets (Fig. 7b accounting).
    pub bytes: usize,
}

impl PointsTo {
    /// Allocates empty sets for a program.
    pub fn for_program(prog: &Program) -> Self {
        PointsTo {
            var_pts: vec![HashSet::new(); prog.vars.len()],
            cell_pts: vec![HashSet::new(); prog.objs.len()],
            bytes: 0,
        }
    }

    /// Recomputes the byte estimate from current set sizes.
    pub fn refresh_bytes(&mut self) {
        let entries: usize = self.var_pts.iter().map(HashSet::len).sum::<usize>()
            + self.cell_pts.iter().map(HashSet::len).sum::<usize>();
        // HashSet<ObjId> entry overhead ≈ 16 bytes plus set headers.
        self.bytes = entries * 16 + (self.var_pts.len() + self.cell_pts.len()) * 48;
    }
}

/// Builds the exhaustive, *unguarded* VFG both baselines share: direct
/// edges for copies, plus a store→load edge for every pair whose
/// address sets intersect — no guards, no order constraints, no thread
/// awareness beyond the points-to itself. The store×load product is
/// what makes the exhaustive construction expensive, exactly as §7.1
/// observes for Saber and Fsam.
pub fn build_unguarded_vfg(
    prog: &Program,
    pts: &PointsTo,
    deadline: Deadline,
    pair_filter: &dyn Fn(Label, Label) -> bool,
) -> Budgeted<Vfg> {
    let pool = TermPool::new();
    let tt = pool.tt();
    let mut vfg = Vfg::new();
    // Def sites (single pass).
    let mut def_site: Vec<Option<Label>> = vec![None; prog.vars.len()];
    for l in prog.labels() {
        if let Some(d) = prog.inst(l).def() {
            def_site[d.index()] = Some(l);
        }
    }
    for func in &prog.funcs {
        if let Some(first) = func.labels().next() {
            for &p in &func.params {
                if def_site[p.index()].is_none() {
                    def_site[p.index()] = Some(first);
                }
            }
        }
    }
    let def_node = |vfg: &mut Vfg, v: VarId| -> Option<NodeId> {
        def_site[v.index()].map(|l| vfg.def_node(v, l))
    };

    let mut stores: Vec<(Label, VarId, VarId)> = Vec::new();
    let mut loads: Vec<(Label, VarId, VarId)> = Vec::new();
    for l in prog.labels() {
        if deadline.expired() {
            return Budgeted::TimedOut;
        }
        match prog.inst(l) {
            Inst::Alloc { dst, obj } => {
                let on = vfg.obj_node(*obj, l);
                let dn = vfg.def_node(*dst, l);
                vfg.add_edge(on, dn, EdgeKind::Direct, tt);
            }
            Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
                let dn = vfg.def_node(*dst, l);
                if let Some(sn) = def_node(&mut vfg, *src) {
                    vfg.add_edge(sn, dn, EdgeKind::Direct, tt);
                }
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                let dn = vfg.def_node(*dst, l);
                for s in [lhs, rhs] {
                    if let Some(sn) = def_node(&mut vfg, *s) {
                        vfg.add_edge(sn, dn, EdgeKind::Direct, tt);
                    }
                }
            }
            Inst::Store { addr: _, src } => {
                let store_node = vfg.def_node(*src, l);
                if let Some(sn) = def_node(&mut vfg, *src) {
                    if sn != store_node {
                        vfg.add_edge(sn, store_node, EdgeKind::Direct, tt);
                    }
                }
                stores.push((l, *prog_store_addr(prog, l), *src));
            }
            Inst::Load { dst, addr } => {
                vfg.def_node(*dst, l);
                loads.push((l, *addr, *dst));
            }
            Inst::Free { ptr } | Inst::Deref { ptr } | Inst::TaintSink { src: ptr } => {
                let un = vfg.def_node(*ptr, l);
                if let Some(dn) = def_node(&mut vfg, *ptr) {
                    if dn != un {
                        vfg.add_edge(dn, un, EdgeKind::Direct, tt);
                    }
                }
            }
            Inst::AssignNull { dst } | Inst::TaintSource { dst } => {
                vfg.def_node(*dst, l);
            }
            _ => {}
        }
    }
    // Argument/parameter and return bindings (flow-insensitive).
    for l in prog.labels() {
        match prog.inst(l) {
            Inst::Call { dsts, callee, args } => {
                bind(prog, &mut vfg, &def_site, callee, args, dsts, l, tt);
            }
            Inst::Fork { entry, args, .. } => {
                bind(prog, &mut vfg, &def_site, entry, args, &[], l, tt);
            }
            _ => {}
        }
    }
    // Exhaustive store→load product (the expensive part).
    for (i, &(sl, saddr, ssrc)) in stores.iter().enumerate() {
        if i % 64 == 0 && deadline.expired() {
            return Budgeted::TimedOut;
        }
        let spts = &pts.var_pts[saddr.index()];
        if spts.is_empty() {
            continue;
        }
        for &(ll, laddr, ldst) in &loads {
            if !pair_filter(sl, ll) {
                continue;
            }
            let lpts = &pts.var_pts[laddr.index()];
            if spts.iter().any(|o| lpts.contains(o)) {
                let sn = vfg.def_node(ssrc, sl);
                let ln = vfg.def_node(ldst, ll);
                vfg.add_edge(sn, ln, EdgeKind::DataDep, tt);
            }
        }
    }
    Budgeted::Done(vfg)
}

fn prog_store_addr(prog: &Program, l: Label) -> &VarId {
    match prog.inst(l) {
        Inst::Store { addr, .. } => addr,
        _ => unreachable!("caller checked"),
    }
}

#[allow(clippy::too_many_arguments)]
fn bind(
    prog: &Program,
    vfg: &mut Vfg,
    def_site: &[Option<Label>],
    callee: &canary_ir::Callee,
    args: &[VarId],
    dsts: &[VarId],
    _call_label: Label,
    tt: canary_smt::TermId,
) {
    let targets: Vec<canary_ir::FuncId> = match callee {
        canary_ir::Callee::Direct(f) => vec![*f],
        canary_ir::Callee::Indirect(_) => prog
            .funcs
            .iter()
            .filter(|f| f.params.len() == args.len())
            .map(|f| f.id)
            .collect(),
    };
    for t in targets {
        let func = prog.func(t);
        for (i, &a) in args.iter().enumerate() {
            let (Some(&p), Some(al)) = (func.params.get(i), def_site[a.index()]) else {
                continue;
            };
            let Some(pl) = def_site[p.index()] else { continue };
            let an = vfg.def_node(a, al);
            let pn = vfg.def_node(p, pl);
            vfg.add_edge(an, pn, EdgeKind::Direct, tt);
        }
        for fl in func.labels() {
            if let Inst::Return { vals } = prog.inst(fl) {
                for (k, &d) in dsts.iter().enumerate() {
                    let Some(&rv) = vals.get(k) else { continue };
                    // Anchor at the returned variable's definition so the
                    // flow chain from its producers stays connected.
                    let Some(rl) = def_site[rv.index()] else { continue };
                    let rn = vfg.def_node(rv, rl);
                    let Some(dl) = def_site[d.index()] else { continue };
                    let dn = vfg.def_node(d, dl);
                    vfg.add_edge(rn, dn, EdgeKind::Direct, tt);
                }
            }
        }
    }
}

/// A path-insensitive finding: no guards, no interleaving validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BaselineReport {
    /// The source statement.
    pub source: Label,
    /// The sink statement.
    pub sink: Label,
}

/// The unguarded source-sink checker (§7.2's baseline behaviour): a
/// report for every deref reachable in the VFG from any object the
/// freed pointer may reference. No path conditions and no execution
/// order means everything graph-reachable is reported — the source of
/// the near-100 % false-positive rates in Tbl. 1.
pub fn check_uaf_unguarded(
    prog: &Program,
    vfg: &Vfg,
    deadline: Deadline,
) -> Budgeted<Vec<BaselineReport>> {
    let mut def_site: Vec<Option<Label>> = vec![None; prog.vars.len()];
    for l in prog.labels() {
        if let Some(d) = prog.inst(l).def() {
            def_site[d.index()] = Some(l);
        }
    }
    for func in &prog.funcs {
        if let Some(first) = func.labels().next() {
            for &p in &func.params {
                if def_site[p.index()].is_none() {
                    def_site[p.index()] = Some(first);
                }
            }
        }
    }
    let mut sink_of: Vec<(NodeId, Label)> = Vec::new();
    for l in prog.labels() {
        if let Inst::Deref { ptr } = prog.inst(l) {
            if let Some(n) = vfg.find(NodeKind::Def { var: *ptr, label: l }) {
                sink_of.push((n, l));
            }
        }
    }
    let mut out = Vec::new();
    for free_label in prog.free_sites() {
        if deadline.expired() {
            return Budgeted::TimedOut;
        }
        let Inst::Free { ptr } = prog.inst(free_label) else {
            continue;
        };
        let Some(dl) = def_site[ptr.index()] else { continue };
        let Some(pn) = vfg.find(NodeKind::Def { var: *ptr, label: dl }) else {
            continue;
        };
        for obj in vfg.objects_reaching(pn) {
            let Some(on) = vfg
                .node_ids()
                .find(|&n| matches!(vfg.kind(n), NodeKind::Object { obj: o, .. } if o == obj))
            else {
                continue;
            };
            let reach: HashSet<NodeId> = vfg.reachable_from(on).into_iter().collect();
            for &(sn, sl) in &sink_of {
                if sl != free_label && reach.contains(&sn) {
                    out.push(BaselineReport {
                        source: free_label,
                        sink: sl,
                    });
                }
            }
        }
    }
    out.sort_by_key(|r| (r.source, r.sink));
    out.dedup();
    Budgeted::Done(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn deadline_none_never_expires() {
        assert!(!Deadline::none().expired());
    }

    #[test]
    fn deadline_zero_expires_immediately() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
    }

    #[test]
    fn budgeted_accessors() {
        let d: Budgeted<u32> = Budgeted::Done(7);
        assert!(!d.timed_out());
        assert_eq!(d.expect_done("x"), 7);
        let t: Budgeted<u32> = Budgeted::TimedOut;
        assert!(t.timed_out());
    }

    #[test]
    fn points_to_bytes_grow_with_entries() {
        let prog = canary_ir::parse("fn main() { p = alloc o; use p; }").unwrap();
        let mut pts = PointsTo::for_program(&prog);
        pts.refresh_bytes();
        let b0 = pts.bytes;
        pts.var_pts[0].insert(canary_ir::ObjId::new(0));
        pts.refresh_bytes();
        assert!(pts.bytes > b0);
    }
}
