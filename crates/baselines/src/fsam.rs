//! An Fsam-style baseline (Sui, Di, Xue — CGO 2016).
//!
//! Fsam is a sparse *flow-sensitive* pointer analysis for multithreaded
//! programs: it computes per-statement points-to states and iterates a
//! thread-interference recomputation — loads may observe stores from
//! any thread that may run in parallel — until a global fixpoint.
//! Flow-sensitivity makes each round substantially more expensive than
//! Andersen's (per-label cell states must be kept), which reproduces
//! Fsam's position in Fig. 7: the slowest and most memory-hungry of the
//! three tools. It remains path-insensitive, so the Fig. 2 false
//! positive survives.

use std::collections::{HashMap, HashSet};

use canary_ir::{
    CallGraph, FuncId, Inst, Label, ObjId, OrderGraph, Program, Terminator, ThreadStructure,
};
use canary_vfg::Vfg;

use crate::common::{
    build_unguarded_vfg, check_uaf_unguarded, BaselineReport, Budgeted, Deadline, PointsTo,
};

/// Result of an Fsam run.
#[derive(Debug)]
pub struct FsamResult {
    /// Final (whole-program) points-to facts.
    pub pts: PointsTo,
    /// The flow-sensitive VFG.
    pub vfg: Vfg,
    /// Number of interference recomputation rounds.
    pub rounds: usize,
    /// Approximate bytes of the per-label states (the memory blowup of
    /// Fig. 7b).
    pub state_bytes: usize,
}

type CellState = HashMap<ObjId, HashSet<ObjId>>;

/// Runs the flow-sensitive multithreaded points-to analysis.
pub fn solve(prog: &Program, deadline: Deadline) -> Budgeted<FsamResult> {
    let cg = CallGraph::build(prog);
    let ts = ThreadStructure::compute(prog, &cg);
    let mut pts = PointsTo::for_program(prog);
    // Seed alloc and gather the copy relation (flow-insensitive for
    // top-level SSA variables, as in the original).
    let mut copy_edges: Vec<(canary_ir::VarId, canary_ir::VarId)> = Vec::new();
    for l in prog.labels() {
        match prog.inst(l) {
            Inst::Alloc { dst, obj } => {
                pts.var_pts[dst.index()].insert(*obj);
            }
            Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
                copy_edges.push((*src, *dst));
            }
            Inst::Bin { dst, lhs, rhs, .. } => {
                copy_edges.push((*lhs, *dst));
                copy_edges.push((*rhs, *dst));
            }
            Inst::Call { dsts, args, .. } => {
                for &g in cg.targets(l) {
                    bind_edges(prog, g, args, dsts, &mut copy_edges);
                }
            }
            Inst::Fork { args, .. } => {
                for &g in cg.targets(l) {
                    bind_edges(prog, g, args, &[], &mut copy_edges);
                }
            }
            _ => {}
        }
    }
    fn bind_edges(
        prog: &Program,
        g: FuncId,
        args: &[canary_ir::VarId],
        dsts: &[canary_ir::VarId],
        copy_edges: &mut Vec<(canary_ir::VarId, canary_ir::VarId)>,
    ) {
        {
            {
                {
                    let func = prog.func(g);
                    for (i, &a) in args.iter().enumerate() {
                        if let Some(&p) = func.params.get(i) {
                            copy_edges.push((a, p));
                        }
                    }
                    for fl in func.labels() {
                        if let Inst::Return { vals } = prog.inst(fl) {
                            for (k, &d) in dsts.iter().enumerate() {
                                if let Some(&rv) = vals.get(k) {
                                    copy_edges.push((rv, d));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Interference set: per round, the union of cross-thread store
    // effects (object → possible values) visible to each thread.
    let mut rounds = 0usize;
    let mut label_states: HashMap<Label, CellState> = HashMap::new();
    loop {
        rounds += 1;
        if deadline.expired() {
            return Budgeted::TimedOut;
        }
        let mut changed = false;
        // Close the copy relation first.
        loop {
            let mut grew = false;
            for &(src, dst) in &copy_edges {
                let add: Vec<ObjId> = pts.var_pts[src.index()]
                    .difference(&pts.var_pts[dst.index()])
                    .copied()
                    .collect();
                if !add.is_empty() {
                    grew = true;
                    pts.var_pts[dst.index()].extend(add);
                }
            }
            if !grew {
                break;
            }
            changed = true;
            if deadline.expired() {
                return Budgeted::TimedOut;
            }
        }
        // Cross-thread store effects per thread (the interference input
        // for this round): store in thread t contributes to loads in
        // every *other* thread.
        let mut foreign: Vec<CellState> = vec![CellState::new(); prog.threads.len()];
        for l in prog.labels() {
            if let Inst::Store { addr, src } = prog.inst(l) {
                let threads = ts.threads_of(prog, l);
                for o in pts.var_pts[addr.index()].clone() {
                    for (ti, f) in foreign.iter_mut().enumerate() {
                        if threads.iter().any(|t| t.index() == ti) {
                            continue;
                        }
                        f.entry(o)
                            .or_default()
                            .extend(pts.var_pts[src.index()].iter().copied());
                    }
                }
            }
        }
        // Flow-sensitive pass over every function.
        for f in 0..prog.funcs.len() {
            if deadline.expired() {
                return Budgeted::TimedOut;
            }
            changed |= flow_pass(
                prog,
                &ts,
                FuncId::new(f as u32),
                &mut pts,
                &foreign,
                &mut label_states,
            );
        }
        if !changed {
            break;
        }
    }
    pts.refresh_bytes();
    // Per-label states are the memory signature of flow-sensitivity.
    let state_bytes: usize = label_states
        .values()
        .map(|st| {
            st.values().map(HashSet::len).sum::<usize>() * 16 + st.len() * 48 + 32
        })
        .sum();
    let og = OrderGraph::build(prog, &cg);
    let filter = |sl: Label, ll: Label| -> bool {
        // Flow-sensitive sparsity: same-thread pairs need a def-use
        // order; cross-thread pairs are interference candidates.
        if ts.may_be_in_distinct_threads(prog, sl, ll) {
            true
        } else {
            og.happens_before(sl, ll)
        }
    };
    let vfg = match build_unguarded_vfg(prog, &pts, deadline, &filter) {
        Budgeted::Done(v) => v,
        Budgeted::TimedOut => return Budgeted::TimedOut,
    };
    Budgeted::Done(FsamResult {
        pts,
        vfg,
        rounds,
        state_bytes,
    })
}

/// One flow-sensitive walk of a function: blocks in reverse post-order,
/// cell states merged at joins, loads reading local state ∪ foreign
/// (cross-thread) effects.
fn flow_pass(
    prog: &Program,
    ts: &ThreadStructure,
    f: FuncId,
    pts: &mut PointsTo,
    foreign: &[CellState],
    label_states: &mut HashMap<Label, CellState>,
) -> bool {
    let func = prog.func(f);
    let mut changed = false;
    let mut block_in: HashMap<u32, CellState> = HashMap::new();
    block_in.insert(func.entry.0, CellState::new());
    for blk in func.reverse_post_order() {
        let mut state = block_in.remove(&blk.0).unwrap_or_default();
        for &l in &func.block(blk).stmts {
            match prog.inst(l) {
                Inst::Store { addr, src } => {
                    let addrs: Vec<ObjId> = pts.var_pts[addr.index()].iter().copied().collect();
                    let strong = addrs.len() == 1;
                    for o in addrs {
                        let vals: HashSet<ObjId> = pts.var_pts[src.index()].clone();
                        let cell = state.entry(o).or_default();
                        if strong {
                            *cell = vals;
                        } else {
                            cell.extend(vals);
                        }
                        // Whole-program summary set for the VFG stage.
                        let add: Vec<ObjId> = state[&o]
                            .difference(&pts.cell_pts[o.index()])
                            .copied()
                            .collect();
                        if !add.is_empty() {
                            changed = true;
                            pts.cell_pts[o.index()].extend(add);
                        }
                    }
                }
                Inst::Load { dst, addr } => {
                    let addrs: Vec<ObjId> = pts.var_pts[addr.index()].iter().copied().collect();
                    let my_threads = ts.threads_of(prog, l).to_vec();
                    for o in addrs {
                        let mut incoming: HashSet<ObjId> =
                            state.get(&o).cloned().unwrap_or_default();
                        for t in &my_threads {
                            if let Some(vals) = foreign[t.index()].get(&o) {
                                incoming.extend(vals.iter().copied());
                            }
                        }
                        let add: Vec<ObjId> = incoming
                            .difference(&pts.var_pts[dst.index()])
                            .copied()
                            .collect();
                        if !add.is_empty() {
                            changed = true;
                            pts.var_pts[dst.index()].extend(add);
                        }
                    }
                    label_states.insert(l, state.clone());
                }
                _ => {}
            }
        }
        match &func.block(blk).term {
            Terminator::Exit => {}
            term => {
                for succ in term.successors() {
                    let entry = block_in.entry(succ.0).or_default();
                    for (o, vals) in &state {
                        entry.entry(*o).or_default().extend(vals.iter().copied());
                    }
                }
            }
        }
    }
    changed
}

/// Full Fsam run: flow-sensitive VFG + unguarded UAF checking.
pub fn check_uaf(prog: &Program, deadline: Deadline) -> Budgeted<Vec<BaselineReport>> {
    match solve(prog, deadline) {
        Budgeted::Done(r) => check_uaf_unguarded(prog, &r.vfg, deadline),
        Budgeted::TimedOut => Budgeted::TimedOut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::parse;

    #[test]
    fn flow_sensitive_strong_update_applies() {
        let prog = parse(
            "fn main() { a = alloc oa; b = alloc ob; cell = alloc c; *cell = a; *cell = b; y = *cell; use y; }",
        )
        .unwrap();
        let r = solve(&prog, Deadline::none()).expect_done("no deadline");
        let main = prog.func_by_name("main").unwrap();
        let y = prog.var_by_name(main, "y").unwrap();
        let ob = prog.obj_by_name("ob").unwrap();
        // Strong update: y sees only the second store.
        assert_eq!(
            r.pts.var_pts[y.index()].iter().copied().collect::<Vec<_>>(),
            vec![ob]
        );
    }

    #[test]
    fn cross_thread_store_visible_to_load() {
        let prog = parse(
            "fn main() { x = alloc o1; fork t w(x); c = *x; use c; }
             fn w(y) { b = alloc o2; *y = b; }",
        )
        .unwrap();
        let r = solve(&prog, Deadline::none()).expect_done("no deadline");
        let main = prog.func_by_name("main").unwrap();
        let c = prog.var_by_name(main, "c").unwrap();
        let o2 = prog.obj_by_name("o2").unwrap();
        assert!(r.pts.var_pts[c.index()].contains(&o2));
        assert!(r.rounds >= 1);
    }

    #[test]
    fn reports_fig2_false_positive() {
        let prog = parse(
            r#"
            fn main(a) {
                x = alloc o1;
                *x = a;
                fork t thread1(x);
                if (theta1) { c = *x; use c; }
            }
            fn thread1(y) {
                b = alloc o2;
                if (!theta1) { *y = b; free b; }
            }
        "#,
        )
        .unwrap();
        let reports = check_uaf(&prog, Deadline::none()).expect_done("no deadline");
        assert!(!reports.is_empty(), "path-insensitive: FP expected");
    }

    #[test]
    fn same_thread_use_before_free_is_filtered_by_flow_order() {
        // Unlike Saber, flow-sensitive def-use needs store→load order,
        // so this sequential non-bug yields fewer spurious edges; the
        // direct-flow report may remain, but the check must terminate.
        let prog = parse("fn main() { p = alloc o; use p; free p; }").unwrap();
        let reports = check_uaf(&prog, Deadline::none()).expect_done("no deadline");
        // Saber reports this (order-insensitive); Fsam's sparser VFG
        // still reaches the deref through the direct def edge, so we
        // only assert it does not *crash* and reports at most Saber's.
        assert!(reports.len() <= 1);
    }

    #[test]
    fn state_bytes_account_for_labels() {
        let prog = parse(
            "fn main() { x = alloc o1; cell = alloc c; *cell = x; y = *cell; use y; }",
        )
        .unwrap();
        let r = solve(&prog, Deadline::none()).expect_done("no deadline");
        assert!(r.state_bytes > 0);
    }

    #[test]
    fn timeout_propagates() {
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let d = Deadline::after(std::time::Duration::from_nanos(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(check_uaf(&prog, d).timed_out());
    }
}
