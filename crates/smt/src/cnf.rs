//! Tseitin conversion from [`TermPool`] terms to CNF over SAT variables.
//!
//! Each distinct atom (Boolean or order) gets one SAT variable; internal
//! gates get auxiliary variables. The [`Encoding`] remembers which SAT
//! variable carries which order atom so the CDCL(T) loop can extract the
//! oriented edges from a propositional model.

use std::collections::HashMap;

use crate::sat::{Lit, SatSolver, Var};
use crate::term::{EventId, Node, TermId, TermPool};

/// The atom ↔ SAT-variable mapping produced by [`encode`].
#[derive(Debug, Default)]
pub struct Encoding {
    /// Boolean atom index → SAT var.
    pub bool_vars: HashMap<u32, Var>,
    /// Normalized order atom `(a, b)` (with `a < b`) → SAT var. The var
    /// being *false* asserts the reversed order `b < a` (total order
    /// over distinct events).
    pub order_vars: HashMap<(EventId, EventId), Var>,
    /// Gate variable per term, memoized across roots.
    gate: HashMap<TermId, Lit>,
}

impl Encoding {
    /// The order atoms in a propositional model, oriented by the model.
    /// Returns `(from, to, var)` triples, sorted by edge for
    /// determinism (the backing map iterates in hash order, which
    /// would otherwise leak into theory-lemma and witness extraction).
    pub fn oriented_edges(&self, model: &[bool]) -> Vec<(EventId, EventId, Var)> {
        let mut out = Vec::with_capacity(self.order_vars.len());
        for (&(a, b), &v) in &self.order_vars {
            if model[v.index()] {
                out.push((a, b, v));
            } else {
                out.push((b, a, v));
            }
        }
        out.sort_unstable();
        out
    }

    /// The Boolean-atom assignment in a propositional model, as sorted
    /// `(atom index, value)` pairs.
    pub fn bool_assignment(&self, model: &[bool]) -> Vec<(u32, bool)> {
        let mut out: Vec<(u32, bool)> = self
            .bool_vars
            .iter()
            .map(|(&atom, &v)| (atom, model[v.index()]))
            .collect();
        out.sort_unstable();
        out
    }
}

/// Encodes `root` into `solver`, asserting it true. Returns the literal
/// representing the root (already asserted).
///
/// Call repeatedly with the same `Encoding` to conjoin several roots
/// into one solver (shared atoms unify automatically).
pub fn encode(pool: &TermPool, root: TermId, solver: &mut SatSolver, enc: &mut Encoding) -> Lit {
    let lit = gate_of(pool, root, solver, enc);
    solver.add_clause(&[lit]);
    lit
}

/// Encodes `t` under an *activation literal*: asserts `act → t`, so the
/// constraint is inert (trivially satisfiable by `¬act`) until `act` is
/// passed as an assumption. This is how the query-family solver keeps
/// one persistent solver per family: the shared conjunct prefix is
/// asserted outright, each member's delta conjuncts are gated, and a
/// member's query is one `solve_with_assumptions` call over its
/// activation literals — learned clauses stay valid across members
/// because the gating clause itself is part of the clause set.
pub fn encode_gated(
    pool: &TermPool,
    t: TermId,
    solver: &mut SatSolver,
    enc: &mut Encoding,
    act: Lit,
) -> Lit {
    let g = gate_of(pool, t, solver, enc);
    solver.add_clause(&[act.negate(), g]);
    g
}

/// Returns a literal equisatisfiably representing `t` (without
/// asserting it).
pub fn gate_of(pool: &TermPool, t: TermId, solver: &mut SatSolver, enc: &mut Encoding) -> Lit {
    if let Some(&l) = enc.gate.get(&t) {
        return l;
    }
    let lit = match pool.node(t) {
        Node::True => {
            let v = solver.new_var();
            solver.add_clause(&[Lit::pos(v)]);
            Lit::pos(v)
        }
        Node::False => {
            let v = solver.new_var();
            solver.add_clause(&[Lit::neg(v)]);
            Lit::pos(v)
        }
        Node::BoolAtom(i) => {
            let i = *i;
            let v = *enc
                .bool_vars
                .entry(i)
                .or_insert_with(|| solver.new_var());
            Lit::pos(v)
        }
        Node::Order(a, b) => {
            let key = (*a, *b);
            let v = *enc
                .order_vars
                .entry(key)
                .or_insert_with(|| solver.new_var());
            Lit::pos(v)
        }
        Node::Not(inner) => {
            let inner = *inner;
            gate_of(pool, inner, solver, enc).negate()
        }
        Node::And(parts) => {
            let parts = parts.clone();
            let lits: Vec<Lit> = parts
                .iter()
                .map(|&p| gate_of(pool, p, solver, enc))
                .collect();
            let g = Lit::pos(solver.new_var());
            // g → l_i
            for &l in &lits {
                solver.add_clause(&[g.negate(), l]);
            }
            // (∧ l_i) → g
            let mut clause: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
            clause.push(g);
            solver.add_clause(&clause);
            g
        }
        Node::Or(parts) => {
            let parts = parts.clone();
            let lits: Vec<Lit> = parts
                .iter()
                .map(|&p| gate_of(pool, p, solver, enc))
                .collect();
            let g = Lit::pos(solver.new_var());
            // l_i → g
            for &l in &lits {
                solver.add_clause(&[l.negate(), g]);
            }
            // g → (∨ l_i)
            let mut clause: Vec<Lit> = lits.clone();
            clause.push(g.negate());
            solver.add_clause(&clause);
            g
        }
    };
    enc.gate.insert(t, lit);
    lit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    #[test]
    fn atom_assertion_is_sat_with_atom_true() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let mut s = SatSolver::new();
        let mut enc = Encoding::default();
        encode(&pool, a, &mut s, &mut enc);
        match s.solve() {
            SatResult::Sat(m) => {
                let v = enc.bool_vars[&0];
                assert!(m[v.index()]);
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let na = pool.not(a);
        let mut s = SatSolver::new();
        let mut enc = Encoding::default();
        // Conjoin two roots sharing the atom.
        encode(&pool, a, &mut s, &mut enc);
        encode(&pool, na, &mut s, &mut enc);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn or_requires_one_branch() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let b = pool.bool_atom(1);
        let na = pool.not(a);
        let nb = pool.not(b);
        let or = pool.or2(a, b);
        let mut s = SatSolver::new();
        let mut enc = Encoding::default();
        encode(&pool, or, &mut s, &mut enc);
        encode(&pool, na, &mut s, &mut enc);
        encode(&pool, nb, &mut s, &mut enc);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn nested_formula_roundtrip_model() {
        // (a ∨ b) ∧ (¬a ∨ c) ∧ ¬c  ⇒ model must have b, ¬a, ¬c.
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let b = pool.bool_atom(1);
        let c = pool.bool_atom(2);
        let na = pool.not(a);
        let nc = pool.not(c);
        let f1 = pool.or2(a, b);
        let f2 = pool.or2(na, c);
        let all = pool.and([f1, f2, nc]);
        let mut s = SatSolver::new();
        let mut enc = Encoding::default();
        encode(&pool, all, &mut s, &mut enc);
        match s.solve() {
            SatResult::Sat(m) => {
                assert!(!m[enc.bool_vars[&0].index()]);
                assert!(m[enc.bool_vars[&1].index()]);
                assert!(!m[enc.bool_vars[&2].index()]);
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn oriented_edges_follow_model() {
        let mut pool = TermPool::new();
        let o12 = pool.order_lt(1, 2);
        let o21 = pool.order_lt(2, 1); // = ¬o12
        let mut s = SatSolver::new();
        let mut enc = Encoding::default();
        encode(&pool, o21, &mut s, &mut enc);
        let _ = o12;
        match s.solve() {
            SatResult::Sat(m) => {
                let edges = enc.oriented_edges(&m);
                assert_eq!(edges.len(), 1);
                assert_eq!((edges[0].0, edges[0].1), (2, 1));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }
}
