//! # canary-smt
//!
//! The SMT substrate of the Canary reproduction: a CDCL(T) solver for
//! the constraint language the analyses emit — Boolean combinations of
//! opaque branch atoms and strict-order atoms `O_a < O_b` over execution
//! events, interpreted under sequential consistency (every model must
//! extend to a total order of events).
//!
//! The paper builds on Z3 (§6); Z3 is unavailable offline, and the
//! fragment Canary needs is exactly propositional logic + strict partial
//! orders, so this crate implements it from scratch:
//!
//! * [`TermPool`] — hash-consed terms with simplifying constructors;
//! * [`SatSolver`] — a CDCL SAT core (watched literals, 1UIP learning,
//!   VSIDS, Luby restarts, assumptions);
//! * [`theory`] — the order theory: a model is consistent iff its
//!   oriented order edges are acyclic;
//! * [`check`]/[`check_all`] — the lazy CDCL(T) loop plus the §5.2
//!   optimizations (semi-decision prefilter, per-query parallelism,
//!   cube-and-conquer).
//!
//! # Examples
//!
//! Refuting the Fig. 2 false positive:
//!
//! ```
//! use canary_smt::{check, SmtResult, SolverOptions, SolverStats, TermPool};
//!
//! let mut pool = TermPool::new();
//! let theta = pool.bool_atom(0);
//! let not_theta = pool.not(theta);
//! let store_before_load = pool.order_lt(13, 6);
//! let phi = pool.and([theta, not_theta, store_before_load]);
//! let stats = SolverStats::default();
//! assert_eq!(
//!     check(&pool, phi, &SolverOptions::default(), &stats),
//!     SmtResult::Unsat
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cnf;
pub mod core;
pub mod sat;
pub mod scratch;
pub mod simplify;
pub mod solver;
pub mod term;
pub mod theory;

pub use cnf::{encode, encode_gated, Encoding};
pub use core::{check_conjunction, minimal_core};
pub use sat::{Lit, SatResult, SatSolver, SatStats, Var};
pub use simplify::{obviously_false, obviously_true};
pub use solver::{
    check, check_all, check_all_grouped, check_all_recorded, check_counted, check_witness,
    check_witness_model, Dispatch, GroupedOutcome, QueryCache, QueryOutcome, QueryStats, SmtResult,
    SolverOptions, SolverStats, SolverStrategy, WitnessModel, WorkerLoad, DEFAULT_CUBE_BUDGET,
    DEFAULT_SHARDS,
};
pub use scratch::{ScratchLog, ScratchPool, TermRemap};
pub use term::{AtomSet, EventId, Node, TermBuild, TermId, TermPool};
pub use theory::{check_orders, orders_consistent, OrderEdge, TheoryResult};
