//! Hash-consed terms of the constraint language Canary emits.
//!
//! The guards of §4 and the partial-order constraints of §5 are Boolean
//! combinations of exactly two atom kinds:
//!
//! * **branch atoms** `b_i` — the opaque path-condition atoms `θ`;
//! * **order atoms** `O_{e1} < O_{e2}` — strict orders between execution
//!   events (statement labels).
//!
//! Terms are interned in a [`TermPool`]; equal structures share one
//! [`TermId`], so the heavy conjunction-building of guard aggregation is
//! cheap and equality is O(1). Constructors apply light rewrites
//! (constant folding, flattening, complement detection) — the
//! "lightweight semi-decision procedures" of §5.2 live on top of these
//! in [`crate::simplify`].

use std::collections::HashMap;
use std::fmt;

/// An interned term handle.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// Raw index into the pool.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// An execution event (a statement label in Canary's encoding).
pub type EventId = u32;

/// A term node. Negation is kept explicit; `And`/`Or` are n-ary and
/// flattened.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An opaque Boolean (branch-condition) atom.
    BoolAtom(u32),
    /// Strict order `O_a < O_b` between two distinct events, normalized
    /// so that `a < b` numerically (the reversed order is `Not`).
    Order(EventId, EventId),
    /// Logical negation.
    Not(TermId),
    /// N-ary conjunction (flattened, deduplicated, sorted).
    And(Vec<TermId>),
    /// N-ary disjunction (flattened, deduplicated, sorted).
    Or(Vec<TermId>),
}

/// The interning pool for terms.
///
/// Construction requires `&mut self`; reading is `&self`, so a built
/// pool can be shared across solver threads.
#[derive(Debug)]
pub struct TermPool {
    nodes: Vec<Node>,
    dedup: HashMap<Node, TermId>,
}

impl Default for TermPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TermPool {
    /// Creates a pool pre-seeded with `true` and `false`.
    pub fn new() -> Self {
        let mut pool = TermPool {
            nodes: Vec::new(),
            dedup: HashMap::new(),
        };
        pool.intern(Node::True);
        pool.intern(Node::False);
        pool
    }

    /// The constant `true`.
    #[inline]
    pub fn tt(&self) -> TermId {
        TermId(0)
    }

    /// The constant `false`.
    #[inline]
    pub fn ff(&self) -> TermId {
        TermId(1)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool holds only the two constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Approximate heap footprint of the term table in bytes (the
    /// Fig. 7b guard-memory accounting): interned nodes, their N-ary
    /// child vectors, and the dedup index. Deterministic — it depends
    /// only on which terms were interned, never on timing or threads.
    pub fn approx_bytes(&self) -> usize {
        let node = std::mem::size_of::<Node>();
        let child = std::mem::size_of::<TermId>();
        let children: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::And(xs) | Node::Or(xs) => xs.len() * child,
                _ => 0,
            })
            .sum();
        // The dedup map stores each node again plus a TermId value and
        // roughly one word of bucket overhead per entry.
        let dedup_entry = node + child + std::mem::size_of::<usize>();
        self.nodes.len() * node + 2 * children + self.dedup.len() * dedup_entry
    }

    /// The node behind a term id.
    #[inline]
    pub fn node(&self, t: TermId) -> &Node {
        &self.nodes[t.index()]
    }

    fn intern(&mut self, n: Node) -> TermId {
        if let Some(&id) = self.dedup.get(&n) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.dedup.insert(n, id);
        id
    }

    /// Looks up an already-interned node without inserting.
    pub(crate) fn lookup(&self, n: &Node) -> Option<TermId> {
        self.dedup.get(n).copied()
    }

    /// A Boolean (branch) atom.
    pub fn bool_atom(&mut self, idx: u32) -> TermId {
        TermBuild::bool_atom(self, idx)
    }

    /// The strict order `O_a < O_b`; see [`TermBuild::order_lt`].
    pub fn order_lt(&mut self, a: EventId, b: EventId) -> TermId {
        TermBuild::order_lt(self, a, b)
    }

    /// Logical negation with double-negation and constant elimination.
    pub fn not(&mut self, t: TermId) -> TermId {
        TermBuild::not(self, t)
    }

    /// N-ary conjunction; see [`TermBuild::and`].
    pub fn and(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        TermBuild::and(self, ts)
    }

    /// Binary conjunction convenience.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        TermBuild::and2(self, a, b)
    }

    /// N-ary disjunction; see [`TermBuild::or`].
    pub fn or(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        TermBuild::or(self, ts)
    }

    /// Binary disjunction convenience.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        TermBuild::or2(self, a, b)
    }

    /// `a → b` as `¬a ∨ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        TermBuild::implies(self, a, b)
    }

    /// The top-level conjuncts of `t` as a sorted, deduplicated set of
    /// term ids: the parts of an `And` (already canonical by
    /// construction), the empty set for `true`, and the singleton `[t]`
    /// otherwise. Because terms are hash-consed, equal conjunct sets
    /// mean semantically identical conjunctions — the unit the
    /// query-family solver groups, diffs, and subsumption-checks on.
    pub fn conjuncts_of(&self, t: TermId) -> Vec<TermId> {
        match self.node(t) {
            Node::And(xs) => xs.clone(),
            Node::True => Vec::new(),
            _ => vec![t],
        }
    }

    /// Collects the atoms (bool and order) appearing under `t`.
    pub fn atoms_of(&self, t: TermId) -> AtomSet {
        let mut set = AtomSet::default();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                continue;
            }
            seen[x.index()] = true;
            match self.node(x) {
                Node::BoolAtom(i) => {
                    if !set.bools.contains(i) {
                        set.bools.push(*i);
                    }
                }
                Node::Order(a, b) => {
                    if !set.orders.contains(&(*a, *b)) {
                        set.orders.push((*a, *b));
                    }
                }
                Node::Not(inner) => stack.push(*inner),
                Node::And(xs) | Node::Or(xs) => stack.extend(xs.iter().copied()),
                Node::True | Node::False => {}
            }
        }
        set.bools.sort_unstable();
        set.orders.sort_unstable();
        set
    }

    /// Evaluates `t` under full atom assignments. Used by the
    /// brute-force reference solver in tests.
    pub fn eval(
        &self,
        t: TermId,
        bool_val: &dyn Fn(u32) -> bool,
        order_val: &dyn Fn(EventId, EventId) -> bool,
    ) -> bool {
        match self.node(t) {
            Node::True => true,
            Node::False => false,
            Node::BoolAtom(i) => bool_val(*i),
            Node::Order(a, b) => order_val(*a, *b),
            Node::Not(x) => !self.eval(*x, bool_val, order_val),
            Node::And(xs) => xs.iter().all(|&x| self.eval(x, bool_val, order_val)),
            Node::Or(xs) => xs.iter().any(|&x| self.eval(x, bool_val, order_val)),
        }
    }

    /// Renders a term for diagnostics and bug reports.
    pub fn render(&self, t: TermId) -> String {
        match self.node(t) {
            Node::True => "true".into(),
            Node::False => "false".into(),
            Node::BoolAtom(i) => format!("b{i}"),
            Node::Order(a, b) => format!("O{a}<O{b}"),
            Node::Not(x) => format!("!({})", self.render(*x)),
            Node::And(xs) => {
                let parts: Vec<String> = xs.iter().map(|&x| self.render(x)).collect();
                format!("({})", parts.join(" & "))
            }
            Node::Or(xs) => {
                let parts: Vec<String> = xs.iter().map(|&x| self.render(x)).collect();
                format!("({})", parts.join(" | "))
            }
        }
    }
}

/// Term construction over any term store.
///
/// The simplifying constructors (constant folding, flattening,
/// complement detection, absorption, branch-join factoring) are written
/// once here as default methods; a store only supplies three
/// primitives. Two stores implement it:
///
/// * [`TermPool`] — the canonical interning pool;
/// * [`crate::ScratchPool`] — a thread-local overlay over a frozen
///   pool, used by the parallel analysis front-end. Workers build terms
///   through this trait and the overlays are replayed into the base
///   pool afterwards in a deterministic order.
///
/// Ids `TermId(0)`/`TermId(1)` are the constants in every store, so the
/// `tt`/`ff` defaults hold universally.
pub trait TermBuild {
    /// Number of terms visible through this store (base + local for
    /// overlays). The next fresh id is `TermId(term_count())`.
    fn term_count(&self) -> usize;

    /// The node behind a term id.
    fn node(&self, t: TermId) -> &Node;

    /// Interns a structurally canonical node, returning the existing id
    /// when the node is already present.
    ///
    /// Callers outside this module must go through the simplifying
    /// constructors instead: interning a non-canonical node (an
    /// unsorted `And`, a `Not(Not(_))`, …) silently breaks hash-consed
    /// equality.
    #[doc(hidden)]
    fn intern_node(&mut self, n: Node) -> TermId;

    /// The constant `true`.
    #[inline]
    fn tt(&self) -> TermId {
        TermId(0)
    }

    /// The constant `false`.
    #[inline]
    fn ff(&self) -> TermId {
        TermId(1)
    }

    /// A Boolean (branch) atom.
    fn bool_atom(&mut self, idx: u32) -> TermId {
        self.intern_node(Node::BoolAtom(idx))
    }

    /// The strict order `O_a < O_b`. Returns `false` when `a == b`
    /// (an event never precedes itself); reversed pairs are normalized
    /// to the negation of the flipped atom, so `order_lt(b, a)` and
    /// `not(order_lt(a, b))` are the same term — total order over
    /// distinct events, as sequential consistency prescribes (§3.1).
    fn order_lt(&mut self, a: EventId, b: EventId) -> TermId {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => self.ff(),
            Ordering::Less => self.intern_node(Node::Order(a, b)),
            Ordering::Greater => {
                let base = self.intern_node(Node::Order(b, a));
                self.not(base)
            }
        }
    }

    /// Logical negation with double-negation and constant elimination.
    fn not(&mut self, t: TermId) -> TermId {
        match self.node(t) {
            Node::True => self.ff(),
            Node::False => self.tt(),
            Node::Not(inner) => *inner,
            _ => self.intern_node(Node::Not(t)),
        }
    }

    /// N-ary conjunction: flattens nested `And`s, folds constants,
    /// deduplicates, and detects complementary literal pairs.
    fn and(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId
    where
        Self: Sized,
    {
        let mut parts: Vec<TermId> = Vec::new();
        let mut stack: Vec<TermId> = ts.into_iter().collect();
        stack.reverse();
        while let Some(t) = stack.pop() {
            match self.node(t) {
                Node::True => {}
                Node::False => return self.ff(),
                Node::And(inner) => {
                    let mut inner = inner.clone();
                    inner.reverse();
                    stack.extend(inner);
                }
                _ => parts.push(t),
            }
        }
        parts.sort_unstable();
        parts.dedup();
        // Complement detection: x ∧ ¬x ⇒ false.
        for &p in &parts {
            let np = self.not(p);
            if parts.binary_search(&np).is_ok() {
                return self.ff();
            }
        }
        match parts.len() {
            0 => self.tt(),
            1 => parts[0],
            _ => self.intern_node(Node::And(parts)),
        }
    }

    /// Binary conjunction convenience.
    fn and2(&mut self, a: TermId, b: TermId) -> TermId
    where
        Self: Sized,
    {
        self.and([a, b])
    }

    /// N-ary disjunction: dual of [`TermBuild::and`].
    fn or(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId
    where
        Self: Sized,
    {
        let mut parts: Vec<TermId> = Vec::new();
        let mut stack: Vec<TermId> = ts.into_iter().collect();
        stack.reverse();
        while let Some(t) = stack.pop() {
            match self.node(t) {
                Node::False => {}
                Node::True => return self.tt(),
                Node::Or(inner) => {
                    let mut inner = inner.clone();
                    inner.reverse();
                    stack.extend(inner);
                }
                _ => parts.push(t),
            }
        }
        parts.sort_unstable();
        parts.dedup();
        for &p in &parts {
            let np = self.not(p);
            if parts.binary_search(&np).is_ok() {
                return self.tt();
            }
        }
        // Absorption: x ∨ (x ∧ y) = x. Path-condition merges at CFG
        // joins produce this shape constantly; dropping the absorbed
        // conjunction keeps guards from growing along straight-line code.
        if parts.len() > 1 {
            let plain: Vec<TermId> = parts
                .iter()
                .copied()
                .filter(|&p| !matches!(self.node(p), Node::And(_)))
                .collect();
            if !plain.is_empty() {
                parts.retain(|&p| match self.node(p) {
                    Node::And(conj) => !conj.iter().any(|c| plain.contains(c)),
                    _ => true,
                });
            }
        }
        // Branch-join factoring: (x ∧ a) ∨ (x ∧ ¬a) = x — the exact
        // shape a two-armed `if` produces at its join block. Without
        // this rewrite guards grow linearly in the number of preceding
        // branches and every conjunction over them turns quadratic.
        if parts.len() == 2 {
            if let (Node::And(xs), Node::And(ys)) =
                (self.node(parts[0]).clone(), self.node(parts[1]).clone())
            {
                let common: Vec<TermId> =
                    xs.iter().copied().filter(|x| ys.contains(x)).collect();
                let dx: Vec<TermId> =
                    xs.iter().copied().filter(|x| !common.contains(x)).collect();
                let dy: Vec<TermId> =
                    ys.iter().copied().filter(|y| !common.contains(y)).collect();
                if dx.len() == 1 && dy.len() == 1 && self.not(dx[0]) == dy[0] {
                    return self.and(common);
                }
            }
        }
        match parts.len() {
            0 => self.ff(),
            1 => parts[0],
            _ => self.intern_node(Node::Or(parts)),
        }
    }

    /// Binary disjunction convenience.
    fn or2(&mut self, a: TermId, b: TermId) -> TermId
    where
        Self: Sized,
    {
        self.or([a, b])
    }

    /// `a → b` as `¬a ∨ b`.
    fn implies(&mut self, a: TermId, b: TermId) -> TermId
    where
        Self: Sized,
    {
        let na = self.not(a);
        self.or2(na, b)
    }
}

impl TermBuild for TermPool {
    fn term_count(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, t: TermId) -> &Node {
        &self.nodes[t.index()]
    }

    fn intern_node(&mut self, n: Node) -> TermId {
        self.intern(n)
    }
}

/// The atoms occurring in a term.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AtomSet {
    /// Boolean atom indices, sorted.
    pub bools: Vec<u32>,
    /// Normalized order atoms `(a, b)` with `a < b`, sorted.
    pub orders: Vec<(EventId, EventId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_fixed_ids() {
        let p = TermPool::new();
        assert_eq!(p.tt(), TermId(0));
        assert_eq!(p.ff(), TermId(1));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.bool_atom(3);
        let b = p.bool_atom(3);
        assert_eq!(a, b);
        let c1 = p.and2(a, p.tt());
        assert_eq!(c1, a);
    }

    #[test]
    fn and_folds_constants_and_complements() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let na = p.not(a);
        assert_eq!(p.and2(a, na), p.ff());
        assert_eq!(p.and2(a, p.ff()), p.ff());
        assert_eq!(p.and([]), p.tt());
        assert_eq!(p.and([a]), a);
    }

    #[test]
    fn or_folds_constants_and_complements() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let na = p.not(a);
        assert_eq!(p.or2(a, na), p.tt());
        assert_eq!(p.or2(a, p.tt()), p.tt());
        assert_eq!(p.or([]), p.ff());
    }

    #[test]
    fn and_flattens_nested() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let b = p.bool_atom(1);
        let c = p.bool_atom(2);
        let ab = p.and2(a, b);
        let abc1 = p.and2(ab, c);
        let abc2 = p.and([a, b, c]);
        assert_eq!(abc1, abc2);
    }

    #[test]
    fn order_normalization() {
        let mut p = TermPool::new();
        let ab = p.order_lt(1, 2);
        let ba = p.order_lt(2, 1);
        assert_eq!(p.not(ab), ba);
        assert_eq!(p.not(ba), ab);
        assert_eq!(p.order_lt(5, 5), p.ff());
    }

    #[test]
    fn double_negation_cancels() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let na = p.not(a);
        assert_eq!(p.not(na), a);
    }

    #[test]
    fn atoms_of_collects_both_kinds() {
        let mut p = TermPool::new();
        let a = p.bool_atom(7);
        let o = p.order_lt(1, 2);
        let no = p.not(o);
        let t = p.and2(a, no);
        let atoms = p.atoms_of(t);
        assert_eq!(atoms.bools, vec![7]);
        assert_eq!(atoms.orders, vec![(1, 2)]);
    }

    #[test]
    fn eval_respects_structure() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let o = p.order_lt(1, 2);
        let t = p.and2(a, o);
        assert!(p.eval(t, &|_| true, &|_, _| true));
        assert!(!p.eval(t, &|_| false, &|_, _| true));
        let nt = p.not(t);
        assert!(p.eval(nt, &|_| false, &|_, _| true));
    }

    #[test]
    fn render_is_readable() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let o = p.order_lt(3, 4);
        let t = p.and2(a, o);
        let s = p.render(t);
        assert!(s.contains("b0"));
        assert!(s.contains("O3<O4"));
    }
}
