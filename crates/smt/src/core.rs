//! Unsat-core extraction by deletion-based minimization.
//!
//! For a refuted source-sink candidate, the interesting question is
//! *which* constraints killed it — the contradictory branch guards of
//! Fig. 2, a fork/join order, a lock handshake. Given an unsatisfiable
//! conjunction, [`minimal_core`] deletes conjuncts while the remainder
//! stays unsatisfiable, yielding a minimal explanation (w.r.t. single
//! deletions).

use crate::solver::{check, SolverOptions, SolverStats};
use crate::term::{Node, TermId, TermPool};

/// Splits `t` into its top-level conjuncts (`[t]` when not an `And`).
fn conjuncts(pool: &TermPool, t: TermId) -> Vec<TermId> {
    match pool.node(t) {
        Node::And(parts) => parts.clone(),
        _ => vec![t],
    }
}

/// A deletion-minimal unsatisfiable subset of `t`'s top-level
/// conjuncts. Returns `None` when `t` is satisfiable.
///
/// The result is minimal with respect to removing any *single* element
/// — the standard deletion-based core, quadratic in the number of
/// conjuncts with one solver call each.
pub fn minimal_core(
    pool: &TermPool,
    t: TermId,
    opts: &SolverOptions,
    stats: &SolverStats,
) -> Option<Vec<TermId>> {
    if check(pool, t, opts, stats).is_sat() {
        return None;
    }
    let mut core = conjuncts(pool, t);
    let mut i = 0;
    while i < core.len() {
        let mut trial = core.clone();
        trial.remove(i);
        // Re-conjoin on a scratch clone of the pool-owned parts: the
        // conjunction of existing TermIds needs no new interning when
        // checked piecewise, so assemble via a fresh And in a local
        // clone-free way — re-use `check_conjunction`.
        if !check_conjunction(pool, &trial, opts, stats) {
            core.remove(i);
        } else {
            i += 1;
        }
    }
    Some(core)
}

/// Whether the conjunction of `parts` is satisfiable, without mutating
/// the pool (each part is encoded as its own asserted root).
pub fn check_conjunction(
    pool: &TermPool,
    parts: &[TermId],
    _opts: &SolverOptions,
    stats: &SolverStats,
) -> bool {
    use crate::cnf::{encode, Encoding};
    use crate::sat::{SatResult, SatSolver, Var};
    use crate::theory::{check_orders, OrderEdge, TheoryResult};

    let mut sat = SatSolver::new();
    let mut enc = Encoding::default();
    for &p in parts {
        encode(pool, p, &mut sat, &mut enc);
    }
    loop {
        match sat.solve() {
            SatResult::Unsat => return false,
            SatResult::Sat(model) => {
                let oriented = enc.oriented_edges(&model);
                let edges: Vec<OrderEdge> = oriented
                    .iter()
                    .map(|&(from, to, var)| OrderEdge {
                        from,
                        to,
                        atom: var.index(),
                    })
                    .collect();
                match check_orders(&edges) {
                    TheoryResult::Consistent => return true,
                    TheoryResult::Conflict(vars) => {
                        stats
                            .theory_lemmas
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let clause: Vec<crate::sat::Lit> = vars
                            .iter()
                            .map(|&vi| crate::sat::Lit::new(Var(vi as u32), !model[vi]))
                            .collect();
                        if !sat.add_clause(&clause) {
                            return false;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TermPool, SolverOptions, SolverStats) {
        (
            TermPool::new(),
            SolverOptions::default(),
            SolverStats::default(),
        )
    }

    #[test]
    fn sat_input_has_no_core() {
        let (mut pool, opts, stats) = setup();
        let a = pool.bool_atom(0);
        assert!(minimal_core(&pool, a, &opts, &stats).is_none());
    }

    #[test]
    fn contradictory_pair_is_the_whole_core() {
        let (mut pool, opts, stats) = setup();
        let a = pool.bool_atom(0);
        let b = pool.bool_atom(1);
        let c = pool.bool_atom(2);
        let na = pool.not(a);
        // a ∧ ¬a ∧ b ∧ c — only {a, ¬a} is needed... but the pool folds
        // literal complements at construction; hide them in disjunctions.
        let d1 = pool.or2(a, b);
        let nb = pool.not(b);
        let d2 = pool.and2(na, nb);
        let f = pool.and([d1, d2, c]);
        let core = minimal_core(&pool, f, &opts, &stats).expect("unsat");
        // c is irrelevant and must be deleted.
        assert!(!core.contains(&c), "{core:?}");
        assert!(core.len() >= 2);
    }

    #[test]
    fn order_cycle_core_excludes_unrelated_orders() {
        let (mut pool, opts, stats) = setup();
        let o12 = pool.order_lt(1, 2);
        let o23 = pool.order_lt(2, 3);
        let o31 = pool.order_lt(3, 1);
        let unrelated = pool.order_lt(10, 11);
        let f = pool.and([o12, o23, o31, unrelated]);
        let core = minimal_core(&pool, f, &opts, &stats).expect("unsat");
        assert!(!core.contains(&unrelated), "{core:?}");
        assert_eq!(core.len(), 3);
    }

    #[test]
    fn core_stays_unsat() {
        let (mut pool, opts, stats) = setup();
        let o12 = pool.order_lt(1, 2);
        let o21 = pool.order_lt(2, 1);
        let x = pool.bool_atom(5);
        let f = pool.and([o12, o21, x]);
        // o21 = ¬o12 folds to false at construction; the whole term is ff.
        if f == pool.ff() {
            let core = minimal_core(&pool, f, &opts, &stats).expect("unsat");
            assert_eq!(core, vec![pool.ff()]);
        }
    }

    #[test]
    fn check_conjunction_matches_check() {
        let (mut pool, opts, stats) = setup();
        let a = pool.bool_atom(0);
        let o = pool.order_lt(1, 2);
        assert!(check_conjunction(&pool, &[a, o], &opts, &stats));
        let na = pool.not(a);
        assert!(!check_conjunction(&pool, &[a, na], &opts, &stats));
    }
}
