//! The CDCL(T) solving loop and its parallel drivers (§5.2).
//!
//! The propositional skeleton of `Φ_all` is solved by the CDCL core;
//! full models are checked against the strict-partial-order theory, and
//! theory conflicts come back as blocking lemmas. Three §5.2
//! optimizations are implemented and individually switchable for the
//! ablation benches:
//!
//! 1. the semi-decision *prefilter* ([`crate::simplify`]);
//! 2. *parallel portfolio* solving of independent queries (one query per
//!    source-sink path — they share nothing, so they parallelize
//!    embarrassingly);
//! 3. *cube-and-conquer* splitting of a single hard query on its most
//!    frequent atoms.
//!
//! On top of these sits the *query-family* back-end
//! ([`check_all_grouped`], [`SolverStrategy::Incremental`]): related
//! queries (same checker, same source) are solved on one persistent
//! [`SatSolver`] — the shared conjunct prefix is encoded once, each
//! member's delta conjuncts are activated via assumption literals, and
//! learned clauses plus theory lemmas stay alive across the family.
//! Refuted members leave behind an UNSAT-core subsumption entry in a
//! [`QueryCache`], and hash-consed duplicate queries are answered from
//! a result memo, so whole queries are discharged without touching the
//! CDCL core at all.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::cnf::{encode, encode_gated, Encoding};
use crate::sat::{Lit, SatResult, SatSolver, SatStats, Var};
use crate::simplify::obviously_false;
use crate::term::{EventId, Node, TermId, TermPool};
use crate::theory::{check_orders, OrderEdge, TheoryResult};

/// Result of an SMT query.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SmtResult {
    /// A sequentially consistent execution satisfying the constraints
    /// exists.
    Sat,
    /// No such execution exists — the value-flow path is irrealizable.
    Unsat,
}

impl SmtResult {
    /// Whether the query was satisfiable.
    pub fn is_sat(self) -> bool {
        matches!(self, SmtResult::Sat)
    }
}

/// How a batch of related queries is discharged by
/// [`check_all_grouped`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolverStrategy {
    /// One fresh CNF encoding and CDCL solver per query. Kept as the
    /// ablation baseline and as the reference semantics the
    /// equivalence suite compares against.
    Fresh,
    /// Query-family solving: one persistent solver per family with the
    /// shared conjunct prefix asserted once, per-member delta conjuncts
    /// activated through assumption literals, UNSAT-core subsumption,
    /// and hash-consed result memoization.
    Incremental,
}

impl SolverStrategy {
    /// Parses a CLI / env spelling of a strategy.
    pub fn parse(s: &str) -> Option<SolverStrategy> {
        match s {
            "fresh" => Some(SolverStrategy::Fresh),
            "incremental" => Some(SolverStrategy::Incremental),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SolverStrategy::Fresh => "fresh",
            SolverStrategy::Incremental => "incremental",
        }
    }

    /// The default strategy, overridable via `CANARY_SOLVER_STRATEGY`
    /// (the same pattern `CANARY_TEST_THREADS` uses for the thread
    /// count, so CI can ablate without touching every invocation).
    pub fn from_env() -> SolverStrategy {
        match std::env::var("CANARY_SOLVER_STRATEGY") {
            Ok(v) => SolverStrategy::parse(&v).unwrap_or(SolverStrategy::Incremental),
            Err(_) => SolverStrategy::Incremental,
        }
    }
}

/// How [`check_all_grouped`] schedules query families across worker
/// threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// Fixed batching (the ablation baseline): families are split into
    /// `num_threads` contiguous chunks, one sweep per worker, with a
    /// single frozen cache snapshot and one merge barrier for the whole
    /// batch. A worker that drew a cheap chunk idles while the others
    /// finish.
    Static,
    /// Sharded work stealing (the default): families are sharded by
    /// group key, workers drain their home shard and then steal whole
    /// families from other shards in a deterministic scan order; the
    /// cache snapshot rotates at shard-epoch boundaries that depend
    /// only on the family list and the shard count — never on worker
    /// timing — so outcomes stay byte-identical for every thread count.
    WorkSteal,
}

impl Dispatch {
    /// Parses a CLI / env spelling of a dispatcher.
    pub fn parse(s: &str) -> Option<Dispatch> {
        match s {
            "static" => Some(Dispatch::Static),
            "worksteal" => Some(Dispatch::WorkSteal),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Dispatch::Static => "static",
            Dispatch::WorkSteal => "worksteal",
        }
    }

    /// The default dispatcher, overridable via `CANARY_DISPATCH` (the
    /// same env-ablation pattern as `CANARY_SOLVER_STRATEGY`).
    pub fn from_env() -> Dispatch {
        match std::env::var("CANARY_DISPATCH") {
            Ok(v) => Dispatch::parse(&v).unwrap_or(Dispatch::WorkSteal),
            Err(_) => Dispatch::WorkSteal,
        }
    }
}

/// Shard count the work-stealing dispatcher uses when
/// [`SolverOptions::shards`] is 0 (auto). Deliberately independent of
/// the worker thread count: shard-epoch boundaries (and therefore
/// cache-snapshot visibility) must be identical for every `--threads`
/// value.
pub const DEFAULT_SHARDS: usize = 8;

/// Families per shard in one epoch: an epoch spans
/// `shards × EPOCH_FAMILIES_PER_SHARD` families in family order.
const EPOCH_FAMILIES_PER_SHARD: usize = 2;

/// Default conflict budget per family member before a
/// `cube_split`-armed run escalates to cube-and-conquer.
pub const DEFAULT_CUBE_BUDGET: u64 = 256;

/// Options controlling the solving strategy.
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Apply the semi-decision prefilter before full solving.
    pub prefilter: bool,
    /// Worker threads for [`check_all`]; 1 disables parallelism.
    pub num_threads: usize,
    /// Atoms to split on for cube-and-conquer (0 disables). Under the
    /// incremental strategy this arms *hardness escalation*: a family
    /// member that exceeds [`SolverOptions::cube_budget`] conflicts on
    /// the persistent solver is re-solved by a deterministic cube
    /// sweep (§5.2 opt. 3).
    pub cube_split: usize,
    /// Conflict budget per family member before a `cube_split`-armed
    /// run escalates. Ignored when `cube_split` is 0.
    pub cube_budget: u64,
    /// Fresh-per-query or incremental query-family solving.
    pub strategy: SolverStrategy,
    /// How grouped batches are scheduled across worker threads.
    pub dispatch: Dispatch,
    /// Shard count for the work-stealing dispatcher (0 = auto,
    /// [`DEFAULT_SHARDS`]).
    pub shards: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            prefilter: true,
            num_threads: 1,
            cube_split: 0,
            cube_budget: DEFAULT_CUBE_BUDGET,
            strategy: SolverStrategy::from_env(),
            dispatch: Dispatch::from_env(),
            shards: 0,
        }
    }
}

/// Aggregate solver statistics (for the scalability tables). The CDCL
/// search counters (decisions, conflicts, propagations, restarts,
/// learned clauses) accumulate across every query checked against this
/// instance — the per-query breakdown is [`QueryStats`].
#[derive(Debug, Default)]
pub struct SolverStats {
    /// Queries answered by the prefilter alone.
    pub prefiltered: AtomicU64,
    /// Full CDCL(T) queries run.
    pub solved: AtomicU64,
    /// Theory lemmas learned across all queries.
    pub theory_lemmas: AtomicU64,
    /// CDCL decisions across all queries.
    pub decisions: AtomicU64,
    /// CDCL conflicts across all queries.
    pub conflicts: AtomicU64,
    /// Unit propagations across all queries.
    pub propagations: AtomicU64,
    /// Restarts across all queries.
    pub restarts: AtomicU64,
    /// Learned (conflict + theory) clauses retained across all queries.
    pub learned: AtomicU64,
    /// Queries answered from the hash-consed result memo.
    pub memo_hits: AtomicU64,
    /// Queries refuted by UNSAT-core subsumption.
    pub core_subsumed: AtomicU64,
    /// Family members that blew the conflict budget and escalated to
    /// cube-and-conquer (0 unless `cube_split` is armed).
    pub cube_escalated: AtomicU64,
}

impl SolverStats {
    /// Snapshot of (prefiltered, solved, theory lemmas).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.prefiltered.load(Ordering::Relaxed),
            self.solved.load(Ordering::Relaxed),
            self.theory_lemmas.load(Ordering::Relaxed),
        )
    }

    fn absorb(&self, q: &QueryStats) {
        self.decisions.fetch_add(q.decisions, Ordering::Relaxed);
        self.conflicts.fetch_add(q.conflicts, Ordering::Relaxed);
        self.propagations.fetch_add(q.propagations, Ordering::Relaxed);
        self.restarts.fetch_add(q.restarts, Ordering::Relaxed);
        self.learned.fetch_add(q.learned, Ordering::Relaxed);
    }
}

/// Per-query solver work counters — the unit of attribution the
/// observability layer reports (which query was hot, and why).
///
/// For the default strategy (no cube-and-conquer) the counters are
/// fully deterministic: the CDCL core explores the same tree for the
/// same clauses, regardless of how many *other* queries solve
/// concurrently. Under cube-and-conquer the early-exit race makes the
/// counts best-effort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// The query was answered by the semi-decision prefilter alone.
    pub prefiltered: bool,
    /// CDCL decisions.
    pub decisions: u64,
    /// CDCL conflicts analyzed.
    pub conflicts: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Restarts.
    pub restarts: u64,
    /// Learned clauses retained (conflict clauses; theory lemmas are
    /// counted separately).
    pub learned: u64,
    /// Theory (order-cycle) lemmas fed back into the SAT core.
    pub theory_lemmas: u64,
}

impl QueryStats {
    /// Sums another query's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.prefiltered |= other.prefiltered;
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.theory_lemmas += other.theory_lemmas;
    }
}

/// Decides one term with the CDCL(T) loop.
pub fn check(pool: &TermPool, t: TermId, opts: &SolverOptions, stats: &SolverStats) -> SmtResult {
    check_counted(pool, t, opts, stats).0
}

/// Like [`check`], additionally returning the query's own work
/// counters (also accumulated into `stats`).
pub fn check_counted(
    pool: &TermPool,
    t: TermId,
    opts: &SolverOptions,
    stats: &SolverStats,
) -> (SmtResult, QueryStats) {
    let mut q = QueryStats::default();
    if opts.prefilter {
        if t == pool.tt() {
            stats.prefiltered.fetch_add(1, Ordering::Relaxed);
            q.prefiltered = true;
            return (SmtResult::Sat, q);
        }
        if obviously_false(pool, t) {
            stats.prefiltered.fetch_add(1, Ordering::Relaxed);
            q.prefiltered = true;
            return (SmtResult::Unsat, q);
        }
    }
    stats.solved.fetch_add(1, Ordering::Relaxed);
    let res = if opts.cube_split > 0 && opts.num_threads > 1 {
        cube_and_conquer(pool, t, opts, stats, &mut q)
    } else {
        check_with_assumptions(pool, t, &[], stats, &mut q)
    };
    stats.absorb(&q);
    (res, q)
}

/// The core lazy CDCL(T) loop, optionally under cube assumptions given
/// as (bool atom index, value) pairs.
fn check_with_assumptions(
    pool: &TermPool,
    t: TermId,
    cube: &[(u32, bool)],
    stats: &SolverStats,
    q: &mut QueryStats,
) -> SmtResult {
    let mut sat = SatSolver::new();
    let mut enc = Encoding::default();
    encode(pool, t, &mut sat, &mut enc);
    let assumptions: Vec<Lit> = cube
        .iter()
        .filter_map(|&(atom, val)| enc.bool_vars.get(&atom).map(|&v| Lit::new(v, val)))
        .collect();
    let result = loop {
        match sat.solve_with_assumptions(&assumptions) {
            SatResult::Unsat => break SmtResult::Unsat,
            SatResult::Sat(model) => {
                let oriented = enc.oriented_edges(&model);
                let edges: Vec<OrderEdge> = oriented
                    .iter()
                    .map(|&(from, to, var)| OrderEdge {
                        from,
                        to,
                        atom: var.index(),
                    })
                    .collect();
                match check_orders(&edges) {
                    TheoryResult::Consistent => break SmtResult::Sat,
                    TheoryResult::Conflict(vars) => {
                        stats.theory_lemmas.fetch_add(1, Ordering::Relaxed);
                        q.theory_lemmas += 1;
                        // Block this orientation of the cycle.
                        let clause: Vec<Lit> = vars
                            .iter()
                            .map(|&vi| {
                                let v = Var(vi as u32);
                                Lit::new(v, !model[vi])
                            })
                            .collect();
                        if !sat.add_clause(&clause) {
                            break SmtResult::Unsat;
                        }
                    }
                }
            }
        }
    };
    q.decisions += sat.stats.decisions;
    q.conflicts += sat.stats.conflicts;
    q.propagations += sat.stats.propagations;
    q.restarts += sat.stats.restarts;
    q.learned += sat.num_learnt() as u64;
    result
}

/// Cube-and-conquer (§5.2): split on the most frequent Boolean atoms
/// and solve the cubes in parallel, each in its own solver.
fn cube_and_conquer(
    pool: &TermPool,
    t: TermId,
    opts: &SolverOptions,
    stats: &SolverStats,
    q: &mut QueryStats,
) -> SmtResult {
    let atoms = pick_split_atoms(pool, t, opts.cube_split);
    if atoms.is_empty() {
        return check_with_assumptions(pool, t, &[], stats, q);
    }
    let n_cubes = 1usize << atoms.len();
    let found_sat = AtomicBool::new(false);
    let next = AtomicU64::new(0);
    let agg = std::sync::Mutex::new(QueryStats::default());
    let workers = opts.num_threads.min(n_cubes).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= n_cubes || found_sat.load(Ordering::Relaxed) {
                    return;
                }
                let cube: Vec<(u32, bool)> = atoms
                    .iter()
                    .enumerate()
                    .map(|(bit, &a)| (a, (i >> bit) & 1 == 1))
                    .collect();
                let mut local = QueryStats::default();
                let res = check_with_assumptions(pool, t, &cube, stats, &mut local);
                agg.lock().expect("no poisoning").merge(&local);
                if res == SmtResult::Sat {
                    found_sat.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    });
    q.merge(&agg.into_inner().expect("scope joined"));
    if found_sat.load(Ordering::Relaxed) {
        SmtResult::Sat
    } else {
        SmtResult::Unsat
    }
}

/// Picks up to `k` Boolean atoms by occurrence count for splitting.
fn pick_split_atoms(pool: &TermPool, t: TermId, k: usize) -> Vec<u32> {
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut stack = vec![t];
    let mut seen = std::collections::HashSet::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        match pool.node(x) {
            Node::BoolAtom(i) => *counts.entry(*i).or_insert(0) += 1,
            Node::Not(inner) => stack.push(*inner),
            Node::And(xs) | Node::Or(xs) => stack.extend(xs.iter().copied()),
            _ => {}
        }
    }
    let mut atoms: Vec<(u32, usize)> = counts.into_iter().collect();
    atoms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    atoms.into_iter().take(k).map(|(a, _)| a).collect()
}

/// A satisfying theory model of a query, in replay-friendly form: the
/// order-constrained events arranged in one concrete sequentially
/// consistent execution order, plus the Boolean-atom assignment the
/// model chose (the branch-atom valuation a concrete replay must run
/// under).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WitnessModel {
    /// Events of the query in one theory-consistent total order
    /// (a topological order of the model's oriented order atoms).
    /// Events that appear in no order atom are omitted — their
    /// position is unconstrained.
    pub events: Vec<crate::term::EventId>,
    /// The model's Boolean-atom assignment as sorted
    /// `(atom index, value)` pairs.
    pub bools: Vec<(u32, bool)>,
    /// The model *slice* over the order theory: the oriented order
    /// atoms `(a, b)` (meaning `O_a < O_b`) the model committed to,
    /// sorted and deduplicated. This is exactly the evidence the
    /// topological order in [`WitnessModel::events`] was built from —
    /// report provenance records it as the SMT justification of the
    /// witness interleaving.
    pub orders: Vec<(crate::term::EventId, crate::term::EventId)>,
}

/// A satisfying witness: the events of the query arranged in one
/// concrete sequentially consistent execution order (a topological
/// order of the model's oriented order atoms).
///
/// Returns `None` when the query is unsatisfiable. Events that appear
/// in no order atom are omitted (their position is unconstrained).
pub fn check_witness(
    pool: &TermPool,
    t: TermId,
    stats: &SolverStats,
) -> Option<Vec<crate::term::EventId>> {
    check_witness_model(pool, t, stats).map(|w| w.events)
}

/// Like [`check_witness`], additionally returning the Boolean-atom
/// assignment of the model — everything a concrete interpreter needs
/// to replay the witness (schedule + branch valuation).
pub fn check_witness_model(
    pool: &TermPool,
    t: TermId,
    stats: &SolverStats,
) -> Option<WitnessModel> {
    let mut sat = SatSolver::new();
    let mut enc = Encoding::default();
    encode(pool, t, &mut sat, &mut enc);
    loop {
        match sat.solve() {
            SatResult::Unsat => return None,
            SatResult::Sat(model) => {
                let oriented = enc.oriented_edges(&model);
                let edges: Vec<OrderEdge> = oriented
                    .iter()
                    .map(|&(from, to, var)| OrderEdge {
                        from,
                        to,
                        atom: var.index(),
                    })
                    .collect();
                match check_orders(&edges) {
                    TheoryResult::Consistent => {
                        let mut orders: Vec<(u32, u32)> =
                            oriented.iter().map(|&(a, b, _)| (a, b)).collect();
                        orders.sort_unstable();
                        orders.dedup();
                        return Some(WitnessModel {
                            events: topological_events(&oriented),
                            bools: enc.bool_assignment(&model),
                            orders,
                        });
                    }
                    TheoryResult::Conflict(vars) => {
                        stats.theory_lemmas.fetch_add(1, Ordering::Relaxed);
                        let clause: Vec<Lit> = vars
                            .iter()
                            .map(|&vi| {
                                let v = Var(vi as u32);
                                Lit::new(v, !model[vi])
                            })
                            .collect();
                        if !sat.add_clause(&clause) {
                            return None;
                        }
                    }
                }
            }
        }
    }
}

/// Topologically sorts the events of an acyclic oriented edge set
/// (Kahn's algorithm; ties broken by event id for determinism).
fn topological_events(
    oriented: &[(crate::term::EventId, crate::term::EventId, Var)],
) -> Vec<crate::term::EventId> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut succs: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut indeg: BTreeMap<u32, usize> = BTreeMap::new();
    for &(a, b, _) in oriented {
        if succs.entry(a).or_default().insert(b) {
            *indeg.entry(b).or_insert(0) += 1;
        }
        indeg.entry(a).or_insert(0);
    }
    let mut ready: BTreeSet<u32> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&e, _)| e)
        .collect();
    let mut out = Vec::with_capacity(indeg.len());
    while let Some(&e) = ready.iter().next() {
        ready.remove(&e);
        out.push(e);
        if let Some(next) = succs.get(&e) {
            for &n in next {
                let d = indeg.get_mut(&n).expect("edge target has an indegree");
                *d -= 1;
                if *d == 0 {
                    ready.insert(n);
                }
            }
        }
    }
    out
}

/// One solved query, with its verdict, work counters, and timing.
/// `started` is the wall-clock instant solving began (relative to
/// whatever epoch the caller tracks); only `result` and `stats` are
/// deterministic — the timing fields carry real wall time.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Sat/unsat verdict.
    pub result: SmtResult,
    /// Deterministic work counters for this query.
    pub stats: QueryStats,
    /// When solving of this query started.
    pub started: Instant,
    /// Wall time spent solving this query.
    pub wall: Duration,
    /// Answered from the hash-consed result memo — no solver touched.
    pub memo_hit: bool,
    /// Refuted because a cached UNSAT core is a subset of this query's
    /// conjunct set — no solver touched.
    pub core_subsumed: bool,
    /// Solved on a persistent family solver via assumption literals
    /// (as opposed to the fresh-per-query path or a cache hit).
    pub incremental: bool,
    /// Blew the per-member conflict budget on the family solver and was
    /// re-solved by the deterministic cube-and-conquer sweep.
    pub cubed: bool,
    /// On refutation under the incremental strategy: the refuted
    /// conjunct set (the assumption core mapped back to named
    /// conjuncts, or the subsuming cached core). Strategy-dependent —
    /// `None` on the fresh path, memo hits and prefiltered queries —
    /// so it feeds human-facing explanations only, never the canonical
    /// audit export.
    pub core: Option<Vec<TermId>>,
}

/// Solves many independent queries, optionally in parallel (§5.2:
/// "the constraints on different source-sink paths are independent of
/// each other, which gives us the ability to leverage parallelization").
pub fn check_all(
    pool: &TermPool,
    queries: &[TermId],
    opts: &SolverOptions,
    stats: &SolverStats,
) -> Vec<SmtResult> {
    check_all_recorded(pool, queries, opts, stats)
        .into_iter()
        .map(|o| o.result)
        .collect()
}

/// Like [`check_all`], returning the full per-query record (verdict,
/// work counters, wall time) in query order.
pub fn check_all_recorded(
    pool: &TermPool,
    queries: &[TermId],
    opts: &SolverOptions,
    stats: &SolverStats,
) -> Vec<QueryOutcome> {
    let solve_one = |q: TermId, o: &SolverOptions| -> QueryOutcome {
        let started = Instant::now();
        let (result, qstats) = check_counted(pool, q, o, stats);
        QueryOutcome {
            result,
            stats: qstats,
            started,
            wall: started.elapsed(),
            memo_hit: false,
            core_subsumed: false,
            incremental: false,
            cubed: false,
            core: None,
        }
    };
    if opts.num_threads <= 1 || queries.len() <= 1 {
        return queries.iter().map(|&q| solve_one(q, opts)).collect();
    }
    let next = AtomicU64::new(0);
    let results: Vec<std::sync::Mutex<Option<QueryOutcome>>> =
        queries.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..opts.num_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= queries.len() {
                    return;
                }
                let sequential = SolverOptions {
                    num_threads: 1,
                    ..opts.clone()
                };
                let r = solve_one(queries[i], &sequential);
                *results[i].lock().expect("no poisoning: workers do not panic") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("scope joined").expect("all indices visited"))
        .collect()
}

/// Cross-query result cache for the incremental strategy: a verdict
/// memo keyed on hash-consed [`TermId`]s plus the UNSAT-core
/// subsumption store.
///
/// Both parts are *semantically* deterministic: the memo value for a
/// term is its theory satisfiability (independent of which family
/// solved it first), and cores are appended in family-commit order at
/// the batch barrier, so lookups never depend on scheduling.
#[derive(Debug, Default)]
pub struct QueryCache {
    /// Hash-consed query term → verdict.
    memo: HashMap<TermId, SmtResult>,
    /// Refuted conjunct sets (each sorted): any query whose conjunct
    /// set is a superset of an entry is unsat without solving.
    cores: Vec<Vec<TermId>>,
    /// Dedup guard for `cores`.
    core_seen: HashSet<Vec<TermId>>,
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized verdict for `t`, if any.
    pub fn lookup(&self, t: TermId) -> Option<SmtResult> {
        self.memo.get(&t).copied()
    }

    /// Memoizes a verdict (first write wins; all writers agree on the
    /// value because the verdict is a property of the term alone).
    pub fn memoize(&mut self, t: TermId, r: SmtResult) {
        self.memo.entry(t).or_insert(r);
    }

    /// Whether some cached refuted conjunct set is a subset of the
    /// (sorted) conjunct set `conj` — if so, `conj` is unsat.
    pub fn subsumes(&self, conj: &[TermId]) -> bool {
        self.subsuming_core(conj).is_some()
    }

    /// The first cached refuted conjunct set (in commit order) that is
    /// a subset of the (sorted) conjunct set `conj` — the certificate
    /// behind a [`QueryOutcome::core_subsumed`] verdict.
    pub fn subsuming_core(&self, conj: &[TermId]) -> Option<&[TermId]> {
        self.cores
            .iter()
            .find(|c| is_sorted_subset(c, conj))
            .map(Vec::as_slice)
    }

    /// Records a refuted conjunct set (must be sorted). Empty sets are
    /// ignored defensively — an empty core would subsume everything.
    pub fn insert_core(&mut self, core: Vec<TermId>) {
        if core.is_empty() || self.core_seen.contains(&core) {
            return;
        }
        self.core_seen.insert(core.clone());
        self.cores.push(core);
    }

    /// Merges another cache into this one (used at the deterministic
    /// per-batch barrier, in family-commit order).
    pub fn merge(&mut self, other: QueryCache) {
        for (t, r) in other.memo {
            self.memoize(t, r);
        }
        for c in other.cores {
            self.insert_core(c);
        }
    }

    /// Number of memoized verdicts.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Number of cached UNSAT cores.
    pub fn core_len(&self) -> usize {
        self.cores.len()
    }
}

/// Whether sorted `sub` is a subset of sorted `sup` (two-pointer walk;
/// exact — never fires on a non-superset).
fn is_sorted_subset(sub: &[TermId], sup: &[TermId]) -> bool {
    let mut i = 0;
    for &x in sup {
        if i == sub.len() {
            return true;
        }
        if sub[i] == x {
            i += 1;
        } else if sub[i] < x {
            return false;
        }
    }
    i == sub.len()
}

/// `all \ minus` for sorted slices, preserving order.
fn sorted_diff(all: &[TermId], minus: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(all.len().saturating_sub(minus.len()));
    let mut j = 0;
    for &x in all {
        while j < minus.len() && minus[j] < x {
            j += 1;
        }
        if j < minus.len() && minus[j] == x {
            j += 1;
        } else {
            out.push(x);
        }
    }
    out
}

/// The result of a grouped batch: per-query outcomes in input order
/// plus family-level aggregates.
#[derive(Debug)]
pub struct GroupedOutcome {
    /// One record per query, in query order.
    pub outcomes: Vec<QueryOutcome>,
    /// Query families formed (0 under [`SolverStrategy::Fresh`]).
    pub families: u64,
    /// Learned clauses alive on family solvers at family end — the
    /// state the fresh strategy would have thrown away between queries.
    pub clauses_retained: u64,
    /// Cache merge barriers executed: shard epochs under
    /// [`Dispatch::WorkSteal`], 1 for the static dispatcher's single
    /// batch barrier, 0 under [`SolverStrategy::Fresh`]. Depends only
    /// on the family list and the shard count, never on worker timing.
    pub epochs: u64,
    /// Per-worker load record. Timing-dependent — surfaced only through
    /// the volatile `canary_dispatch_*` metrics family and the stderr
    /// progress heartbeat, never through deterministic counters,
    /// reports, or the canonical audit export.
    pub worker_loads: Vec<WorkerLoad>,
}

/// How much work one dispatcher worker ended up doing.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerLoad {
    /// Families this worker solved.
    pub families: u64,
    /// Of those, families claimed from a shard other than the worker's
    /// home shard (always 0 under [`Dispatch::Static`]).
    pub stolen: u64,
}

/// Persistent per-family solver state: one [`SatSolver`] carrying the
/// shared conjunct prefix, the Tseitin encoding shared by all members,
/// and the activation literal assigned to each distinct delta conjunct.
struct FamilySolver {
    sat: SatSolver,
    enc: Encoding,
    acts: HashMap<TermId, Lit>,
    /// Activation literal per shared-prefix conjunct, in prefix order.
    /// Empty when the prefix is asserted outright (ungated). The
    /// work-stealing dispatcher gates the prefix too, so assumption
    /// cores name exactly the responsible conjuncts — shared or delta —
    /// which leaves the smallest, most subsuming cores in the cache.
    shared_acts: Vec<(TermId, Lit)>,
    /// Order atoms mentioned by the shared prefix.
    shared_orders: HashSet<(EventId, EventId)>,
    /// Order atoms mentioned by each delta conjunct (memoized).
    delta_orders: HashMap<TermId, Vec<(EventId, EventId)>>,
}

impl FamilySolver {
    fn new(pool: &TermPool, shared: &[TermId], gate_shared: bool) -> FamilySolver {
        let mut sat = SatSolver::new();
        let mut enc = Encoding::default();
        let mut shared_orders = HashSet::new();
        let mut seen = HashSet::new();
        let mut shared_acts = Vec::new();
        for &c in shared {
            if gate_shared {
                let l = Lit::pos(sat.new_var());
                encode_gated(pool, c, &mut sat, &mut enc, l);
                shared_acts.push((c, l));
            } else {
                encode(pool, c, &mut sat, &mut enc);
            }
            collect_order_atoms(pool, c, &mut seen, &mut shared_orders);
        }
        FamilySolver {
            sat,
            enc,
            acts: HashMap::new(),
            shared_acts,
            shared_orders,
            delta_orders: HashMap::new(),
        }
    }
}

/// Collects the canonical `(a, b)` event pair of every order atom
/// reachable from `t`. The persistent family solver carries the union
/// of all members' atoms, but a member's theory check must range over
/// exactly the atoms *its* formula mentions — matching the fresh
/// strategy's semantics and keeping the orientation graph from growing
/// with the family (inactive members' gated atoms are irrelevant to the
/// active query).
fn collect_order_atoms(
    pool: &TermPool,
    t: TermId,
    seen: &mut HashSet<TermId>,
    out: &mut HashSet<(EventId, EventId)>,
) {
    if !seen.insert(t) {
        return;
    }
    match pool.node(t) {
        Node::Order(a, b) => {
            out.insert((*a, *b));
        }
        Node::Not(x) => collect_order_atoms(pool, *x, seen, out),
        Node::And(xs) | Node::Or(xs) => {
            for &x in xs {
                collect_order_atoms(pool, x, seen, out);
            }
        }
        Node::True | Node::False | Node::BoolAtom(_) => {}
    }
}

/// What one family hands back to the batch driver for the
/// deterministic merge.
struct FamilyOutput {
    outcomes: Vec<QueryOutcome>,
    additions: QueryCache,
    clauses_retained: u64,
}

/// Solves one query family on a persistent solver.
///
/// The shared conjunct prefix (intersection of all members' conjunct
/// sets) is asserted outright; each member then becomes one
/// `solve_with_assumptions` call over the activation literals of its
/// delta conjuncts. Learned clauses stay valid across members because
/// the gating clauses are part of the clause set, and theory lemmas
/// are globally valid (they block cyclic orientations). `snapshot` is
/// the cache state at batch start — shared by every family in the
/// batch so results cannot depend on family scheduling.
fn solve_family(
    pool: &TermPool,
    queries: &[TermId],
    opts: &SolverOptions,
    stats: &SolverStats,
    snapshot: &QueryCache,
    gate_shared: bool,
) -> FamilyOutput {
    let conjs: Vec<Vec<TermId>> = queries.iter().map(|&t| pool.conjuncts_of(t)).collect();
    let mut shared = conjs[0].clone();
    for c in conjs.iter().skip(1) {
        shared.retain(|x| c.binary_search(x).is_ok());
    }
    let mut local = QueryCache::new();
    let mut fam: Option<FamilySolver> = None;
    // Solve members with the fewest conjuncts first (ties broken by
    // candidate order, so the schedule is deterministic). A smaller
    // member's conjunct set is closer to the shared prefix, so its
    // refutation leaves behind the most subsuming core — and solving
    // it first keeps the persistent solver small, before larger
    // members' delta encodings pile up. Outcomes are emitted in the
    // caller's order regardless.
    let mut order: Vec<usize> = (0..queries.len()).collect();
    order.sort_by_key(|&i| (conjs[i].len(), i));
    let mut outcomes: Vec<Option<QueryOutcome>> = (0..queries.len()).map(|_| None).collect();
    for i in order {
        let t = queries[i];
        let started = Instant::now();
        let mut q = QueryStats::default();
        let mut memo_hit = false;
        let mut core_subsumed = false;
        let mut incremental = false;
        let mut cubed = false;
        let mut core: Option<Vec<TermId>> = None;
        // The prefilter runs first in both strategies, so the
        // `prefiltered` counter is strategy-invariant.
        let result = if opts.prefilter && t == pool.tt() {
            stats.prefiltered.fetch_add(1, Ordering::Relaxed);
            q.prefiltered = true;
            SmtResult::Sat
        } else if opts.prefilter && obviously_false(pool, t) {
            stats.prefiltered.fetch_add(1, Ordering::Relaxed);
            q.prefiltered = true;
            SmtResult::Unsat
        } else if let Some(r) = snapshot.lookup(t).or_else(|| local.lookup(t)) {
            stats.memo_hits.fetch_add(1, Ordering::Relaxed);
            memo_hit = true;
            r
        } else if let Some(cached) = snapshot
            .subsuming_core(&conjs[i])
            .or_else(|| local.subsuming_core(&conjs[i]))
            .map(<[TermId]>::to_vec)
        {
            stats.core_subsumed.fetch_add(1, Ordering::Relaxed);
            core_subsumed = true;
            core = Some(cached);
            local.memoize(t, SmtResult::Unsat);
            SmtResult::Unsat
        } else {
            stats.solved.fetch_add(1, Ordering::Relaxed);
            incremental = true;
            let was_absent = fam.is_none();
            let fam = fam.get_or_insert_with(|| FamilySolver::new(pool, &shared, gate_shared));
            // The member that forced solver construction also pays for
            // encoding the shared prefix (as the fresh path would).
            let base = if was_absent {
                SatStats::default()
            } else {
                fam.sat.stats
            };
            let (r, escalated, member_core) =
                solve_member(pool, fam, t, &shared, &conjs[i], opts, stats, &mut q, &mut local, base);
            cubed = escalated;
            core = member_core;
            stats.absorb(&q);
            local.memoize(t, r);
            r
        };
        outcomes[i] = Some(QueryOutcome {
            result,
            stats: q,
            started,
            wall: started.elapsed(),
            memo_hit,
            core_subsumed,
            incremental,
            cubed,
            core,
        });
    }
    FamilyOutput {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every member solved"))
            .collect(),
        additions: local,
        clauses_retained: fam.map_or(0, |f| f.sat.num_learnt() as u64),
    }
}

/// One member's CDCL(T) loop on the persistent family solver. On
/// refutation, records the refuted conjunct set (shared prefix plus
/// the assumption core's delta conjuncts) into `local` and returns it
/// as the member's certificate. `base` is the solver-counter baseline
/// this member's work is measured against.
#[allow(clippy::too_many_arguments)]
fn solve_member(
    pool: &TermPool,
    fam: &mut FamilySolver,
    t: TermId,
    shared: &[TermId],
    conj: &[TermId],
    opts: &SolverOptions,
    stats: &SolverStats,
    q: &mut QueryStats,
    local: &mut QueryCache,
    base: SatStats,
) -> (SmtResult, bool, Option<Vec<TermId>>) {
    let deltas = sorted_diff(conj, shared);
    let mut assumptions = Vec::with_capacity(fam.shared_acts.len() + deltas.len());
    let mut by_lit: HashMap<Lit, TermId> =
        HashMap::with_capacity(fam.shared_acts.len() + deltas.len());
    for &(c, l) in &fam.shared_acts {
        by_lit.insert(l, c);
        assumptions.push(l);
    }
    for &d in &deltas {
        let lit = match fam.acts.get(&d) {
            Some(&l) => l,
            None => {
                let l = Lit::pos(fam.sat.new_var());
                encode_gated(pool, d, &mut fam.sat, &mut fam.enc, l);
                let mut seen = HashSet::new();
                let mut orders = HashSet::new();
                collect_order_atoms(pool, d, &mut seen, &mut orders);
                let mut orders: Vec<_> = orders.into_iter().collect();
                orders.sort_unstable();
                fam.delta_orders.insert(d, orders);
                fam.acts.insert(d, l);
                l
            }
        };
        by_lit.insert(lit, d);
        assumptions.push(lit);
    }
    // The theory check ranges over exactly the order atoms of *this*
    // member's formula (shared prefix + its deltas) — the same scope
    // the fresh strategy would orient. Without the restriction the
    // orientation graph grows with every member encoded, and cycles
    // among inactive gated atoms cost spurious lemmas.
    let mut scope: HashSet<Var> = fam
        .shared_orders
        .iter()
        .filter_map(|p| fam.enc.order_vars.get(p).copied())
        .collect();
    for d in &deltas {
        for p in &fam.delta_orders[d] {
            if let Some(&v) = fam.enc.order_vars.get(p) {
                scope.insert(v);
            }
        }
    }
    let before = base;
    let learnt_before = fam.sat.num_learnt() as u64;
    // Hardness budget (§5.2 opt. 3): with cube splitting armed, a
    // member that burns through the conflict budget on the family
    // solver escalates to a deterministic cube sweep *on the same
    // solver* — the cubes are extra assumption literals over the
    // member's own atoms, so the Tseitin encoding, the learnt clauses
    // of the budgeted attempt, and every lemma learnt under one cube
    // carry over to the next. Sequential sweep on purpose: a parallel
    // sweep with an early Sat exit would make the per-query work
    // counters depend on thread timing, breaking their
    // thread-invariance contract (the metrics registry is compared
    // byte-for-byte across `--threads` values).
    let budget = if opts.cube_split > 0 {
        opts.cube_budget.max(1)
    } else {
        u64::MAX
    };
    let mut cubed = false;
    let mut split: Vec<Var> = Vec::new();
    let mut cube_idx = 0usize;
    let result = loop {
        let solved = if cubed {
            let mut under_cube = assumptions.clone();
            under_cube.extend(
                split
                    .iter()
                    .enumerate()
                    .map(|(bit, &v)| Lit::new(v, (cube_idx >> bit) & 1 == 1)),
            );
            Some(fam.sat.solve_with_assumptions(&under_cube))
        } else {
            let spent = fam.sat.stats.conflicts - before.conflicts;
            if budget == u64::MAX {
                Some(fam.sat.solve_with_assumptions(&assumptions))
            } else {
                match budget.checked_sub(spent).filter(|&r| r > 0) {
                    Some(remaining) => {
                        fam.sat.solve_with_assumptions_limited(&assumptions, remaining)
                    }
                    None => None,
                }
            }
        };
        match solved {
            None => {
                stats.cube_escalated.fetch_add(1, Ordering::Relaxed);
                cubed = true;
                split = member_split_vars(pool, t, opts.cube_split, fam, &deltas);
                cube_idx = 0;
                if std::env::var_os("CANARY_SMT_DEBUG").is_some() {
                    eprintln!(
                        "[smt-debug] escalate: deltas={} split={} cubes={}",
                        deltas.len(),
                        split.len(),
                        1usize << split.len(),
                    );
                }
            }
            Some(SatResult::Unsat) if cubed && cube_idx + 1 < (1usize << split.len()) => {
                cube_idx += 1;
            }
            Some(SatResult::Unsat) => break SmtResult::Unsat,
            Some(SatResult::Sat(model)) => {
                let oriented = fam.enc.oriented_edges(&model);
                let edges: Vec<OrderEdge> = oriented
                    .iter()
                    .filter(|&&(_, _, var)| scope.contains(&var))
                    .map(|&(from, to, var)| OrderEdge {
                        from,
                        to,
                        atom: var.index(),
                    })
                    .collect();
                match check_orders(&edges) {
                    TheoryResult::Consistent => break SmtResult::Sat,
                    TheoryResult::Conflict(vars) => {
                        stats.theory_lemmas.fetch_add(1, Ordering::Relaxed);
                        q.theory_lemmas += 1;
                        // Block this orientation of the cycle. The
                        // lemma is theory-valid, so it stays sound for
                        // every later member of the family.
                        let clause: Vec<Lit> = vars
                            .iter()
                            .map(|&vi| {
                                let v = Var(vi as u32);
                                Lit::new(v, !model[vi])
                            })
                            .collect();
                        if !fam.sat.add_clause(&clause) {
                            break SmtResult::Unsat;
                        }
                    }
                }
            }
        }
    };
    if std::env::var_os("CANARY_SMT_DEBUG").is_some() {
        eprintln!(
            "[smt-debug] member: vars={} assumptions={} decisions=+{} props=+{} lemmas={} result={result:?}",
            fam.sat.num_vars(),
            assumptions.len(),
            fam.sat.stats.decisions - before.decisions,
            fam.sat.stats.propagations - before.propagations,
            q.theory_lemmas,
        );
    }
    q.decisions += fam.sat.stats.decisions - before.decisions;
    q.conflicts += fam.sat.stats.conflicts - before.conflicts;
    q.propagations += fam.sat.stats.propagations - before.propagations;
    q.restarts += fam.sat.stats.restarts - before.restarts;
    q.learned += fam.sat.num_learnt() as u64 - learnt_before;
    let mut core = None;
    if result == SmtResult::Unsat {
        let refuted = if cubed {
            // Refuted by the cube sweep: each per-cube assumption core
            // names cube literals, not just conjunct activations, so no
            // minimal conjunct core can be certified — record the full
            // conjunct set (sound: any superset is unsat too).
            conj.to_vec()
        } else if fam.sat.is_ok() {
            if fam.shared_acts.is_empty() {
                // Ungated shared prefix: it is asserted outright, so it
                // is implicitly part of every refutation — record the
                // prefix plus the deltas in the assumption core.
                let mut set: Vec<TermId> = shared.to_vec();
                for l in fam.sat.assumption_core() {
                    if let Some(&d) = by_lit.get(l) {
                        set.push(d);
                    }
                }
                set.sort_unstable();
                set.dedup();
                set
            } else {
                // Gated shared prefix: the assumption core names
                // exactly the responsible conjuncts, shared or delta —
                // the smallest, most subsuming core the solver can
                // certify.
                let mut set: Vec<TermId> = fam
                    .sat
                    .assumption_core()
                    .iter()
                    .filter_map(|l| by_lit.get(l).copied())
                    .collect();
                set.sort_unstable();
                set.dedup();
                if set.is_empty() {
                    // Conflict independent of every activation literal;
                    // claim no more than this member's own formula.
                    conj.to_vec()
                } else {
                    set
                }
            }
        } else if fam.shared_acts.is_empty() {
            // The clause set alone went unsat: definitions are
            // conservative, gating clauses are satisfiable by leaving
            // activations off, and lemmas are theory-valid — so the
            // shared prefix by itself is refuted.
            shared.to_vec()
        } else {
            // Fully gated encoding refuted at clause level: still a
            // sound refutation of this member's formula, but nothing
            // smaller can be certified.
            conj.to_vec()
        };
        local.insert_core(refuted.clone());
        core = Some(refuted);
    }
    (result, cubed, core)
}

/// Deterministic split variables for one member's cube escalation: the
/// member's most frequent Boolean atoms first (mirroring
/// [`pick_split_atoms`]), topped up with its delta order atoms, all
/// resolved to family-solver variables so the cubes can ride the
/// persistent encoding as assumption literals. Inter-thread queries
/// are dominated by order atoms, so the top-up is what usually feeds
/// the sweep. At most `k` variables (≤ `2^k` cubes). An empty result
/// degenerates into one unbudgeted re-solve on the family solver.
fn member_split_vars(
    pool: &TermPool,
    t: TermId,
    k: usize,
    fam: &FamilySolver,
    deltas: &[TermId],
) -> Vec<Var> {
    let mut vars: Vec<Var> = pick_split_atoms(pool, t, k)
        .into_iter()
        .filter_map(|a| fam.enc.bool_vars.get(&a).copied())
        .collect();
    if vars.len() < k {
        let mut orders: Vec<Var> = deltas
            .iter()
            .flat_map(|d| fam.delta_orders[d].iter())
            .filter_map(|p| fam.enc.order_vars.get(p).copied())
            .collect();
        orders.sort_unstable();
        orders.dedup();
        for v in orders {
            if vars.len() >= k {
                break;
            }
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars
}

/// Like [`check_all_recorded`], but queries carry a *group key*
/// (`groups[i]`, e.g. the candidate's source label): maximal contiguous
/// runs of equal keys form query families, solved per
/// `opts.strategy`. Families are formed in candidate order, solved
/// independently (possibly in parallel), and committed in family
/// order; `cache` is read as a frozen snapshot during the batch and
/// the families' additions are merged back in family order afterwards
/// — so outcomes are byte-identical for every `num_threads`.
pub fn check_all_grouped(
    pool: &TermPool,
    queries: &[TermId],
    groups: &[u64],
    opts: &SolverOptions,
    stats: &SolverStats,
    cache: &mut QueryCache,
) -> GroupedOutcome {
    assert_eq!(queries.len(), groups.len(), "one group key per query");
    if opts.strategy == SolverStrategy::Fresh {
        return GroupedOutcome {
            outcomes: check_all_recorded(pool, queries, opts, stats),
            families: 0,
            clauses_retained: 0,
            epochs: 0,
            worker_loads: Vec::new(),
        };
    }
    let mut fams: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..=queries.len() {
        if i == queries.len() || groups[i] != groups[start] {
            fams.push((start, i));
            start = i;
        }
    }
    match opts.dispatch {
        Dispatch::Static => run_static(pool, queries, &fams, opts, stats, cache),
        Dispatch::WorkSteal => run_worksteal(pool, queries, groups, &fams, opts, stats, cache),
    }
}

/// The fixed-batch dispatcher: families split into `num_threads`
/// contiguous chunks, one sweep per worker, a single frozen snapshot
/// and one merge barrier for the whole batch. Kept as the ablation
/// baseline the work-stealing dispatcher is benchmarked against.
fn run_static(
    pool: &TermPool,
    queries: &[TermId],
    fams: &[(usize, usize)],
    opts: &SolverOptions,
    stats: &SolverStats,
    cache: &mut QueryCache,
) -> GroupedOutcome {
    let n = fams.len();
    let workers = opts.num_threads.clamp(1, n.max(1));
    let mut worker_loads = vec![WorkerLoad::default(); workers];
    let outputs: Vec<FamilyOutput> = {
        let snapshot: &QueryCache = cache;
        let run =
            |&(s, e): &(usize, usize)| solve_family(pool, &queries[s..e], opts, stats, snapshot, false);
        if workers <= 1 || n <= 1 {
            worker_loads[0].families = n as u64;
            fams.iter().map(run).collect()
        } else {
            let slots: Vec<std::sync::Mutex<Option<FamilyOutput>>> =
                fams.iter().map(|_| std::sync::Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for (w, load) in worker_loads.iter_mut().enumerate() {
                    let chunk = (w * n / workers)..((w + 1) * n / workers);
                    load.families = chunk.len() as u64;
                    let (slots, run) = (&slots, &run);
                    scope.spawn(move || {
                        for i in chunk {
                            *slots[i].lock().expect("no poisoning: workers do not panic") =
                                Some(run(&fams[i]));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("scope joined").expect("all chunks swept"))
                .collect()
        }
    };
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut clauses_retained = 0;
    for out in outputs {
        outcomes.extend(out.outcomes);
        clauses_retained += out.clauses_retained;
        cache.merge(out.additions);
    }
    GroupedOutcome {
        outcomes,
        families: n as u64,
        clauses_retained,
        epochs: 1,
        worker_loads,
    }
}

/// The sharded work-stealing dispatcher (the default). Families shard
/// by group key (`key % shards`); each worker drains its home shard
/// (`worker % shards`) and then steals whole families from the other
/// shards in a deterministic scan order — whole families, so the
/// persistent solver's shared-prefix reuse survives the steal.
/// Families are processed in *epochs* (contiguous runs of
/// `shards × EPOCH_FAMILIES_PER_SHARD` families in family order): the
/// cache snapshot is frozen per epoch and each epoch's additions merge
/// back in family order at the epoch barrier, so later epochs reuse
/// earlier epochs' cores and verdicts. Epoch boundaries depend only on
/// the family list and the shard count — never on the worker count —
/// which keeps outcomes byte-identical for every `num_threads`.
fn run_worksteal(
    pool: &TermPool,
    queries: &[TermId],
    groups: &[u64],
    fams: &[(usize, usize)],
    opts: &SolverOptions,
    stats: &SolverStats,
    cache: &mut QueryCache,
) -> GroupedOutcome {
    let shards = if opts.shards > 0 {
        opts.shards
    } else {
        DEFAULT_SHARDS
    };
    let epoch_len = (shards * EPOCH_FAMILIES_PER_SHARD).max(1);
    let n = fams.len();
    let workers = opts.num_threads.max(1);
    let mut worker_loads = vec![WorkerLoad::default(); workers];
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut clauses_retained = 0u64;
    let mut epochs = 0u64;
    let mut lo = 0;
    while lo < n {
        let hi = (lo + epoch_len).min(n);
        epochs += 1;
        let epoch_outputs: Vec<FamilyOutput> = {
            let snapshot: &QueryCache = cache;
            let run = |&(s, e): &(usize, usize)| {
                solve_family(pool, &queries[s..e], opts, stats, snapshot, true)
            };
            if workers <= 1 || hi - lo <= 1 {
                worker_loads[0].families += (hi - lo) as u64;
                fams[lo..hi].iter().map(run).collect()
            } else {
                let mut shard_q: Vec<Vec<usize>> = vec![Vec::new(); shards];
                for (i, f) in fams.iter().enumerate().take(hi).skip(lo) {
                    let key = groups[f.0];
                    shard_q[(key % shards as u64) as usize].push(i);
                }
                let cursors: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
                let slots: Vec<std::sync::Mutex<Option<FamilyOutput>>> =
                    (lo..hi).map(|_| std::sync::Mutex::new(None)).collect();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let (shard_q, cursors, slots, run) =
                                (&shard_q, &cursors, &slots, &run);
                            scope.spawn(move || {
                                let mut load = WorkerLoad::default();
                                let home = w % shards;
                                loop {
                                    let mut claimed = None;
                                    for off in 0..shards {
                                        let sh = (home + off) % shards;
                                        let c =
                                            cursors[sh].fetch_add(1, Ordering::Relaxed) as usize;
                                        if c < shard_q[sh].len() {
                                            claimed = Some((sh, shard_q[sh][c]));
                                            break;
                                        }
                                    }
                                    let Some((sh, fi)) = claimed else { break };
                                    load.families += 1;
                                    load.stolen += u64::from(sh != home);
                                    let out = run(&fams[fi]);
                                    *slots[fi - lo]
                                        .lock()
                                        .expect("no poisoning: workers do not panic") = Some(out);
                                }
                                load
                            })
                        })
                        .collect();
                    for (w, h) in handles.into_iter().enumerate() {
                        let l = h.join().expect("worker threads do not panic");
                        worker_loads[w].families += l.families;
                        worker_loads[w].stolen += l.stolen;
                    }
                });
                slots
                    .into_iter()
                    .map(|m| {
                        m.into_inner()
                            .expect("scope joined")
                            .expect("all families claimed")
                    })
                    .collect()
            }
        };
        // Epoch barrier: commit outcomes and merge cache additions in
        // family order, so the next epoch's snapshot — identical for
        // every worker count — includes everything learned so far.
        for out in epoch_outputs {
            outcomes.extend(out.outcomes);
            clauses_retained += out.clauses_retained;
            cache.merge(out.additions);
        }
        lo = hi;
    }
    GroupedOutcome {
        outcomes,
        families: n as u64,
        clauses_retained,
        epochs,
        worker_loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solo() -> (SolverOptions, SolverStats) {
        (SolverOptions::default(), SolverStats::default())
    }

    #[test]
    fn pure_boolean_sat_and_unsat() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let b = p.bool_atom(1);
        let na = p.not(a);
        let f = p.or2(a, b);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Sat);
        let nb = p.not(b);
        let g = p.and([f, na, nb]);
        assert_eq!(check(&p, g, &opts, &stats), SmtResult::Unsat);
    }

    #[test]
    fn fig2_guard_is_unsat() {
        // θ1 ∧ ¬θ1 with order constraints — the paper's Fig. 2 example.
        let mut p = TermPool::new();
        let theta = p.bool_atom(0);
        let ntheta = p.not(theta);
        let o1 = p.order_lt(13, 6); // store before load
        let o2 = p.order_lt(3, 13); // no overwrite
        let guard = p.and([theta, ntheta, o1, o2]);
        let (opts, stats) = solo();
        assert_eq!(check(&p, guard, &opts, &stats), SmtResult::Unsat);
    }

    #[test]
    fn order_cycle_through_boolean_structure_is_unsat() {
        // (O1<O2) ∧ (O2<O3) ∧ (O3<O1) is hidden from the prefilter by a
        // disjunctive wrapper, so the theory loop must catch it.
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        let a = p.bool_atom(0);
        let b = p.bool_atom(1);
        let na = p.not(a);
        let cyc = p.and([o12, o23, o31]);
        // Distinct boolean tails on each side keep the construction-time
        // factoring rewrite from collapsing the disjunction.
        let left = p.and([cyc, a, b]);
        let right = p.and2(cyc, na);
        let f = p.or2(left, right);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Unsat);
        assert!(stats.theory_lemmas.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn order_choice_is_sat() {
        // (O1<O2 ∨ O2<O1) ∧ O2<O3: satisfiable.
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o21 = p.order_lt(2, 1);
        let o23 = p.order_lt(2, 3);
        let choice = p.or2(o12, o21);
        let f = p.and2(choice, o23);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Sat);
    }

    #[test]
    fn transitivity_is_enforced_lazily() {
        // O1<O2 ∧ O2<O3 ∧ O3<O1 must be unsat even though no single
        // atom pair is contradictory.
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        // Disable prefilter to force the lazy loop.
        let opts = SolverOptions {
            prefilter: false,
            ..SolverOptions::default()
        };
        let stats = SolverStats::default();
        let f = p.and([o12, o23, o31]);
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Unsat);
    }

    #[test]
    fn prefilter_short_circuits() {
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        let f = p.and([o12, o23, o31]);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Unsat);
        assert_eq!(stats.prefiltered.load(Ordering::Relaxed), 1);
        assert_eq!(stats.solved.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parallel_check_all_matches_sequential() {
        let mut p = TermPool::new();
        let mut queries = Vec::new();
        for i in 0..16u32 {
            let a = p.bool_atom(i);
            let na = p.not(a);
            let o = p.order_lt(i, i + 1);
            let q = if i % 2 == 0 {
                p.and2(a, o)
            } else {
                p.and([a, na]) // unsat
            };
            queries.push(q);
        }
        let seq_opts = SolverOptions::default();
        let par_opts = SolverOptions {
            num_threads: 4,
            ..SolverOptions::default()
        };
        let s1 = SolverStats::default();
        let s2 = SolverStats::default();
        let seq = check_all(&p, &queries, &seq_opts, &s1);
        let par = check_all(&p, &queries, &par_opts, &s2);
        assert_eq!(seq, par);
        for (i, r) in seq.iter().enumerate() {
            assert_eq!(r.is_sat(), i % 2 == 0, "query {i}");
        }
    }

    #[test]
    fn sorted_subset_is_exact() {
        let t = |x: u32| TermId(x);
        let sub = vec![t(1), t(3)];
        assert!(is_sorted_subset(&sub, &[t(0), t(1), t(2), t(3)]));
        assert!(is_sorted_subset(&sub, &[t(1), t(3)]));
        assert!(!is_sorted_subset(&sub, &[t(1), t(2)]));
        assert!(!is_sorted_subset(&sub, &[t(3)]));
        assert!(is_sorted_subset(&[], &[t(7)]));
        assert_eq!(
            sorted_diff(&[t(0), t(1), t(2), t(3)], &[t(1), t(3)]),
            vec![t(0), t(2)]
        );
    }

    #[test]
    fn cached_core_refutes_strict_superset_never_non_superset() {
        let mut cache = QueryCache::new();
        let t = |x: u32| TermId(x);
        cache.insert_core(vec![t(2), t(5)]);
        // Strict superset: refuted without solving.
        assert!(cache.subsumes(&[t(1), t(2), t(5), t(9)]));
        // The refuted set itself.
        assert!(cache.subsumes(&[t(2), t(5)]));
        // Non-supersets: never fires.
        assert!(!cache.subsumes(&[t(2), t(9)]));
        assert!(!cache.subsumes(&[t(5)]));
        assert!(!cache.subsumes(&[]));
        // Empty cores are ignored — they would subsume everything.
        cache.insert_core(Vec::new());
        assert!(!cache.subsumes(&[t(1)]));
    }

    #[test]
    fn family_core_subsumption_and_memo_fire_in_batch() {
        let mut p = TermPool::new();
        let oa = p.order_lt(10, 11);
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        let b = p.bool_atom(0);
        let q_sat = p.and([oa, o12, o23]);
        let q_unsat = p.and([oa, o12, o23, o31]); // order cycle
        let q_super = p.and([oa, o12, o23, o31, b]); // superset of the core
        let q_other = p.and([oa, o12, b]); // shares atoms but no cycle
        let q_dup = q_sat; // hash-consed duplicate
        let queries = [q_sat, q_unsat, q_super, q_other, q_dup];
        let groups = [7u64; 5];
        let opts = SolverOptions {
            prefilter: false, // force everything past the prefilter
            strategy: SolverStrategy::Incremental,
            ..SolverOptions::default()
        };
        let stats = SolverStats::default();
        let mut cache = QueryCache::new();
        let out = check_all_grouped(&p, &queries, &groups, &opts, &stats, &mut cache);
        let verdicts: Vec<SmtResult> = out.outcomes.iter().map(|o| o.result).collect();
        assert_eq!(
            verdicts,
            vec![
                SmtResult::Sat,
                SmtResult::Unsat,
                SmtResult::Unsat,
                SmtResult::Sat,
                SmtResult::Sat
            ]
        );
        assert_eq!(out.families, 1);
        assert!(out.outcomes[1].incremental);
        // The superset of the refuted set is discharged by the core
        // cache, the duplicate by the memo — neither touches a solver.
        assert!(out.outcomes[2].core_subsumed);
        assert!(!out.outcomes[3].core_subsumed && !out.outcomes[3].memo_hit);
        assert!(out.outcomes[4].memo_hit);
        // The batch merged its additions into the caller's cache.
        assert!(cache.core_len() >= 1);
        assert!(cache.subsumes(&p.conjuncts_of(q_super)));
        // A later batch reuses the merged cache across families.
        let out2 = check_all_grouped(&p, &[q_super], &[99], &opts, &stats, &mut cache);
        assert_eq!(out2.outcomes[0].result, SmtResult::Unsat);
        assert!(out2.outcomes[0].memo_hit || out2.outcomes[0].core_subsumed);
    }

    #[test]
    fn grouped_incremental_matches_fresh_verdicts() {
        let mut p = TermPool::new();
        let mut queries = Vec::new();
        let mut groups = Vec::new();
        for src in 0..4u64 {
            let base = p.order_lt(src as u32 * 10, src as u32 * 10 + 1);
            let g = p.bool_atom(src as u32);
            for k in 0..4u32 {
                let d1 = p.order_lt(k, k + 1);
                let q = if k == 3 {
                    // An order cycle hidden behind the shared prefix.
                    let c1 = p.order_lt(100, 101);
                    let c2 = p.order_lt(101, 100);
                    p.and([base, g, c1, c2])
                } else {
                    p.and([base, g, d1])
                };
                queries.push(q);
                groups.push(src);
            }
        }
        let stats_f = SolverStats::default();
        let stats_i = SolverStats::default();
        let fresh = SolverOptions {
            strategy: SolverStrategy::Fresh,
            ..SolverOptions::default()
        };
        let incr = SolverOptions {
            strategy: SolverStrategy::Incremental,
            ..SolverOptions::default()
        };
        let mut c1 = QueryCache::new();
        let mut c2 = QueryCache::new();
        let a = check_all_grouped(&p, &queries, &groups, &fresh, &stats_f, &mut c1);
        let b = check_all_grouped(&p, &queries, &groups, &incr, &stats_i, &mut c2);
        let va: Vec<SmtResult> = a.outcomes.iter().map(|o| o.result).collect();
        let vb: Vec<SmtResult> = b.outcomes.iter().map(|o| o.result).collect();
        assert_eq!(va, vb);
        // Prefilter accounting is strategy-invariant.
        let pa: Vec<bool> = a.outcomes.iter().map(|o| o.stats.prefiltered).collect();
        let pb: Vec<bool> = b.outcomes.iter().map(|o| o.stats.prefiltered).collect();
        assert_eq!(pa, pb);
        assert_eq!(a.families, 0);
        assert_eq!(b.families, 4);
    }

    #[test]
    fn grouped_parallel_output_is_byte_identical_to_sequential() {
        let mut p = TermPool::new();
        let mut queries = Vec::new();
        let mut groups = Vec::new();
        for src in 0..6u64 {
            let base = p.order_lt(src as u32 * 10, src as u32 * 10 + 1);
            for k in 0..3u32 {
                let d = p.order_lt(k, k + 1);
                let q = p.and([base, d]);
                queries.push(q);
                groups.push(src);
            }
        }
        let mk = |threads: usize| {
            let stats = SolverStats::default();
            let opts = SolverOptions {
                num_threads: threads,
                strategy: SolverStrategy::Incremental,
                ..SolverOptions::default()
            };
            let mut cache = QueryCache::new();
            let out = check_all_grouped(&p, &queries, &groups, &opts, &stats, &mut cache);
            out.outcomes
                .iter()
                .map(|o| (o.result, o.stats, o.memo_hit, o.core_subsumed, o.incremental))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(4));
    }

    /// Query set with enough families to span several work-stealing
    /// epochs, mixing sat members, an unsat order cycle per third
    /// family, and duplicate members for the memo.
    fn epoch_scale_queries(p: &mut TermPool) -> (Vec<TermId>, Vec<u64>) {
        let mut queries = Vec::new();
        let mut groups = Vec::new();
        for src in 0..40u64 {
            let base = p.order_lt(src as u32 * 10, src as u32 * 10 + 1);
            for k in 0..3u32 {
                let d = p.order_lt(k, k + 1);
                let q = if src % 3 == 0 && k == 2 {
                    let c1 = p.order_lt(500, 501);
                    let c2 = p.order_lt(501, 500);
                    p.and([base, d, c1, c2])
                } else {
                    p.and([base, d])
                };
                queries.push(q);
                groups.push(src);
            }
        }
        (queries, groups)
    }

    #[test]
    fn dispatchers_and_shard_counts_agree_on_verdicts() {
        let mut p = TermPool::new();
        let (queries, groups) = epoch_scale_queries(&mut p);
        let mk = |dispatch: Dispatch, shards: usize, threads: usize| {
            let stats = SolverStats::default();
            let opts = SolverOptions {
                num_threads: threads,
                strategy: SolverStrategy::Incremental,
                dispatch,
                shards,
                ..SolverOptions::default()
            };
            let mut cache = QueryCache::new();
            let out = check_all_grouped(&p, &queries, &groups, &opts, &stats, &mut cache);
            assert_eq!(out.families, 40);
            (
                out.outcomes
                    .iter()
                    .map(|o| o.result)
                    .collect::<Vec<SmtResult>>(),
                out.epochs,
            )
        };
        let (base_verdicts, base_epochs) = mk(Dispatch::WorkSteal, 0, 1);
        // 40 families at 8 shards × 2 families/shard = 3 epochs.
        assert_eq!(base_epochs, 3);
        for (dispatch, shards, threads) in [
            (Dispatch::WorkSteal, 0, 4),
            (Dispatch::WorkSteal, 2, 1),
            (Dispatch::WorkSteal, 2, 4),
            (Dispatch::WorkSteal, 16, 3),
            (Dispatch::Static, 0, 1),
            (Dispatch::Static, 0, 4),
        ] {
            let (verdicts, epochs) = mk(dispatch, shards, threads);
            assert_eq!(
                verdicts, base_verdicts,
                "verdicts differ at dispatch={dispatch:?} shards={shards} threads={threads}"
            );
            if dispatch == Dispatch::Static {
                assert_eq!(epochs, 1, "static batching has one barrier");
            }
        }
    }

    #[test]
    fn worksteal_outcomes_byte_identical_across_thread_counts() {
        let mut p = TermPool::new();
        let (queries, groups) = epoch_scale_queries(&mut p);
        let mk = |threads: usize| {
            let stats = SolverStats::default();
            let opts = SolverOptions {
                num_threads: threads,
                strategy: SolverStrategy::Incremental,
                dispatch: Dispatch::WorkSteal,
                ..SolverOptions::default()
            };
            let mut cache = QueryCache::new();
            let out = check_all_grouped(&p, &queries, &groups, &opts, &stats, &mut cache);
            out.outcomes
                .iter()
                .map(|o| {
                    (
                        o.result,
                        o.stats,
                        o.memo_hit,
                        o.core_subsumed,
                        o.incremental,
                        o.cubed,
                    )
                })
                .collect::<Vec<_>>()
        };
        let one = mk(1);
        assert_eq!(one, mk(2));
        assert_eq!(one, mk(4));
        assert_eq!(one, mk(7));
    }

    /// Pigeonhole 3→2 as a term: propositionally unsat and needing
    /// several CDCL conflicts, so a one-conflict budget must escalate.
    fn php32(p: &mut TermPool) -> TermId {
        let mut clauses = Vec::new();
        for i in 0..3u32 {
            let a = p.bool_atom(i * 2);
            let b = p.bool_atom(i * 2 + 1);
            clauses.push(p.or2(a, b));
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3u32 {
                    let a = p.bool_atom(i1 * 2 + j);
                    let na = p.not(a);
                    let b = p.bool_atom(i2 * 2 + j);
                    let nb = p.not(b);
                    clauses.push(p.or2(na, nb));
                }
            }
        }
        p.and(clauses)
    }

    #[test]
    fn cube_escalation_fires_on_hard_member_and_preserves_verdicts() {
        let mut p = TermPool::new();
        let hard = php32(&mut p);
        let o = p.order_lt(1, 2);
        let easy = p.and2(o, hard); // same family: duplicate-free sibling
        let queries = [hard, easy];
        let groups = [3u64, 3];
        let run = |cube_split: usize, cube_budget: u64| {
            let stats = SolverStats::default();
            let opts = SolverOptions {
                cube_split,
                cube_budget,
                strategy: SolverStrategy::Incremental,
                ..SolverOptions::default()
            };
            let mut cache = QueryCache::new();
            let out = check_all_grouped(&p, &queries, &groups, &opts, &stats, &mut cache);
            (
                out.outcomes.iter().map(|o| o.result).collect::<Vec<_>>(),
                out.outcomes.iter().map(|o| o.cubed).collect::<Vec<_>>(),
                stats.cube_escalated.load(Ordering::Relaxed),
            )
        };
        let (plain_verdicts, plain_cubed, plain_esc) = run(0, 1);
        assert!(plain_cubed.iter().all(|&c| !c));
        assert_eq!(plain_esc, 0);
        let (cube_verdicts, cube_cubed, cube_esc) = run(3, 1);
        assert_eq!(cube_verdicts, plain_verdicts, "escalation is a pure optimization");
        assert!(
            cube_cubed.iter().any(|&c| c),
            "a one-conflict budget must escalate the pigeonhole member"
        );
        assert!(cube_esc > 0);
        // A generous budget never escalates.
        let (gen_verdicts, gen_cubed, gen_esc) = run(3, 1_000_000);
        assert_eq!(gen_verdicts, plain_verdicts);
        assert!(gen_cubed.iter().all(|&c| !c));
        assert_eq!(gen_esc, 0);
    }

    #[test]
    fn cube_and_conquer_agrees_with_plain_solving() {
        let mut p = TermPool::new();
        // A formula with enough booleans to split on.
        let atoms: Vec<TermId> = (0..6).map(|i| p.bool_atom(i)).collect();
        let mut clauses = Vec::new();
        for i in 0..6 {
            let x = atoms[i];
            let y = atoms[(i + 1) % 6];
            let ny = p.not(y);
            clauses.push(p.or2(x, ny));
        }
        let o = p.order_lt(0, 1);
        clauses.push(o);
        let f = p.and(clauses);
        let plain_opts = SolverOptions::default();
        let cube_opts = SolverOptions {
            num_threads: 4,
            cube_split: 3,
            prefilter: false,
            ..SolverOptions::default()
        };
        let s1 = SolverStats::default();
        let s2 = SolverStats::default();
        assert_eq!(
            check(&p, f, &plain_opts, &s1),
            check(&p, f, &cube_opts, &s2)
        );
    }
}
