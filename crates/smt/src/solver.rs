//! The CDCL(T) solving loop and its parallel drivers (§5.2).
//!
//! The propositional skeleton of `Φ_all` is solved by the CDCL core;
//! full models are checked against the strict-partial-order theory, and
//! theory conflicts come back as blocking lemmas. Three §5.2
//! optimizations are implemented and individually switchable for the
//! ablation benches:
//!
//! 1. the semi-decision *prefilter* ([`crate::simplify`]);
//! 2. *parallel portfolio* solving of independent queries (one query per
//!    source-sink path — they share nothing, so they parallelize
//!    embarrassingly);
//! 3. *cube-and-conquer* splitting of a single hard query on its most
//!    frequent atoms.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::cnf::{encode, Encoding};
use crate::sat::{Lit, SatResult, SatSolver, Var};
use crate::simplify::obviously_false;
use crate::term::{Node, TermId, TermPool};
use crate::theory::{check_orders, OrderEdge, TheoryResult};

/// Result of an SMT query.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SmtResult {
    /// A sequentially consistent execution satisfying the constraints
    /// exists.
    Sat,
    /// No such execution exists — the value-flow path is irrealizable.
    Unsat,
}

impl SmtResult {
    /// Whether the query was satisfiable.
    pub fn is_sat(self) -> bool {
        matches!(self, SmtResult::Sat)
    }
}

/// Options controlling the solving strategy.
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Apply the semi-decision prefilter before full solving.
    pub prefilter: bool,
    /// Worker threads for [`check_all`]; 1 disables parallelism.
    pub num_threads: usize,
    /// Atoms to split on for cube-and-conquer (0 disables).
    pub cube_split: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            prefilter: true,
            num_threads: 1,
            cube_split: 0,
        }
    }
}

/// Aggregate solver statistics (for the scalability tables). The CDCL
/// search counters (decisions, conflicts, propagations, restarts,
/// learned clauses) accumulate across every query checked against this
/// instance — the per-query breakdown is [`QueryStats`].
#[derive(Debug, Default)]
pub struct SolverStats {
    /// Queries answered by the prefilter alone.
    pub prefiltered: AtomicU64,
    /// Full CDCL(T) queries run.
    pub solved: AtomicU64,
    /// Theory lemmas learned across all queries.
    pub theory_lemmas: AtomicU64,
    /// CDCL decisions across all queries.
    pub decisions: AtomicU64,
    /// CDCL conflicts across all queries.
    pub conflicts: AtomicU64,
    /// Unit propagations across all queries.
    pub propagations: AtomicU64,
    /// Restarts across all queries.
    pub restarts: AtomicU64,
    /// Learned (conflict + theory) clauses retained across all queries.
    pub learned: AtomicU64,
}

impl SolverStats {
    /// Snapshot of (prefiltered, solved, theory lemmas).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.prefiltered.load(Ordering::Relaxed),
            self.solved.load(Ordering::Relaxed),
            self.theory_lemmas.load(Ordering::Relaxed),
        )
    }

    fn absorb(&self, q: &QueryStats) {
        self.decisions.fetch_add(q.decisions, Ordering::Relaxed);
        self.conflicts.fetch_add(q.conflicts, Ordering::Relaxed);
        self.propagations.fetch_add(q.propagations, Ordering::Relaxed);
        self.restarts.fetch_add(q.restarts, Ordering::Relaxed);
        self.learned.fetch_add(q.learned, Ordering::Relaxed);
    }
}

/// Per-query solver work counters — the unit of attribution the
/// observability layer reports (which query was hot, and why).
///
/// For the default strategy (no cube-and-conquer) the counters are
/// fully deterministic: the CDCL core explores the same tree for the
/// same clauses, regardless of how many *other* queries solve
/// concurrently. Under cube-and-conquer the early-exit race makes the
/// counts best-effort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// The query was answered by the semi-decision prefilter alone.
    pub prefiltered: bool,
    /// CDCL decisions.
    pub decisions: u64,
    /// CDCL conflicts analyzed.
    pub conflicts: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Restarts.
    pub restarts: u64,
    /// Learned clauses retained (conflict clauses; theory lemmas are
    /// counted separately).
    pub learned: u64,
    /// Theory (order-cycle) lemmas fed back into the SAT core.
    pub theory_lemmas: u64,
}

impl QueryStats {
    /// Sums another query's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.prefiltered |= other.prefiltered;
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.theory_lemmas += other.theory_lemmas;
    }
}

/// Decides one term with the CDCL(T) loop.
pub fn check(pool: &TermPool, t: TermId, opts: &SolverOptions, stats: &SolverStats) -> SmtResult {
    check_counted(pool, t, opts, stats).0
}

/// Like [`check`], additionally returning the query's own work
/// counters (also accumulated into `stats`).
pub fn check_counted(
    pool: &TermPool,
    t: TermId,
    opts: &SolverOptions,
    stats: &SolverStats,
) -> (SmtResult, QueryStats) {
    let mut q = QueryStats::default();
    if opts.prefilter {
        if t == pool.tt() {
            stats.prefiltered.fetch_add(1, Ordering::Relaxed);
            q.prefiltered = true;
            return (SmtResult::Sat, q);
        }
        if obviously_false(pool, t) {
            stats.prefiltered.fetch_add(1, Ordering::Relaxed);
            q.prefiltered = true;
            return (SmtResult::Unsat, q);
        }
    }
    stats.solved.fetch_add(1, Ordering::Relaxed);
    let res = if opts.cube_split > 0 && opts.num_threads > 1 {
        cube_and_conquer(pool, t, opts, stats, &mut q)
    } else {
        check_with_assumptions(pool, t, &[], stats, &mut q)
    };
    stats.absorb(&q);
    (res, q)
}

/// The core lazy CDCL(T) loop, optionally under cube assumptions given
/// as (bool atom index, value) pairs.
fn check_with_assumptions(
    pool: &TermPool,
    t: TermId,
    cube: &[(u32, bool)],
    stats: &SolverStats,
    q: &mut QueryStats,
) -> SmtResult {
    let mut sat = SatSolver::new();
    let mut enc = Encoding::default();
    encode(pool, t, &mut sat, &mut enc);
    let assumptions: Vec<Lit> = cube
        .iter()
        .filter_map(|&(atom, val)| enc.bool_vars.get(&atom).map(|&v| Lit::new(v, val)))
        .collect();
    let result = loop {
        match sat.solve_with_assumptions(&assumptions) {
            SatResult::Unsat => break SmtResult::Unsat,
            SatResult::Sat(model) => {
                let oriented = enc.oriented_edges(&model);
                let edges: Vec<OrderEdge> = oriented
                    .iter()
                    .map(|&(from, to, var)| OrderEdge {
                        from,
                        to,
                        atom: var.index(),
                    })
                    .collect();
                match check_orders(&edges) {
                    TheoryResult::Consistent => break SmtResult::Sat,
                    TheoryResult::Conflict(vars) => {
                        stats.theory_lemmas.fetch_add(1, Ordering::Relaxed);
                        q.theory_lemmas += 1;
                        // Block this orientation of the cycle.
                        let clause: Vec<Lit> = vars
                            .iter()
                            .map(|&vi| {
                                let v = Var(vi as u32);
                                Lit::new(v, !model[vi])
                            })
                            .collect();
                        if !sat.add_clause(&clause) {
                            break SmtResult::Unsat;
                        }
                    }
                }
            }
        }
    };
    q.decisions += sat.stats.decisions;
    q.conflicts += sat.stats.conflicts;
    q.propagations += sat.stats.propagations;
    q.restarts += sat.stats.restarts;
    q.learned += sat.num_learnt() as u64;
    result
}

/// Cube-and-conquer (§5.2): split on the most frequent Boolean atoms
/// and solve the cubes in parallel, each in its own solver.
fn cube_and_conquer(
    pool: &TermPool,
    t: TermId,
    opts: &SolverOptions,
    stats: &SolverStats,
    q: &mut QueryStats,
) -> SmtResult {
    let atoms = pick_split_atoms(pool, t, opts.cube_split);
    if atoms.is_empty() {
        return check_with_assumptions(pool, t, &[], stats, q);
    }
    let n_cubes = 1usize << atoms.len();
    let found_sat = AtomicBool::new(false);
    let next = AtomicU64::new(0);
    let agg = std::sync::Mutex::new(QueryStats::default());
    let workers = opts.num_threads.min(n_cubes).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= n_cubes || found_sat.load(Ordering::Relaxed) {
                    return;
                }
                let cube: Vec<(u32, bool)> = atoms
                    .iter()
                    .enumerate()
                    .map(|(bit, &a)| (a, (i >> bit) & 1 == 1))
                    .collect();
                let mut local = QueryStats::default();
                let res = check_with_assumptions(pool, t, &cube, stats, &mut local);
                agg.lock().expect("no poisoning").merge(&local);
                if res == SmtResult::Sat {
                    found_sat.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    });
    q.merge(&agg.into_inner().expect("scope joined"));
    if found_sat.load(Ordering::Relaxed) {
        SmtResult::Sat
    } else {
        SmtResult::Unsat
    }
}

/// Picks up to `k` Boolean atoms by occurrence count for splitting.
fn pick_split_atoms(pool: &TermPool, t: TermId, k: usize) -> Vec<u32> {
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut stack = vec![t];
    let mut seen = std::collections::HashSet::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        match pool.node(x) {
            Node::BoolAtom(i) => *counts.entry(*i).or_insert(0) += 1,
            Node::Not(inner) => stack.push(*inner),
            Node::And(xs) | Node::Or(xs) => stack.extend(xs.iter().copied()),
            _ => {}
        }
    }
    let mut atoms: Vec<(u32, usize)> = counts.into_iter().collect();
    atoms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    atoms.into_iter().take(k).map(|(a, _)| a).collect()
}

/// A satisfying theory model of a query, in replay-friendly form: the
/// order-constrained events arranged in one concrete sequentially
/// consistent execution order, plus the Boolean-atom assignment the
/// model chose (the branch-atom valuation a concrete replay must run
/// under).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WitnessModel {
    /// Events of the query in one theory-consistent total order
    /// (a topological order of the model's oriented order atoms).
    /// Events that appear in no order atom are omitted — their
    /// position is unconstrained.
    pub events: Vec<crate::term::EventId>,
    /// The model's Boolean-atom assignment as sorted
    /// `(atom index, value)` pairs.
    pub bools: Vec<(u32, bool)>,
}

/// A satisfying witness: the events of the query arranged in one
/// concrete sequentially consistent execution order (a topological
/// order of the model's oriented order atoms).
///
/// Returns `None` when the query is unsatisfiable. Events that appear
/// in no order atom are omitted (their position is unconstrained).
pub fn check_witness(
    pool: &TermPool,
    t: TermId,
    stats: &SolverStats,
) -> Option<Vec<crate::term::EventId>> {
    check_witness_model(pool, t, stats).map(|w| w.events)
}

/// Like [`check_witness`], additionally returning the Boolean-atom
/// assignment of the model — everything a concrete interpreter needs
/// to replay the witness (schedule + branch valuation).
pub fn check_witness_model(
    pool: &TermPool,
    t: TermId,
    stats: &SolverStats,
) -> Option<WitnessModel> {
    let mut sat = SatSolver::new();
    let mut enc = Encoding::default();
    encode(pool, t, &mut sat, &mut enc);
    loop {
        match sat.solve() {
            SatResult::Unsat => return None,
            SatResult::Sat(model) => {
                let oriented = enc.oriented_edges(&model);
                let edges: Vec<OrderEdge> = oriented
                    .iter()
                    .map(|&(from, to, var)| OrderEdge {
                        from,
                        to,
                        atom: var.index(),
                    })
                    .collect();
                match check_orders(&edges) {
                    TheoryResult::Consistent => {
                        return Some(WitnessModel {
                            events: topological_events(&oriented),
                            bools: enc.bool_assignment(&model),
                        });
                    }
                    TheoryResult::Conflict(vars) => {
                        stats.theory_lemmas.fetch_add(1, Ordering::Relaxed);
                        let clause: Vec<Lit> = vars
                            .iter()
                            .map(|&vi| {
                                let v = Var(vi as u32);
                                Lit::new(v, !model[vi])
                            })
                            .collect();
                        if !sat.add_clause(&clause) {
                            return None;
                        }
                    }
                }
            }
        }
    }
}

/// Topologically sorts the events of an acyclic oriented edge set
/// (Kahn's algorithm; ties broken by event id for determinism).
fn topological_events(
    oriented: &[(crate::term::EventId, crate::term::EventId, Var)],
) -> Vec<crate::term::EventId> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut succs: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut indeg: BTreeMap<u32, usize> = BTreeMap::new();
    for &(a, b, _) in oriented {
        if succs.entry(a).or_default().insert(b) {
            *indeg.entry(b).or_insert(0) += 1;
        }
        indeg.entry(a).or_insert(0);
    }
    let mut ready: BTreeSet<u32> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&e, _)| e)
        .collect();
    let mut out = Vec::with_capacity(indeg.len());
    while let Some(&e) = ready.iter().next() {
        ready.remove(&e);
        out.push(e);
        if let Some(next) = succs.get(&e) {
            for &n in next {
                let d = indeg.get_mut(&n).expect("edge target has an indegree");
                *d -= 1;
                if *d == 0 {
                    ready.insert(n);
                }
            }
        }
    }
    out
}

/// One solved query, with its verdict, work counters, and timing.
/// `started` is the wall-clock instant solving began (relative to
/// whatever epoch the caller tracks); only `result` and `stats` are
/// deterministic — the timing fields carry real wall time.
#[derive(Clone, Copy, Debug)]
pub struct QueryOutcome {
    /// Sat/unsat verdict.
    pub result: SmtResult,
    /// Deterministic work counters for this query.
    pub stats: QueryStats,
    /// When solving of this query started.
    pub started: Instant,
    /// Wall time spent solving this query.
    pub wall: Duration,
}

/// Solves many independent queries, optionally in parallel (§5.2:
/// "the constraints on different source-sink paths are independent of
/// each other, which gives us the ability to leverage parallelization").
pub fn check_all(
    pool: &TermPool,
    queries: &[TermId],
    opts: &SolverOptions,
    stats: &SolverStats,
) -> Vec<SmtResult> {
    check_all_recorded(pool, queries, opts, stats)
        .into_iter()
        .map(|o| o.result)
        .collect()
}

/// Like [`check_all`], returning the full per-query record (verdict,
/// work counters, wall time) in query order.
pub fn check_all_recorded(
    pool: &TermPool,
    queries: &[TermId],
    opts: &SolverOptions,
    stats: &SolverStats,
) -> Vec<QueryOutcome> {
    let solve_one = |q: TermId, o: &SolverOptions| -> QueryOutcome {
        let started = Instant::now();
        let (result, qstats) = check_counted(pool, q, o, stats);
        QueryOutcome {
            result,
            stats: qstats,
            started,
            wall: started.elapsed(),
        }
    };
    if opts.num_threads <= 1 || queries.len() <= 1 {
        return queries.iter().map(|&q| solve_one(q, opts)).collect();
    }
    let next = AtomicU64::new(0);
    let results: Vec<std::sync::Mutex<Option<QueryOutcome>>> =
        queries.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..opts.num_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= queries.len() {
                    return;
                }
                let sequential = SolverOptions {
                    num_threads: 1,
                    ..opts.clone()
                };
                let r = solve_one(queries[i], &sequential);
                *results[i].lock().expect("no poisoning: workers do not panic") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("scope joined").expect("all indices visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solo() -> (SolverOptions, SolverStats) {
        (SolverOptions::default(), SolverStats::default())
    }

    #[test]
    fn pure_boolean_sat_and_unsat() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let b = p.bool_atom(1);
        let na = p.not(a);
        let f = p.or2(a, b);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Sat);
        let nb = p.not(b);
        let g = p.and([f, na, nb]);
        assert_eq!(check(&p, g, &opts, &stats), SmtResult::Unsat);
    }

    #[test]
    fn fig2_guard_is_unsat() {
        // θ1 ∧ ¬θ1 with order constraints — the paper's Fig. 2 example.
        let mut p = TermPool::new();
        let theta = p.bool_atom(0);
        let ntheta = p.not(theta);
        let o1 = p.order_lt(13, 6); // store before load
        let o2 = p.order_lt(3, 13); // no overwrite
        let guard = p.and([theta, ntheta, o1, o2]);
        let (opts, stats) = solo();
        assert_eq!(check(&p, guard, &opts, &stats), SmtResult::Unsat);
    }

    #[test]
    fn order_cycle_through_boolean_structure_is_unsat() {
        // (O1<O2) ∧ (O2<O3) ∧ (O3<O1) is hidden from the prefilter by a
        // disjunctive wrapper, so the theory loop must catch it.
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        let a = p.bool_atom(0);
        let b = p.bool_atom(1);
        let na = p.not(a);
        let cyc = p.and([o12, o23, o31]);
        // Distinct boolean tails on each side keep the construction-time
        // factoring rewrite from collapsing the disjunction.
        let left = p.and([cyc, a, b]);
        let right = p.and2(cyc, na);
        let f = p.or2(left, right);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Unsat);
        assert!(stats.theory_lemmas.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn order_choice_is_sat() {
        // (O1<O2 ∨ O2<O1) ∧ O2<O3: satisfiable.
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o21 = p.order_lt(2, 1);
        let o23 = p.order_lt(2, 3);
        let choice = p.or2(o12, o21);
        let f = p.and2(choice, o23);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Sat);
    }

    #[test]
    fn transitivity_is_enforced_lazily() {
        // O1<O2 ∧ O2<O3 ∧ O3<O1 must be unsat even though no single
        // atom pair is contradictory.
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        // Disable prefilter to force the lazy loop.
        let opts = SolverOptions {
            prefilter: false,
            ..SolverOptions::default()
        };
        let stats = SolverStats::default();
        let f = p.and([o12, o23, o31]);
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Unsat);
    }

    #[test]
    fn prefilter_short_circuits() {
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        let f = p.and([o12, o23, o31]);
        let (opts, stats) = solo();
        assert_eq!(check(&p, f, &opts, &stats), SmtResult::Unsat);
        assert_eq!(stats.prefiltered.load(Ordering::Relaxed), 1);
        assert_eq!(stats.solved.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parallel_check_all_matches_sequential() {
        let mut p = TermPool::new();
        let mut queries = Vec::new();
        for i in 0..16u32 {
            let a = p.bool_atom(i);
            let na = p.not(a);
            let o = p.order_lt(i, i + 1);
            let q = if i % 2 == 0 {
                p.and2(a, o)
            } else {
                p.and([a, na]) // unsat
            };
            queries.push(q);
        }
        let seq_opts = SolverOptions::default();
        let par_opts = SolverOptions {
            num_threads: 4,
            ..SolverOptions::default()
        };
        let s1 = SolverStats::default();
        let s2 = SolverStats::default();
        let seq = check_all(&p, &queries, &seq_opts, &s1);
        let par = check_all(&p, &queries, &par_opts, &s2);
        assert_eq!(seq, par);
        for (i, r) in seq.iter().enumerate() {
            assert_eq!(r.is_sat(), i % 2 == 0, "query {i}");
        }
    }

    #[test]
    fn cube_and_conquer_agrees_with_plain_solving() {
        let mut p = TermPool::new();
        // A formula with enough booleans to split on.
        let atoms: Vec<TermId> = (0..6).map(|i| p.bool_atom(i)).collect();
        let mut clauses = Vec::new();
        for i in 0..6 {
            let x = atoms[i];
            let y = atoms[(i + 1) % 6];
            let ny = p.not(y);
            clauses.push(p.or2(x, ny));
        }
        let o = p.order_lt(0, 1);
        clauses.push(o);
        let f = p.and(clauses);
        let plain_opts = SolverOptions::default();
        let cube_opts = SolverOptions {
            num_threads: 4,
            cube_split: 3,
            prefilter: false,
        };
        let s1 = SolverStats::default();
        let s2 = SolverStats::default();
        assert_eq!(
            check(&p, f, &plain_opts, &s1),
            check(&p, f, &cube_opts, &s2)
        );
    }
}
