//! The strict partial-order theory.
//!
//! Canary's order atoms `O_a < O_b` range over execution events that a
//! sequentially consistent run totally orders (§3.1): an assignment of
//! truth values to order atoms is theory-consistent iff orienting every
//! atom accordingly yields an **acyclic** directed graph over events
//! (an acyclic relation always extends to the total order sequential
//! consistency demands).
//!
//! The checker finds a cycle among the asserted edges with an iterative
//! DFS and reports the participating atoms as a conflict — the negation
//! of that set is the theory lemma CDCL(T) learns.

use std::collections::HashMap;

use crate::term::EventId;

/// One oriented order edge plus the atom assignment that produced it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OrderEdge {
    /// Source event (executes first).
    pub from: EventId,
    /// Destination event (executes later).
    pub to: EventId,
    /// Index of the atom (as numbered by the caller) asserting the edge.
    pub atom: usize,
}

/// Result of a theory consistency check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryResult {
    /// The asserted orders extend to a total order.
    Consistent,
    /// A cycle exists; the payload lists the atom indices on it.
    Conflict(Vec<usize>),
}

/// Checks whether a set of oriented order edges is acyclic.
///
/// `edges` carry caller-side atom indices so conflicts can be turned
/// into clauses over the SAT encoding.
pub fn check_orders(edges: &[OrderEdge]) -> TheoryResult {
    // Compact the event space.
    let mut index: HashMap<EventId, usize> = HashMap::new();
    for e in edges {
        let next = index.len();
        index.entry(e.from).or_insert(next);
        let next = index.len();
        index.entry(e.to).or_insert(next);
    }
    let n = index.len();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (dst, atom)
    for e in edges {
        adj[index[&e.from]].push((index[&e.to], e.atom));
    }

    // Iterative DFS with colors; record the edge stack to extract the
    // cycle's atoms when a back edge closes it.
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut parent_edge: Vec<Option<(usize, usize)>> = vec![None; n]; // (pred node, atom)
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < adj[node].len() {
                let (next, atom) = adj[node][*idx];
                *idx += 1;
                match color[next] {
                    0 => {
                        color[next] = 1;
                        parent_edge[next] = Some((node, atom));
                        stack.push((next, 0));
                    }
                    1 => {
                        // Back edge `node → next` closes a cycle: walk
                        // parents from `node` back to `next`.
                        let mut atoms = vec![atom];
                        let mut cur = node;
                        while cur != next {
                            let (pred, a) =
                                parent_edge[cur].expect("gray node has a parent on the DFS path");
                            atoms.push(a);
                            cur = pred;
                        }
                        atoms.sort_unstable();
                        atoms.dedup();
                        return TheoryResult::Conflict(atoms);
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    TheoryResult::Consistent
}

/// Convenience for tests and the brute-force oracle: whether a set of
/// `(from, to)` pairs is acyclic.
pub fn orders_consistent(pairs: &[(EventId, EventId)]) -> bool {
    let edges: Vec<OrderEdge> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| OrderEdge { from, to, atom: i })
        .collect();
    matches!(check_orders(&edges), TheoryResult::Consistent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u32, u32)]) -> Vec<OrderEdge> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| OrderEdge { from, to, atom: i })
            .collect()
    }

    #[test]
    fn empty_is_consistent() {
        assert_eq!(check_orders(&[]), TheoryResult::Consistent);
    }

    #[test]
    fn chain_is_consistent() {
        assert_eq!(
            check_orders(&edges(&[(1, 2), (2, 3), (1, 3)])),
            TheoryResult::Consistent
        );
    }

    #[test]
    fn two_cycle_detected() {
        match check_orders(&edges(&[(1, 2), (2, 1)])) {
            TheoryResult::Conflict(atoms) => assert_eq!(atoms, vec![0, 1]),
            TheoryResult::Consistent => panic!("expected conflict"),
        }
    }

    #[test]
    fn three_cycle_detected_with_exact_atoms() {
        // Extra consistent edge (atom 3) must not appear in the core.
        match check_orders(&edges(&[(1, 2), (2, 3), (3, 1), (1, 4)])) {
            TheoryResult::Conflict(atoms) => assert_eq!(atoms, vec![0, 1, 2]),
            TheoryResult::Consistent => panic!("expected conflict"),
        }
    }

    #[test]
    fn self_loop_is_a_conflict() {
        match check_orders(&edges(&[(5, 5)])) {
            TheoryResult::Conflict(atoms) => assert_eq!(atoms, vec![0]),
            TheoryResult::Consistent => panic!("expected conflict"),
        }
    }

    #[test]
    fn diamond_is_consistent() {
        assert!(orders_consistent(&[(1, 2), (1, 3), (2, 4), (3, 4)]));
    }

    #[test]
    fn disconnected_components_checked_independently() {
        assert!(!orders_consistent(&[(1, 2), (10, 11), (11, 10)]));
    }
}
