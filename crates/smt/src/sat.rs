//! A CDCL SAT solver.
//!
//! Standard architecture: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, VSIDS-style decision
//! activities with exponential decay, Luby restarts, and incremental
//! clause addition between `solve` calls (which is how the lazy
//! order-theory lemmas of [`crate::theory`] are fed back, and how
//! source-sink queries add blocking clauses).
//!
//! The solver is deliberately dependency-free and deterministic: given
//! the same clauses in the same order it explores the same tree, which
//! keeps the benchmark harness reproducible.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Index into variable-indexed tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a sign. Encoded as `var << 1 | sign`
/// where sign 1 means negated.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub const fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub const fn neg(v: Var) -> Self {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a truth value it asserts.
    #[inline]
    pub const fn new(v: Var, value: bool) -> Self {
        if value {
            Self::pos(v)
        } else {
            Self::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    #[inline]
    pub const fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[inline]
    #[must_use]
    pub const fn negate(self) -> Self {
        Lit(self.0 ^ 1)
    }

    #[inline]
    const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// Ternary assignment value.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

/// The result of a SAT query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; the model maps each variable to a truth value.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Learnt clauses participate in activity-based bookkeeping (kept
    /// simple here: we never delete, bounded programs stay small).
    learnt: bool,
}

/// Statistics counters exposed for the benchmark harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// The CDCL solver.
#[derive(Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    /// watches[lit] = clause indices watching `lit`.
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (u32::MAX = decision/unassigned).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<u32>,
    /// Next trail position to propagate.
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phases for phase-saving.
    phase: Vec<bool>,
    /// Stats for the harness.
    pub stats: SatStats,
    ok: bool,
    /// Assumption literals responsible for the last
    /// unsat-under-assumptions answer (empty when the clause set alone
    /// is unsatisfiable).
    last_core: Vec<Lit>,
}

const NO_REASON: u32 = u32::MAX;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            stats: SatStats::default(),
            ok: true,
            last_core: Vec::new(),
        }
    }

    /// Whether the clause set is still possibly satisfiable (false once
    /// a level-0 conflict has been derived).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The subset of the assumption literals that the last
    /// [`SatSolver::solve_with_assumptions`] call proved jointly
    /// inconsistent with the clause set (MiniSat's *final conflict
    /// clause*, unnegated). Empty when the last answer was `Sat`, or
    /// when the clauses are unsatisfiable on their own — in that case
    /// the refutation holds under *any* assumptions.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Adds a clause. Returns `false` if the solver becomes trivially
    /// unsatisfiable (at level 0).
    ///
    /// May be called between [`SatSolver::solve`] invocations — the
    /// trail is rewound to level 0 first.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology check: l and ¬l in one clause.
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        // Remove literals already false at level 0; satisfied clause is
        // dropped.
        let mut filtered = Vec::with_capacity(c.len());
        for &l in &c {
            match self.value(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(filtered[0], NO_REASON);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[filtered[0].negate().index()].push(idx);
                self.watches[filtered[1].negate().index()].push(idx);
                self.clauses.push(Clause {
                    lits: filtered,
                    learnt: false,
                });
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn backtrack_to(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let start = self.trail_lim[lvl as usize] as usize;
        for i in (start..self.trail.len()).rev() {
            let v = self.trail[i].var().index();
            self.assign[v] = LBool::Undef;
            self.reason[v] = NO_REASON;
        }
        self.trail.truncate(start);
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    /// Unit propagation; returns the index of a conflicting clause.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must find a new watch or propagate.
            let mut i = 0;
            let watch_idx = p.index();
            while i < self.watches[watch_idx].len() {
                let ci = self.watches[watch_idx][i];
                let np = p.negate();
                // Ensure lits[0] is the other watched literal.
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == np {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[watch_idx].swap_remove(i);
                        self.watches[lk.negate().index()].push(ci);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == LBool::False {
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack
    /// level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut clause = confl;
        loop {
            let start = usize::from(p.is_some());
            let lits = self.clauses[clause as usize].lits.clone();
            for &q in &lits[start..] {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal to resolve on.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            clause = self.reason[lit.var().index()];
            p = Some(lit);
        }
        learnt[0] = p.expect("conflict at level > 0 has a UIP").negate();
        // Backtrack level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    /// Resolves a conflict raised while only assumptions had been
    /// decided back to the assumption decisions it depends on
    /// (MiniSat's `analyzeFinal`). `seeds` are the literals of the
    /// conflicting clause (or the falsified assumption itself); the
    /// returned literals are the assumption decisions in the conflict
    /// cone, i.e. `clauses ∧ core` is unsatisfiable.
    fn analyze_final(&self, seeds: &[Lit]) -> Vec<Lit> {
        let mut seen = vec![false; self.num_vars()];
        for &l in seeds {
            if self.level[l.var().index()] > 0 {
                seen[l.var().index()] = true;
            }
        }
        let mut core = Vec::new();
        let start = self.trail_lim.first().map_or(self.trail.len(), |&s| s as usize);
        for i in (start..self.trail.len()).rev() {
            let v = self.trail[i].var();
            if !seen[v.index()] {
                continue;
            }
            let r = self.reason[v.index()];
            if r == NO_REASON {
                // A decision: with decision_level() <= #assumptions,
                // every decision on the trail is an assumption.
                core.push(self.trail[i]);
            } else {
                for &l in &self.clauses[r as usize].lits {
                    if self.level[l.var().index()] > 0 {
                        seen[l.var().index()] = true;
                    }
                }
            }
        }
        core.sort_unstable();
        core
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        match learnt.len() {
            0 => self.ok = false,
            1 => self.enqueue(learnt[0], NO_REASON),
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[learnt[0].negate().index()].push(idx);
                self.watches[learnt[1].negate().index()].push(idx);
                self.enqueue(learnt[0], idx);
                self.clauses.push(Clause {
                    lits: learnt,
                    learnt: true,
                });
            }
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        let mut best: Option<Var> = None;
        let mut best_act = -1.0;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef && self.activity[v] > best_act {
                best_act = self.activity[v];
                best = Some(Var(v as u32));
            }
        }
        best.map(|v| Lit::new(v, self.phase[v.index()]))
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals (used by
    /// cube-and-conquer, §5.2).
    ///
    /// Invariant (MiniSat-style): decision levels `1..=k` hold the `k`
    /// assumptions, so a conflict raised while only assumptions have
    /// been decided means the clause set is unsatisfiable *under the
    /// assumptions*; learned clauses remain valid for later calls.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_bounded(assumptions, u64::MAX)
            .expect("unbounded solve always terminates with a verdict")
    }

    /// Like [`SatSolver::solve_with_assumptions`], but gives up after
    /// `max_conflicts` conflicts analyzed *in this call*, returning
    /// `None`. On `None` the trail is rewound to level 0 and the solver
    /// stays fully usable — clauses learned before the budget ran out
    /// are retained, so a retry (or an escalation to cube-and-conquer
    /// on a fresh solver) loses no soundness. This is the
    /// hardness-detection probe behind `--cube-split`.
    pub fn solve_with_assumptions_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SatResult> {
        self.solve_bounded(assumptions, max_conflicts)
    }

    fn solve_bounded(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SatResult> {
        self.last_core.clear();
        if !self.ok {
            return Some(SatResult::Unsat);
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return Some(SatResult::Unsat);
        }
        let k = assumptions.len() as u32;
        let mut conflicts_this_call = 0u64;
        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 0u64;
        let mut restart_budget = 100 * luby(restart_idx);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_call += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SatResult::Unsat);
                }
                if self.decision_level() <= k {
                    // Every decision on the trail is an assumption, so
                    // the conflict follows from clauses + assumptions.
                    let seeds = self.clauses[confl as usize].lits.clone();
                    self.last_core = self.analyze_final(&seeds);
                    return Some(SatResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                self.record_learnt(learnt);
                self.var_inc *= 1.0 / 0.95;
                if conflicts_this_call >= max_conflicts {
                    // Budget exhausted without a verdict. Keep the
                    // learnt clauses, drop the partial assignment.
                    self.backtrack_to(0);
                    return None;
                }
                if conflicts_since_restart > restart_budget {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_idx += 1;
                    restart_budget = 100 * luby(restart_idx);
                    self.backtrack_to(0);
                }
            } else if self.decision_level() < k {
                // Re-establish the assumption prefix one level at a time
                // (levels may have been popped by backjumps/restarts).
                let next = assumptions[self.decision_level() as usize];
                match self.value(next) {
                    LBool::True => {
                        // Already implied: give it an empty level so the
                        // invariant "level i decides assumption i" holds.
                        self.trail_lim.push(self.trail.len() as u32);
                    }
                    LBool::False => {
                        // `next` is already falsified: the core is the
                        // cone of that assignment plus `next` itself.
                        let mut core = self.analyze_final(&[next]);
                        core.push(next);
                        core.sort_unstable();
                        core.dedup();
                        self.last_core = core;
                        return Some(SatResult::Unsat);
                    }
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len() as u32);
                        self.enqueue(next, NO_REASON);
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model = self
                            .assign
                            .iter()
                            .map(|&a| a == LBool::True)
                            .collect();
                        return Some(SatResult::Sat(model));
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len() as u32);
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    /// Number of clauses (including learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt clauses.
    pub fn num_learnt(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,…
fn luby(i: u64) -> u64 {
    let mut k = 1u64;
    while (1u64 << (k + 1)) - 1 <= i + 1 {
        k += 1;
    }
    let mut i = i;
    let mut kk = k;
    loop {
        if i + 1 == (1u64 << kk) - 1 {
            return 1u64 << (kk - 1);
        }
        if i + 1 < (1u64 << kk) - 1 {
            kk -= 1;
            if kk == 0 {
                return 1;
            }
            continue;
        }
        i -= (1u64 << kk) - 1;
        kk = 1;
        while (1u64 << (kk + 1)) - 1 <= i + 1 {
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| {
                let v = Var((x.abs() - 1) as u32);
                if x > 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect()
    }

    fn solver_with(n: usize, clauses: &[&[i32]]) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with(1, &[&[1]]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m[0]),
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        // x1, x1→x2, x2→x3, and ¬x3 is unsat.
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3], &[-3]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn three_coloring_of_triangle_is_sat() {
        // vars: v_ic for vertex i in {0,1,2}, color c in {0,1,2}
        let var = |i: usize, c: usize| (i * 3 + c + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push((0..3).map(|c| var(i, c)).collect());
            for c1 in 0..3 {
                for c2 in (c1 + 1)..3 {
                    clauses.push(vec![-var(i, c1), -var(i, c2)]);
                }
            }
        }
        for (i, j) in [(0, 1), (1, 2), (0, 2)] {
            for c in 0..3 {
                clauses.push(vec![-var(i, c), -var(j, c)]);
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(9, &refs);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn two_coloring_of_triangle_is_unsat() {
        let var = |i: usize, c: usize| (i * 2 + c + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push((0..2).map(|c| var(i, c)).collect());
            clauses.push(vec![-var(i, 0), -var(i, 1)]);
        }
        for (i, j) in [(0, 1), (1, 2), (0, 2)] {
            for c in 0..2 {
                clauses.push(vec![-var(i, c), -var(j, c)]);
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert!(s.solve().is_sat());
        s.add_clause(&lits(&[-1]));
        assert!(s.solve().is_sat());
        s.add_clause(&lits(&[-2]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_models() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let a = lits(&[-1, -2]);
        assert_eq!(s.solve_with_assumptions(&a), SatResult::Unsat);
        // Solver remains usable afterwards.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumption_core_names_the_conflicting_subset() {
        // ¬x1 ∨ ¬x2: assuming x1, x2, x3 is unsat, and the core must
        // name exactly {x1, x2} — x3 is innocent.
        let mut s = solver_with(3, &[&[-1, -2]]);
        let a = lits(&[1, 2, 3]);
        assert_eq!(s.solve_with_assumptions(&a), SatResult::Unsat);
        let mut core = s.assumption_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, lits(&[1, 2]));
        // A satisfiable assumption set leaves no core behind.
        assert!(s.solve_with_assumptions(&lits(&[1, 3])).is_sat());
        assert!(s.assumption_core().is_empty());
        // Clause-set-level unsat (no assumptions involved) reports an
        // empty core: the refutation holds under any assumptions.
        s.add_clause(&lits(&[1]));
        s.add_clause(&lits(&[2]));
        assert_eq!(s.solve_with_assumptions(&lits(&[3])), SatResult::Unsat);
        assert!(s.assumption_core().is_empty());
        assert!(!s.is_ok());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![-2, 3],
            vec![1, -2],
            vec![2, -1, 3],
        ];
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(3, &refs);
        match s.solve() {
            SatResult::Sat(m) => {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&x| {
                            let v = (x.abs() - 1) as usize;
                            (x > 0) == m[v]
                        }),
                        "clause {c:?} not satisfied by {m:?}"
                    );
                }
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let mut s = solver_with(1, &[&[1, -1]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.num_clauses(), 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn limited_solve_gives_up_and_solver_stays_usable() {
        // Pigeonhole 3→2 needs several conflicts; a one-conflict budget
        // cannot reach a verdict, but the solver must stay usable and
        // an unbounded retry must still conclude unsat.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve_with_assumptions_limited(&[], 1), None);
        assert!(s.is_ok(), "a budget exhaustion is not a verdict");
        assert_eq!(s.solve(), SatResult::Unsat);
        // A generous budget agrees with the unbounded call.
        let mut s2 = solver_with(6, &refs);
        assert_eq!(
            s2.solve_with_assumptions_limited(&[], 1_000_000),
            Some(SatResult::Unsat)
        );
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_ij: pigeon i in hole j. 3 pigeons, 2 holes.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats.conflicts > 0);
    }
}
