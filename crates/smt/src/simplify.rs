//! Lightweight semi-decision procedures (§5.2, optimization 1).
//!
//! During guard construction Canary filters out conditions "having any
//! apparent contradictions" without invoking the full solver. These
//! checks are sound but incomplete: [`obviously_false`] never
//! misclassifies a satisfiable term, it merely fails to notice some
//! unsatisfiable ones (which the CDCL(T) solver then handles).

use crate::term::{Node, TermId, TermPool};
use crate::theory::orders_consistent;

/// Whether `t` is recognizably unsatisfiable by cheap syntactic means:
///
/// * it is the constant `false` (the pool's constructors already fold
///   complementary Boolean literal pairs into `false`);
/// * its top-level conjunction asserts order literals that form a cycle.
pub fn obviously_false(pool: &TermPool, t: TermId) -> bool {
    if t == pool.ff() {
        return true;
    }
    // Collect order literals conjoined at the top level.
    let lits = top_conjuncts(pool, t);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for l in lits {
        match pool.node(l) {
            Node::Order(a, b) => edges.push((*a, *b)),
            Node::Not(inner) => {
                if let Node::Order(a, b) = pool.node(*inner) {
                    edges.push((*b, *a));
                }
            }
            _ => {}
        }
    }
    if edges.len() >= 2 || edges.iter().any(|&(a, b)| a == b) {
        return !orders_consistent(&edges);
    }
    false
}

/// Whether `t` is the constant `true`.
pub fn obviously_true(pool: &TermPool, t: TermId) -> bool {
    t == pool.tt()
}

/// The list of conjuncts when `t` is a conjunction, else `[t]`.
pub fn top_conjuncts(pool: &TermPool, t: TermId) -> Vec<TermId> {
    match pool.node(t) {
        Node::And(parts) => parts.clone(),
        _ => vec![t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_false_is_obvious() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let na = p.not(a);
        let contradiction = p.and2(a, na);
        assert!(obviously_false(&p, contradiction));
        assert!(obviously_false(&p, p.ff()));
    }

    #[test]
    fn order_cycle_is_obvious() {
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let o31 = p.order_lt(3, 1);
        let cyc = p.and([o12, o23, o31]);
        assert!(obviously_false(&p, cyc));
    }

    #[test]
    fn order_two_cycle_via_negation_is_obvious() {
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o21 = p.order_lt(2, 1);
        // and() already folds x ∧ ¬x since o21 = ¬o12.
        let cyc = p.and2(o12, o21);
        assert!(obviously_false(&p, cyc));
    }

    #[test]
    fn consistent_chain_is_not_flagged() {
        let mut p = TermPool::new();
        let o12 = p.order_lt(1, 2);
        let o23 = p.order_lt(2, 3);
        let t = p.and2(o12, o23);
        assert!(!obviously_false(&p, t));
    }

    #[test]
    fn satisfiable_boolean_mix_is_not_flagged() {
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let b = p.bool_atom(1);
        let nb = p.not(b);
        let t = p.and([a, nb]);
        assert!(!obviously_false(&p, t));
        assert!(!obviously_true(&p, t));
        assert!(obviously_true(&p, p.tt()));
    }

    #[test]
    fn disjunction_is_never_prefiltered() {
        // Incomplete by design: (o12 ∧ o21) ∨ false is unsat but hides
        // the cycle under an Or — the prefilter must pass it through.
        let mut p = TermPool::new();
        let a = p.bool_atom(0);
        let na = p.not(a);
        let c1 = p.and2(a, na); // folds to false
        let o12 = p.order_lt(1, 2);
        let t = p.or2(c1, o12);
        assert!(!obviously_false(&p, t));
    }
}
